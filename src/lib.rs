//! # complexity-effective — umbrella crate
//!
//! A from-scratch Rust reproduction of Palacharla, Jouppi & Smith,
//! *Complexity-Effective Superscalar Processors* (ISCA 1997): analytical
//! circuit-delay models for the critical pipeline structures, plus a
//! cycle-level simulator of the dependence-based microarchitecture and its
//! clustered variants.
//!
//! This crate simply re-exports the workspace members under friendly
//! names; see each for the substance:
//!
//! * [`isa`] — the MIPS-like substrate instruction set and assembler,
//! * [`workloads`] — SPEC'95-analogue kernels, functional emulator, traces,
//! * [`delay`] — the Section 4 circuit-delay models (Figures 3–8, Tables 1–2),
//! * [`core`] — steering heuristics, FIFO pool, reservation table, analysis,
//! * [`sim`] — the timing simulator and the Figure 13/15/17 machines.
//!
//! ## Quickstart
//!
//! ```
//! use complexity_effective::{sim, workloads};
//!
//! let trace = workloads::trace_benchmark(workloads::Benchmark::Li, 50_000)?;
//! let window = sim::Simulator::new(sim::machine::baseline_8way()).run(&trace);
//! let fifos = sim::Simulator::new(sim::machine::dependence_8way()).run(&trace);
//! // The dependence-based machine extracts nearly the same parallelism.
//! assert!(fifos.ipc() > 0.9 * window.ipc());
//! # Ok::<(), workloads::WorkloadError>(())
//! ```

pub use ce_core as core;
pub use ce_delay as delay;
pub use ce_isa as isa;
pub use ce_sim as sim;
pub use ce_workloads as workloads;
