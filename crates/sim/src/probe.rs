//! Pipeline event probes: a zero-cost-when-disabled observation API.
//!
//! The simulator emits a [`ProbeEvent`] at every pipeline transition —
//! fetch, dispatch (with the steering decision), wakeup, select/issue,
//! complete, commit, squash — to any [`ProbeSink`]s attached with
//! [`Simulator::attach_probe`]. With no sinks attached the hot loop's
//! only overhead is one `Vec::is_empty` branch per emission point and no
//! event is ever constructed, so the disabled case stays allocation-free
//! and bench-neutral (the CI perf gate pins this).
//!
//! Sinks are trait objects so consumers compose freely: the pipeline-
//! diagram recorder ([`ScheduleRecorder`]), the Konata trace writer
//! ([`KonataWriter`]), and test sinks ([`EventLog`]) all ride the same
//! stream. Events describe *observations*; a sink can never affect
//! timing.
//!
//! [`Simulator::attach_probe`]: crate::pipeline::Simulator::attach_probe
//! [`KonataWriter`]: crate::trace_writer::KonataWriter

use crate::pipeline::IssueRecord;
use crate::stats::SimStats;
use ce_core::steering::SteerChoice;
use std::cell::RefCell;
use std::rc::Rc;

/// Why dispatch stalled on an instruction this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchStallCause {
    /// The ROB is at the machine's in-flight limit.
    InflightLimit,
    /// No free physical register for the destination.
    NoPhysicalReg,
    /// The scheduler refused the instruction; `chain_full` means steering
    /// found the dependence-chain FIFO but it had no room (Section 5.3's
    /// steering conflict).
    SchedulerFull {
        /// A chain target existed but its FIFO was full.
        chain_full: bool,
    },
}

/// One observed pipeline transition.
///
/// `seq` is the dynamic sequence number ([`InstId`]) — note wrong-path
/// instructions synthesized after a mispredicted branch reuse the
/// sequence numbers the real path will later occupy, so sinks tracking
/// instruction lifetimes must retire a `seq` at [`Commit`]/[`Squash`]
/// before trusting a later event with the same number.
///
/// [`InstId`]: ce_core::InstId
/// [`Commit`]: ProbeEvent::Commit
/// [`Squash`]: ProbeEvent::Squash
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// An instruction entered the front end.
    Fetch {
        /// Cycle of the event.
        cycle: u64,
        /// Dynamic sequence number.
        seq: u64,
        /// Instruction address.
        pc: u32,
        /// Whether this is a synthesized wrong-path instruction.
        wrong_path: bool,
        /// Whether this is a conditional branch the predictor got wrong.
        mispredicted: bool,
    },
    /// An instruction entered the scheduler (renamed and steered).
    Dispatch {
        /// Cycle of the event.
        cycle: u64,
        /// Dynamic sequence number.
        seq: u64,
        /// Instruction address.
        pc: u32,
        /// Bound cluster (`None` for the central window).
        cluster: Option<usize>,
        /// Central-window slot, or FIFO index for pooled organizations.
        slot: u32,
        /// How steering chose the FIFO (`None` for the central window).
        steer: Option<SteerChoice>,
    },
    /// Dispatch stalled this cycle with this instruction at the head.
    DispatchStall {
        /// Cycle of the event.
        cycle: u64,
        /// Sequence number of the instruction that could not dispatch.
        seq: u64,
        /// What blocked it.
        cause: DispatchStallCause,
    },
    /// An instruction's operands became ready in its issue cluster (it
    /// may still lose the port/FU race this cycle).
    Wakeup {
        /// Cycle of the event.
        cycle: u64,
        /// Dynamic sequence number.
        seq: u64,
        /// Cluster whose FUs the operands reached.
        cluster: usize,
    },
    /// An instruction won selection and began execution.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// Dynamic sequence number.
        seq: u64,
        /// Execution cluster.
        cluster: usize,
        /// Execution latency in cycles (result at `cycle + latency`).
        latency: u64,
        /// Whether any operand arrived over an inter-cluster bypass.
        intercluster: bool,
    },
    /// An instruction's result became available.
    Complete {
        /// Cycle of the event.
        cycle: u64,
        /// Dynamic sequence number.
        seq: u64,
    },
    /// An instruction retired.
    Commit {
        /// Cycle of the event.
        cycle: u64,
        /// Dynamic sequence number.
        seq: u64,
        /// Instruction address.
        pc: u32,
        /// Cycle it entered the scheduler.
        dispatched_at: u64,
        /// Cycle it began execution.
        issued_at: u64,
        /// Cycle its result became available.
        completed_at: u64,
        /// Execution cluster.
        cluster: usize,
    },
    /// A wrong-path instruction was squashed after its branch resolved.
    Squash {
        /// Cycle of the event.
        cycle: u64,
        /// Sequence number of the squashed instruction.
        seq: u64,
        /// The mispredicted branch that caused the squash.
        branch_seq: u64,
        /// Whether the squashed instruction had already issued.
        issued: bool,
    },
}

impl ProbeEvent {
    /// The event's cycle stamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            ProbeEvent::Fetch { cycle, .. }
            | ProbeEvent::Dispatch { cycle, .. }
            | ProbeEvent::DispatchStall { cycle, .. }
            | ProbeEvent::Wakeup { cycle, .. }
            | ProbeEvent::Issue { cycle, .. }
            | ProbeEvent::Complete { cycle, .. }
            | ProbeEvent::Commit { cycle, .. }
            | ProbeEvent::Squash { cycle, .. } => cycle,
        }
    }

    /// The sequence number the event concerns.
    pub fn seq(&self) -> u64 {
        match *self {
            ProbeEvent::Fetch { seq, .. }
            | ProbeEvent::Dispatch { seq, .. }
            | ProbeEvent::DispatchStall { seq, .. }
            | ProbeEvent::Wakeup { seq, .. }
            | ProbeEvent::Issue { seq, .. }
            | ProbeEvent::Complete { seq, .. }
            | ProbeEvent::Commit { seq, .. }
            | ProbeEvent::Squash { seq, .. } => seq,
        }
    }
}

/// A consumer of the pipeline event stream.
///
/// Sinks receive events in emission order (within a cycle: commit,
/// complete, squash, issue, dispatch, fetch — the simulator's phase
/// order). [`finish`](Self::finish) fires once after the run completes,
/// with the final statistics.
pub trait ProbeSink: std::fmt::Debug {
    /// Observes one event.
    fn event(&mut self, ev: &ProbeEvent);

    /// Called once when the run finishes.
    fn finish(&mut self, _stats: &SimStats) {}
}

/// Sink that reconstructs the commit-ordered [`IssueRecord`] schedule —
/// the backing for [`Simulator::run_traced`] and the ASCII pipeline
/// diagrams in [`viz`](crate::viz).
///
/// [`Simulator::run_traced`]: crate::pipeline::Simulator::run_traced
#[derive(Debug)]
pub struct ScheduleRecorder {
    out: Rc<RefCell<Vec<IssueRecord>>>,
}

impl ScheduleRecorder {
    /// Creates the recorder and the shared handle its records land in.
    pub fn new(capacity: usize) -> (ScheduleRecorder, Rc<RefCell<Vec<IssueRecord>>>) {
        let out = Rc::new(RefCell::new(Vec::with_capacity(capacity)));
        (ScheduleRecorder { out: Rc::clone(&out) }, out)
    }
}

impl ProbeSink for ScheduleRecorder {
    fn event(&mut self, ev: &ProbeEvent) {
        if let ProbeEvent::Commit {
            seq, pc, dispatched_at, issued_at, completed_at, cluster, ..
        } = *ev
        {
            self.out.borrow_mut().push(IssueRecord {
                seq,
                pc,
                dispatched_at,
                issued_at,
                completed_at,
                cluster,
            });
        }
    }
}

/// Sink that records every event verbatim — for tests and ad-hoc
/// debugging.
#[derive(Debug)]
pub struct EventLog {
    out: Rc<RefCell<Vec<ProbeEvent>>>,
}

impl EventLog {
    /// Creates the log and the shared handle holding the events.
    pub fn new() -> (EventLog, Rc<RefCell<Vec<ProbeEvent>>>) {
        let out = Rc::new(RefCell::new(Vec::new()));
        (EventLog { out: Rc::clone(&out) }, out)
    }
}

impl ProbeSink for EventLog {
    fn event(&mut self, ev: &ProbeEvent) {
        self.out.borrow_mut().push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_recorder_keeps_only_commits() {
        let (mut rec, out) = ScheduleRecorder::new(4);
        rec.event(&ProbeEvent::Fetch {
            cycle: 1,
            seq: 0,
            pc: 0x400000,
            wrong_path: false,
            mispredicted: false,
        });
        rec.event(&ProbeEvent::Commit {
            cycle: 5,
            seq: 0,
            pc: 0x400000,
            dispatched_at: 2,
            issued_at: 3,
            completed_at: 4,
            cluster: 1,
        });
        let records = out.borrow();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0],
            IssueRecord {
                seq: 0,
                pc: 0x400000,
                dispatched_at: 2,
                issued_at: 3,
                completed_at: 4,
                cluster: 1,
            }
        );
    }

    #[test]
    fn event_log_records_everything_in_order() {
        let (mut log, out) = EventLog::new();
        let evs = [
            ProbeEvent::Issue { cycle: 3, seq: 7, cluster: 0, latency: 2, intercluster: true },
            ProbeEvent::Complete { cycle: 5, seq: 7 },
            ProbeEvent::Squash { cycle: 6, seq: 9, branch_seq: 8, issued: false },
        ];
        for ev in &evs {
            log.event(ev);
        }
        assert_eq!(*out.borrow(), evs);
    }

    #[test]
    fn cycle_and_seq_accessors_cover_every_variant() {
        let evs = [
            ProbeEvent::Fetch { cycle: 1, seq: 10, pc: 0, wrong_path: false, mispredicted: false },
            ProbeEvent::Dispatch { cycle: 2, seq: 11, pc: 0, cluster: None, slot: 0, steer: None },
            ProbeEvent::DispatchStall {
                cycle: 3,
                seq: 12,
                cause: DispatchStallCause::InflightLimit,
            },
            ProbeEvent::Wakeup { cycle: 4, seq: 13, cluster: 0 },
            ProbeEvent::Issue { cycle: 5, seq: 14, cluster: 0, latency: 1, intercluster: false },
            ProbeEvent::Complete { cycle: 6, seq: 15 },
            ProbeEvent::Commit {
                cycle: 7,
                seq: 16,
                pc: 0,
                dispatched_at: 1,
                issued_at: 2,
                completed_at: 3,
                cluster: 0,
            },
            ProbeEvent::Squash { cycle: 8, seq: 17, branch_seq: 16, issued: true },
        ];
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.cycle(), i as u64 + 1);
            assert_eq!(ev.seq(), i as u64 + 10);
        }
    }
}
