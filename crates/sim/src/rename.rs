//! Register rename: logical→physical map table and physical register free
//! list (Table 3: 120 physical registers).
//!
//! Because the simulator is trace-driven it never fetches a wrong path, so
//! no checkpoint/restore machinery is needed: a physical register is
//! allocated at dispatch and the *previous* mapping of the destination is
//! freed when the instruction commits.

use ce_isa::Reg;

/// A physical register designator.
pub type Preg = u16;

/// The rename map and free list.
///
/// ```
/// use ce_isa::Reg;
/// use ce_sim::rename::RenameTable;
///
/// let mut table = RenameTable::new(120);
/// let r5 = Reg::new(5);
/// let (fresh, previous) = table.rename_dest(r5).expect("registers free");
/// assert_eq!(table.lookup(r5), fresh);
/// table.release(previous); // at commit
/// ```
#[derive(Debug, Clone)]
pub struct RenameTable {
    map: [Preg; Reg::COUNT],
    free: Vec<Preg>,
}

impl RenameTable {
    /// Creates a rename table with the 32 architectural registers mapped
    /// to physical registers 0–31 and the rest free.
    ///
    /// # Panics
    ///
    /// Panics unless `physical_regs > 32`.
    pub fn new(physical_regs: usize) -> RenameTable {
        assert!(
            physical_regs > Reg::COUNT,
            "need more physical than architectural registers"
        );
        let mut map = [0; Reg::COUNT];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as Preg;
        }
        // Pop from the end: lowest-numbered free register first.
        let free = (Reg::COUNT as Preg..physical_regs as Preg).rev().collect();
        RenameTable { map, free }
    }

    /// The current physical mapping of a logical register.
    pub fn lookup(&self, reg: Reg) -> Preg {
        self.map[reg.index()]
    }

    /// Whether a destination can be allocated right now.
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Renames a destination register: allocates a new physical register,
    /// updates the map, and returns `(new, previous)` — the previous
    /// mapping must be freed when the instruction commits.
    ///
    /// Returns `None` when no physical register is free (dispatch stalls).
    pub fn rename_dest(&mut self, dest: Reg) -> Option<(Preg, Preg)> {
        let new = self.free.pop()?;
        let prev = self.map[dest.index()];
        self.map[dest.index()] = new;
        Some((new, prev))
    }

    /// Returns a physical register to the free list (called at commit with
    /// the displaced previous mapping).
    pub fn release(&mut self, preg: Preg) {
        debug_assert!(!self.free.contains(&preg), "double free of p{preg}");
        self.free.push(preg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_identity_mapping() {
        let t = RenameTable::new(120);
        for r in Reg::all() {
            assert_eq!(t.lookup(r), r.index() as Preg);
        }
        assert_eq!(t.free_count(), 120 - 32);
    }

    #[test]
    fn rename_allocates_and_remaps() {
        let mut t = RenameTable::new(40);
        let r5 = Reg::new(5);
        let (new, prev) = t.rename_dest(r5).unwrap();
        assert_eq!(prev, 5);
        assert_eq!(new, 32, "lowest free register first");
        assert_eq!(t.lookup(r5), new);
        assert_eq!(t.free_count(), 7);
    }

    #[test]
    fn exhaustion_then_release() {
        let mut t = RenameTable::new(34);
        let r1 = Reg::new(1);
        assert!(t.rename_dest(r1).is_some());
        assert!(t.rename_dest(r1).is_some());
        assert!(!t.has_free());
        assert_eq!(t.rename_dest(r1), None);
        t.release(1); // the original p1 was displaced twice ago
        assert!(t.has_free());
        let (new, _) = t.rename_dest(r1).unwrap();
        assert_eq!(new, 1);
    }

    #[test]
    fn commit_chain_recycles_registers() {
        // Repeatedly rename the same logical register and free the
        // displaced mapping, as commit would: the pool never shrinks.
        let mut t = RenameTable::new(36);
        let r7 = Reg::new(7);
        for _ in 0..100 {
            let (_, prev) = t.rename_dest(r7).expect("never exhausts");
            t.release(prev);
        }
        assert_eq!(t.free_count(), 4);
    }

    #[test]
    #[should_panic(expected = "more physical")]
    fn too_few_physical_registers_panics() {
        let _ = RenameTable::new(32);
    }
}
