//! The cycle loop: fetch → decode/rename/steer → wakeup+select → execute →
//! bypass → commit (paper Figure 1 / Figure 11).
//!
//! The simulator is trace-driven: functional outcomes come from the
//! emulator, so no wrong-path instructions are modeled — a mispredicted
//! branch simply stalls fetch until it resolves, which charges the same
//! refill penalty the paper's SimpleScalar-derived simulator charges.
//!
//! ## Timing model
//!
//! * An instruction issued at cycle `T` produces its result at `T + 1`
//!   (single-cycle symmetric FUs, Table 3); a same-cluster dependent can
//!   issue at `T + 1` (one-cycle local bypass).
//! * A dependent in *another* cluster can issue at `T + 1 +
//!   intercluster_extra` (the Section 5.5 two-cycle inter-cluster bypass).
//! * Loads add a D-cache access: data at `T + 2` on a hit, `T + 2 +
//!   miss_penalty` on a miss; store-to-load forwarding behaves like a hit.
//! * A result reaches the (local) register file `regwrite_delay` cycles
//!   after production; consumers that issue before that moment used a
//!   bypass path, and if the producer ran in another cluster, an
//!   *inter-cluster* bypass — the Figure 17 (bottom) statistic.

use crate::attribution::StallCause;
use crate::bpred::Gshare;
use crate::check::{Checker, Violation};
use crate::config::{ConfigError, SimConfig};
use crate::dcache::{Access, Dcache};
use crate::fault::FaultKind;
use crate::probe::{DispatchStallCause, ProbeEvent, ProbeSink, ScheduleRecorder};
use crate::rename::{Preg, RenameTable};
use crate::scheduler::{Candidate, InsertReject, Scheduler};
use crate::stats::SimStats;
use ce_core::{FifoId, InstId};
use ce_isa::OperationKind;
use ce_workloads::{DynInst, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Completion event queue: `(finish_cycle, seq)` pushed at issue, drained
/// in the complete phase — replaces a full ROB scan every cycle.
type EventHeap = BinaryHeap<Reverse<(u64, u64)>>;

/// Why a simulation run stopped without producing statistics — the
/// catchable form of what [`Simulator::run`] panics with, so sweep
/// drivers can report one bad cell and keep the fleet running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The invariant checker recorded violations
    /// ([`SimConfig::check`](crate::config::SimConfig::check) was on).
    Checker {
        /// Cycle at which the run aborted.
        cycle: u64,
        /// Everything the checker recorded, in detection order.
        violations: Vec<Violation>,
    },
    /// The machine stopped making forward progress (a simulator bug, or
    /// an injected fault wedging the issue logic).
    Deadlock {
        /// Cycle at which the deadlock limit tripped.
        cycle: u64,
        /// Instructions committed before progress stopped.
        committed: u64,
        /// Instructions in the trace.
        total: u64,
        /// ROB occupancy at the limit.
        rob: usize,
        /// Front-end queue occupancy at the limit.
        frontq: usize,
    },
    /// The wall-clock deadline set via [`Simulator::set_deadline`]
    /// expired mid-run.
    DeadlineExceeded {
        /// Cycle at which the deadline was noticed.
        cycle: u64,
    },
}

impl SimError {
    /// Short stable category name (error taxonomies, campaign reports).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Checker { .. } => "checker-violation",
            SimError::Deadlock { .. } => "deadlock",
            SimError::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Checker { cycle, violations } => {
                let report = crate::check::report_violations(violations, *cycle)
                    .unwrap_or_else(|| "invariant checker: empty violation list".into());
                f.write_str(&report)
            }
            SimError::Deadlock { cycle, committed, total, rob, frontq } => write!(
                f,
                "deadlock at cycle {cycle}: committed {committed}/{total}, rob {rob}, \
                 frontq {frontq}"
            ),
            SimError::DeadlineExceeded { cycle } => {
                write!(f, "wall-clock deadline exceeded at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// State of one physical register's value.
#[derive(Debug, Clone, Copy)]
struct PregInfo {
    /// First cycle the value is available from its producer's FU outputs
    /// (`u64::MAX` while the producer has not issued).
    ready: u64,
    /// Cluster that produces the value; `None` means it was already in the
    /// register file before the producer question arises (program start).
    cluster: Option<usize>,
}

/// One in-flight instruction (ROB entry).
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    d: DynInst,
    srcs: [Option<Preg>; 2],
    dest: Option<Preg>,
    prev_dest: Option<Preg>,
    cluster: Option<usize>,
    dispatched_at: u64,
    issued_at: Option<u64>,
    finish_at: Option<u64>,
    done: bool,
    mispredicted: bool,
    used_intercluster: bool,
    wrong_path: bool,
}

/// The slice of an in-flight instruction the issue scan actually reads,
/// packed into a dense ring keyed by `seq & hot_mask` (the same
/// contiguity argument as the scheduler's placement ring). The wakeup
/// loop probes every waiting candidate every cycle; reading 16 bytes from
/// a dense array instead of a ~100-byte ROB entry keeps that scan in
/// cache. Written once at dispatch, read-only afterwards; the full ROB
/// entry is touched only when a candidate actually issues.
#[derive(Debug, Clone, Copy)]
struct HotEntry {
    srcs: [Option<Preg>; 2],
    kind: OperationKind,
    mem_addr: Option<u32>,
}

impl HotEntry {
    const EMPTY: HotEntry =
        HotEntry { srcs: [None, None], kind: OperationKind::Other, mem_addr: None };
}

/// One in-flight store, mirrored out of the ROB so the memory-ordering
/// checks a load performs at issue scan only the stores, not the whole
/// window.
#[derive(Debug, Clone, Copy)]
struct StoreRec {
    seq: u64,
    /// Word-aligned target address (`None` if unknown — never for stores
    /// from the trace, which always carry addresses).
    word: Option<u32>,
    issued: bool,
    done: bool,
}

/// The in-flight stores in program order (sequence numbers ascending),
/// kept in lockstep with the ROB: pushed at dispatch, flagged at issue and
/// completion, popped at commit or squash.
#[derive(Debug, Default)]
struct StoreTracker {
    recs: VecDeque<StoreRec>,
}

impl StoreTracker {
    fn on_dispatch(&mut self, d: &DynInst) {
        if d.inst.opcode.kind() == OperationKind::Store {
            self.recs.push_back(StoreRec {
                seq: d.seq,
                word: d.mem_addr.map(|a| a & !3),
                issued: false,
                done: false,
            });
        }
    }

    fn find_mut(&mut self, seq: u64) -> Option<&mut StoreRec> {
        let i = self.recs.partition_point(|r| r.seq < seq);
        self.recs.get_mut(i).filter(|r| r.seq == seq)
    }

    fn mark_issued(&mut self, seq: u64) {
        if let Some(r) = self.find_mut(seq) {
            r.issued = true;
        }
    }

    fn mark_done(&mut self, seq: u64) {
        if let Some(r) = self.find_mut(seq) {
            r.done = true;
        }
    }

    fn on_commit(&mut self, seq: u64) {
        debug_assert_eq!(self.recs.front().map(|r| r.seq), Some(seq));
        self.recs.pop_front();
    }

    fn on_squash(&mut self, branch_seq: u64) {
        // Wrong-path slices synthesize only loads and ALU ops, so this is
        // a safety net rather than a hot path.
        while self.recs.back().map(|r| r.seq > branch_seq).unwrap_or(false) {
            self.recs.pop_back();
        }
    }

    /// Whether a load may issue under the configured ordering rule, given
    /// the stores older than it (same predicate per rule as a full ROB
    /// scan, over just the stores).
    fn load_may_issue(
        &self,
        load_seq: u64,
        load_word: Option<u32>,
        rule: crate::config::MemDisambiguation,
    ) -> bool {
        use crate::config::MemDisambiguation as M;
        let older = self.recs.partition_point(|r| r.seq < load_seq);
        self.recs.iter().take(older).all(|r| match rule {
            // Table 3: older stores need only have computed their
            // addresses, i.e. issued.
            M::AddressesKnown => r.issued,
            M::AllStoresComplete => r.done,
            M::Oracle => r.word != load_word || r.issued,
        })
    }

    /// The youngest older store writing the same word, if any
    /// (store-to-load forwarding).
    fn forwarding_store(&self, load_seq: u64, load_word: Option<u32>) -> Option<u64> {
        let addr = load_word?;
        let older = self.recs.partition_point(|r| r.seq < load_seq);
        self.recs
            .iter()
            .take(older)
            .rev()
            .find(|r| r.word == Some(addr))
            .map(|r| r.seq)
    }
}

/// An instruction waiting in the front end (fetched, not yet dispatched).
#[derive(Debug, Clone, Copy)]
struct FrontEndSlot {
    payload: SlotPayload,
    ready_at: u64,
    mispredicted: bool,
}

/// What a front-end slot carries: a real trace instruction or a
/// synthesized wrong-path one.
#[derive(Debug, Clone, Copy)]
enum SlotPayload {
    /// Index into the trace.
    Real(usize),
    /// A fabricated wrong-path instruction.
    WrongPath(DynInst),
}

impl SlotPayload {
    fn is_wrong_path(&self) -> bool {
        matches!(self, SlotPayload::WrongPath(_))
    }
}

/// Front-end state snapshot taken just before the issue pass — the
/// stall-attribution accountant's background causes come from here (why
/// is the window starved: mispredict refill, front-end latency, or a
/// genuinely drained program?).
#[derive(Debug, Clone, Copy)]
struct FrontState {
    /// Fetch is stalled on an unresolved mispredicted branch.
    fetch_stalled: bool,
    /// Fetched instructions are waiting in the front end.
    frontq_nonempty: bool,
}

/// The cause an issue slot falls to when no rejected candidate explains
/// it: the window simply held too little work, and the front end says why.
fn background_cause(front: FrontState) -> StallCause {
    if front.fetch_stalled {
        StallCause::MispredictRecovery
    } else if front.frontq_nonempty {
        StallCause::DispatchStall
    } else {
        StallCause::EmptyWindow
    }
}

/// Per-instruction schedule record produced by [`Simulator::run_traced`] —
/// enough to reconstruct a cycle-by-cycle pipeline diagram (the paper's
/// Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Instruction address.
    pub pc: u32,
    /// Cycle the instruction entered the scheduler.
    pub dispatched_at: u64,
    /// Cycle the instruction was selected and began execution.
    pub issued_at: u64,
    /// Cycle its result became available.
    pub completed_at: u64,
    /// Execution cluster.
    pub cluster: usize,
}

/// The timing simulator.
///
/// Construct one per run with [`Simulator::new`], then [`run`](Self::run)
/// a trace to completion.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    bpred: Gshare,
    dcache: Dcache,
    rename: RenameTable,
    sched: Scheduler,
    pregs: Vec<PregInfo>,
    hot: Vec<HotEntry>,
    hot_mask: u64,
    stats: SimStats,
    check: Checker,
    /// Attached probe sinks (none by default — the hot loop's only
    /// disabled-case cost is one emptiness check per emission point).
    probes: Vec<Box<dyn ProbeSink>>,
    /// Wall-clock cutoff for the run (none by default); polled every
    /// 4096 cycles by the cycle loop.
    deadline: Option<Instant>,
    /// Tag-broadcast wakeup bookkeeping, rings keyed `seq & hot_mask` like
    /// the [`HotEntry`] ring. `wake_pending[h]` counts source operands
    /// whose producers have not issued; `wake_min_ready[h]` is a lower
    /// bound (over all clusters) on the cycle the operands could be ready;
    /// `wake_token[h]` stamps which dispatch owns the ring slot, so a
    /// producer's broadcast ignores waiters registered by a squashed
    /// wrong-path instruction whose sequence number was later reused.
    wake_pending: Vec<u8>,
    wake_min_ready: Vec<u64>,
    wake_token: Vec<u64>,
    /// Per-physical-register waiter lists: `(seq, token)` of dispatched
    /// instructions whose operand `p` is still unproduced. Drained by
    /// [`broadcast_ready`](Self::broadcast_ready) when the producer
    /// issues — the software analogue of the paper's tag broadcast, which
    /// is what lets the select loop scan only *awake* entries.
    waiters: Vec<Vec<(u64, u64)>>,
    /// Monotone dispatch counter backing `wake_token`.
    dispatch_count: u64,
    /// Whether the issue scan may prune asleep / not-yet-ready candidates.
    /// Off when the checker, the stall accountant, or fault injection is
    /// active: those observe (or deliberately violate) the per-candidate
    /// rejection sequence the pruned scan skips. Pruning never changes
    /// which instructions issue — only how many certainly-rejected
    /// candidates the scan touches — so timing is bit-identical either
    /// way; the differential and golden tests pin that.
    fast_wakeup: bool,
    /// Whether the tag-broadcast bookkeeping is maintained at all. Only
    /// central-window schedulers consume it (the awake-bitset scan), so
    /// FIFO and per-cluster-window machines skip the dispatch/issue-side
    /// bookkeeping entirely rather than pay for state they never read.
    track_wakeup: bool,
    /// Per-phase wall-clock accumulator (`None` unless profiling was
    /// requested — the disabled-case cost is an `is_some` check per
    /// phase boundary, like the probe emptiness check).
    profile: Option<PhaseProfile>,
    /// Sampled simulation: commit-count watermarks bounding the measured
    /// region. When `committed` crosses `measure_start` / `measure_end`,
    /// the cycle is recorded in the corresponding mark. Measuring an
    /// *interior* region (a cooldown follows the measured window) keeps
    /// the end-of-slice pipeline drain — cycles a continuous run would
    /// overlap with later work — out of the measurement. `u64::MAX` when
    /// unused: two compares per commit.
    measure_start: u64,
    measure_end: u64,
    measure_mark_start: Option<u64>,
    measure_mark_end: Option<u64>,
}

/// Wall-clock cost of each pipeline phase over a profiled run — what
/// `cesim --profile` prints. Phases follow the paper's Figure 1 stage
/// names; "wakeup" is candidate generation (the window/FIFO scan) and
/// "select" the per-candidate readiness/resource arbitration loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// In-order retirement of finished ROB heads.
    pub commit: Duration,
    /// Result completion (event-heap drain) and wrong-path squash.
    pub execute: Duration,
    /// Candidate generation: the wakeup scan over the issue structure.
    pub wakeup: Duration,
    /// Selection and issue of the generated candidates.
    pub select: Duration,
    /// Rename, steer, and insertion into the issue structure.
    pub dispatch: Duration,
    /// Fetch, branch prediction, and wrong-path synthesis.
    pub fetch: Duration,
}

impl PhaseProfile {
    /// Total instrumented time across all phases.
    pub fn total(&self) -> Duration {
        self.commit + self.execute + self.wakeup + self.select + self.dispatch + self.fetch
    }

    /// The phases in pipeline order with display names.
    pub fn rows(&self) -> [(&'static str, Duration); 6] {
        [
            ("fetch", self.fetch),
            ("dispatch", self.dispatch),
            ("wakeup", self.wakeup),
            ("select", self.select),
            ("execute", self.execute),
            ("commit", self.commit),
        ]
    }
}

/// Advances a profiling timestamp, returning the elapsed span (zero when
/// profiling is off and `mark` is `None`).
#[inline]
fn lap(mark: &mut Option<Instant>) -> Duration {
    match mark {
        Some(m) => {
            let now = Instant::now();
            let d = now - *m;
            *m = now;
            d
        }
        None => Duration::ZERO,
    }
}

impl Simulator {
    /// Creates a simulator for a machine configuration, or reports why the
    /// configuration is unusable — the non-aborting entry point for sweep
    /// drivers, which want to flag one bad grid cell and keep running the
    /// rest.
    ///
    /// # Errors
    ///
    /// Returns the first constraint [`SimConfig::validate`] rejects.
    pub fn try_new(cfg: SimConfig) -> Result<Simulator, ConfigError> {
        cfg.validate().map_err(ConfigError)?;
        Ok(Simulator {
            cfg,
            bpred: Gshare::new(cfg.bpred),
            dcache: Dcache::new(cfg.dcache),
            rename: RenameTable::new(cfg.physical_regs),
            sched: Scheduler::new(cfg.scheduler, cfg.clusters, cfg.steering, cfg.max_inflight),
            pregs: vec![PregInfo { ready: 0, cluster: None }; cfg.physical_regs],
            hot: vec![HotEntry::EMPTY; cfg.max_inflight.max(1).next_power_of_two()],
            hot_mask: cfg.max_inflight.max(1).next_power_of_two() as u64 - 1,
            stats: SimStats::default(),
            check: Checker::new(),
            probes: Vec::new(),
            deadline: None,
            wake_pending: vec![0; cfg.max_inflight.max(1).next_power_of_two()],
            wake_min_ready: vec![0; cfg.max_inflight.max(1).next_power_of_two()],
            wake_token: vec![0; cfg.max_inflight.max(1).next_power_of_two()],
            waiters: vec![Vec::new(); cfg.physical_regs],
            dispatch_count: 0,
            fast_wakeup: !cfg.check && !cfg.attribution && cfg.fault.is_none(),
            track_wakeup: matches!(
                cfg.scheduler,
                crate::config::SchedulerKind::CentralWindow { .. }
            ),
            profile: None,
            measure_start: u64::MAX,
            measure_end: u64::MAX,
            measure_mark_start: None,
            measure_mark_end: None,
        })
    }

    /// Creates a simulator for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`]; use
    /// [`try_new`](Self::try_new) to handle that case gracefully.
    pub fn new(cfg: SimConfig) -> Simulator {
        match Simulator::try_new(cfg) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Attaches a probe sink: it observes every pipeline event of the
    /// coming run and gets a [`ProbeSink::finish`] call with the final
    /// statistics. Attach before [`run`](Self::run); sinks never affect
    /// timing.
    pub fn attach_probe(&mut self, sink: Box<dyn ProbeSink>) {
        self.probes.push(sink);
    }

    /// Whether any probe sink is attached (the emission-point guard; with
    /// no sinks, events are never even constructed).
    #[inline]
    fn probes_on(&self) -> bool {
        !self.probes.is_empty()
    }

    /// Delivers one event to every attached sink.
    fn emit(&mut self, ev: ProbeEvent) {
        for p in &mut self.probes {
            p.event(&ev);
        }
    }

    /// Fires every sink's end-of-run hook with the final statistics.
    fn finish_probes(&mut self) {
        // Detach while iterating so sinks can read `self.stats` without a
        // split borrow of the simulator.
        let mut probes = std::mem::take(&mut self.probes);
        for p in &mut probes {
            p.finish(&self.stats);
        }
        self.probes = probes;
    }

    /// Arms a wall-clock deadline for the coming run: once `limit` has
    /// elapsed the cycle loop stops (checked every 4096 cycles) and
    /// [`try_run`](Self::try_run) returns
    /// [`SimError::DeadlineExceeded`]. The sweep runner uses this to
    /// bound a wedged or pathologically slow cell without killing the
    /// worker thread.
    pub fn set_deadline(&mut self, limit: Duration) {
        self.deadline = Some(Instant::now() + limit);
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks or the invariant checker records
    /// a violation (a bug in the simulator, surfaced rather than
    /// hidden); use [`try_run`](Self::try_run) to handle those without
    /// unwinding.
    pub fn run(self, trace: &Trace) -> SimStats {
        match self.try_run(trace) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the trace to completion, reporting deadlocks, checker
    /// violations, and expired deadlines as values instead of panics —
    /// the entry point for fault-tolerant sweep drivers.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] that stopped the run.
    pub fn try_run(mut self, trace: &Trace) -> Result<SimStats, SimError> {
        self.run_core(trace.as_slice())
    }

    /// Runs the trace with per-phase wall-clock profiling enabled,
    /// returning the statistics and the phase breakdown (`cesim
    /// --profile`). Off this path the instrumentation costs one `is_some`
    /// check per phase boundary.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] that stopped the run.
    pub fn try_run_profiled(
        mut self,
        trace: &Trace,
    ) -> Result<(SimStats, PhaseProfile), SimError> {
        self.profile = Some(PhaseProfile::default());
        let stats = self.run_core(trace.as_slice())?;
        Ok((stats, self.profile.expect("enabled above")))
    }

    /// Replaces the cold branch predictor and D-cache with warmed copies —
    /// the state a sampled-simulation driver carried through its
    /// functional fast-forward. The copies must have been built from this
    /// simulator's own configuration (same geometry).
    pub fn warm_start(&mut self, bpred: Gshare, dcache: Dcache) {
        self.bpred = bpred;
        self.dcache = dcache;
    }

    /// Consumes the simulator, handing back the (now further-warmed)
    /// predictor and cache for the next fast-forward leg.
    pub(crate) fn into_warm_state(self) -> (Gshare, Dcache) {
        (self.bpred, self.dcache)
    }

    /// Arms the measurement region for sampled runs: record the cycle at
    /// which `start` instructions have committed (warmup done) and the
    /// cycle at which `end` have (measured window done; cooldown follows).
    pub(crate) fn set_measure_window(&mut self, start: u64, end: u64) {
        if start == 0 {
            // No warmup: the measurement starts at cycle zero.
            self.measure_mark_start = Some(0);
            self.measure_start = u64::MAX;
        } else {
            self.measure_start = start;
        }
        self.measure_end = end;
    }

    /// The cycles the measurement boundaries were crossed, if they were.
    pub(crate) fn measure_marks(&self) -> (Option<u64>, Option<u64>) {
        (self.measure_mark_start, self.measure_mark_end)
    }

    /// Runs a raw instruction slice (a sampled-simulation window) to
    /// completion. Identical to [`try_run`](Self::try_run) modulo the
    /// input type; sequence numbers need not start at zero.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] that stopped the run.
    pub(crate) fn run_slice(&mut self, insts: &[DynInst]) -> Result<SimStats, SimError> {
        self.run_core(insts)
    }

    /// Runs the trace, returning both the statistics and a per-instruction
    /// schedule (dispatch/issue/complete cycles and cluster), in commit
    /// order — the raw material for pipeline diagrams. A convenience over
    /// attaching a [`ScheduleRecorder`] probe by hand.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks or the checker records a
    /// violation; use [`try_run_traced`](Self::try_run_traced) to handle
    /// those without unwinding.
    pub fn run_traced(self, trace: &Trace) -> (SimStats, Vec<IssueRecord>) {
        match self.try_run_traced(trace) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// The non-panicking form of [`run_traced`](Self::run_traced).
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] that stopped the run.
    pub fn try_run_traced(mut self, trace: &Trace) -> Result<(SimStats, Vec<IssueRecord>), SimError> {
        let (recorder, handle) = ScheduleRecorder::new(trace.as_slice().len());
        self.attach_probe(Box::new(recorder));
        let stats = self.run_core(trace.as_slice())?;
        drop(self); // releases the recorder's clone of the handle
        let schedule = match Rc::try_unwrap(handle) {
            Ok(cell) => cell.into_inner(),
            Err(_) => unreachable!("the recorder was dropped with the simulator"),
        };
        Ok((stats, schedule))
    }

    /// The cycle loop shared by [`try_run`](Self::try_run) and
    /// [`try_run_traced`](Self::try_run_traced).
    fn run_core(&mut self, insts: &[DynInst]) -> Result<SimStats, SimError> {
        if insts.is_empty() {
            self.finish_probes();
            return Ok(self.stats.clone());
        }

        let mut rob: VecDeque<Entry> = VecDeque::with_capacity(self.cfg.max_inflight);
        let mut frontq: VecDeque<FrontEndSlot> = VecDeque::new();
        let mut stores = StoreTracker::default();
        let mut events: EventHeap = BinaryHeap::with_capacity(self.cfg.max_inflight);
        // Issue-loop scratch, reused every cycle (no per-cycle allocation).
        let mut cand_buf: Vec<Candidate> = Vec::with_capacity(self.cfg.max_inflight);
        let mut fu_used: Vec<usize> = vec![0; self.cfg.clusters];
        // Rejection causes recorded this cycle (attribution only).
        let mut rejects: Vec<StallCause> = Vec::with_capacity(self.cfg.max_inflight);
        let mut fetch_index = 0usize;
        // Sequence number of an unresolved mispredicted branch, if any.
        let mut fetch_stalled_on: Option<u64> = None;
        // Next synthetic sequence number and PC for wrong-path fetch.
        let mut wrong_seq: u64 = 0;
        let mut wrong_pc: u32 = 0;
        let mut wrong_reg: u8 = 8;
        // Wrong-path loads walk ahead of the most recent real data address,
        // polluting the cache the way real wrong-path slices do.
        let mut recent_mem_addr: u32 = ce_isa::DATA_BASE;
        let mut wrong_mem_offset: u32 = 0;
        let mut cycle: u64 = 0;
        let mut committed = 0usize;
        let deadlock_limit = 1_000 + 60 * insts.len() as u64;

        let profiling = self.profile.is_some();
        while committed < insts.len() {
            let mut mark = if profiling { Some(Instant::now()) } else { None };
            cycle += 1;
            if cycle >= deadlock_limit {
                self.finish_probes();
                return Err(SimError::Deadlock {
                    cycle,
                    committed: committed as u64,
                    total: insts.len() as u64,
                    rob: rob.len(),
                    frontq: frontq.len(),
                });
            }
            // The deadline poll sits off the per-cycle fast path: one
            // branch normally, a clock read every 1024 cycles when armed.
            if cycle & 0x3ff == 0 {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        self.finish_probes();
                        return Err(SimError::DeadlineExceeded { cycle });
                    }
                }
            }
            if let Some(f) = self.cfg.fault {
                if f.kind == FaultKind::PanicCell && cycle == f.at_cycle {
                    panic!("injected fault: deliberate cell panic at cycle {cycle}");
                }
            }

            // ---- commit ------------------------------------------------
            for _ in 0..self.cfg.retire_width {
                match rob.front() {
                    Some(e) if e.done => {
                        let e = rob.pop_front().expect("checked");
                        if let Some(prev) = e.prev_dest {
                            self.rename.release(prev);
                        }
                        if e.d.inst.opcode.kind() == OperationKind::Store {
                            stores.on_commit(e.seq);
                        }
                        if self.cfg.check {
                            self.check_commit(cycle, &e);
                        }
                        self.note_commit(&e);
                        if self.probes_on() {
                            self.emit(ProbeEvent::Commit {
                                cycle,
                                seq: e.seq,
                                pc: e.d.pc,
                                dispatched_at: e.dispatched_at,
                                issued_at: e.issued_at.expect("committed implies issued"),
                                completed_at: e.finish_at.expect("committed implies finished"),
                                cluster: e.cluster.unwrap_or(0),
                            });
                        }
                        committed += 1;
                        if committed as u64 == self.measure_start {
                            self.measure_mark_start = Some(cycle);
                        }
                        if committed as u64 == self.measure_end {
                            self.measure_mark_end = Some(cycle);
                        }
                    }
                    _ => break,
                }
            }
            if let Some(p) = &mut self.profile {
                p.commit += lap(&mut mark);
            }

            // ---- complete (results produced this cycle) -----------------
            // Drain the event heap instead of scanning the ROB: every
            // `finish_at` assignment pushed an event, so the heap's head
            // covers everything finishing now. Events for squashed
            // wrong-path work can alias a live entry's sequence number;
            // the exact-match guards below make such stale events inert.
            let mut resolved_branch: Option<u64> = None;
            while let Some(&Reverse((finish, seq))) = events.peek() {
                if finish > cycle {
                    break;
                }
                events.pop();
                let Some(front_seq) = rob.front().map(|e| e.seq) else { continue };
                let Some(off) = seq.checked_sub(front_seq) else { continue };
                let idx = off as usize;
                if idx >= rob.len() {
                    continue;
                }
                let e = &mut rob[idx];
                debug_assert_eq!(e.seq, seq, "ROB sequence numbers are contiguous");
                if e.done || e.finish_at != Some(cycle) {
                    continue; // stale event (squashed then seq reused)
                }
                e.done = true;
                if e.d.inst.opcode.kind() == OperationKind::Store {
                    stores.mark_done(seq);
                }
                if e.mispredicted && fetch_stalled_on == Some(seq) {
                    fetch_stalled_on = None; // redirect: fetch resumes
                    resolved_branch = Some(seq);
                }
                if self.probes_on() {
                    self.emit(ProbeEvent::Complete { cycle, seq });
                }
            }
            // Squash everything fetched past a resolved mispredicted
            // branch — with wrong-path modeling those are the synthetic
            // instructions polluting the machine.
            if let Some(branch_seq) = resolved_branch {
                while rob.back().map(|e| e.seq > branch_seq).unwrap_or(false) {
                    let e = rob.pop_back().expect("checked");
                    debug_assert!(e.wrong_path, "only wrong-path work follows the branch");
                    if e.issued_at.is_none() {
                        // Tail-side removal: in the head-only FIFO
                        // organizations the squashed instruction is the
                        // *youngest* in its FIFO, not the head, so the
                        // issue-path `remove` (which pops heads) is wrong
                        // here.
                        self.sched.remove_squashed(InstId(e.seq));
                    }
                    if self.probes_on() {
                        self.emit(ProbeEvent::Squash {
                            cycle,
                            seq: e.seq,
                            branch_seq,
                            issued: e.issued_at.is_some(),
                        });
                    }
                }
                if self.probes_on() {
                    // Wrong-path work still in the front end is squashed
                    // too — report it before it vanishes.
                    for slot in frontq.iter() {
                        if let SlotPayload::WrongPath(d) = slot.payload {
                            self.emit(ProbeEvent::Squash {
                                cycle,
                                seq: d.seq,
                                branch_seq,
                                issued: false,
                            });
                        }
                    }
                }
                frontq.retain(|slot| !slot.payload.is_wrong_path());
                stores.on_squash(branch_seq);
            }

            if let Some(p) = &mut self.profile {
                p.execute += lap(&mut mark);
            }

            // ---- wakeup + select + execute ------------------------------
            let front = FrontState {
                fetch_stalled: fetch_stalled_on.is_some(),
                frontq_nonempty: !frontq.is_empty(),
            };
            self.issue_cycle(
                cycle, &mut rob, &mut stores, &mut events, &mut cand_buf, &mut fu_used,
                &mut rejects, front,
            );
            if profiling {
                mark = Some(Instant::now()); // issue timed itself (wakeup/select)
            }

            // ---- dispatch (rename + steer) ------------------------------
            self.dispatch_cycle(cycle, insts, &mut frontq, &mut rob, &mut stores);
            if self.cfg.check {
                self.check_after_dispatch(cycle, &rob);
                if self.track_wakeup {
                    self.check_wakeup_state(cycle, &rob);
                }
                self.check_store_tracker(cycle, &rob, &stores);
            }
            if let Some(p) = &mut self.profile {
                p.dispatch += lap(&mut mark);
            }

            // ---- fetch ---------------------------------------------------
            let cap = 2 * self.cfg.fetch_width;
            if fetch_stalled_on.is_none() {
                for _ in 0..self.cfg.fetch_width {
                    if fetch_index >= insts.len() || frontq.len() >= cap {
                        break;
                    }
                    let d = &insts[fetch_index];
                    if let Some(addr) = d.mem_addr {
                        recent_mem_addr = addr;
                    }
                    let mut mispredicted = false;
                    if d.is_conditional_branch() {
                        let predicted = self.bpred.predict_and_update(d.pc, d.taken);
                        mispredicted = !self.cfg.bpred.perfect && predicted != d.taken;
                    }
                    let taken_cti = d.is_control() && d.taken;
                    frontq.push_back(FrontEndSlot {
                        payload: SlotPayload::Real(fetch_index),
                        ready_at: cycle + self.cfg.frontend_depth,
                        mispredicted,
                    });
                    if self.probes_on() {
                        self.emit(ProbeEvent::Fetch {
                            cycle,
                            seq: d.seq,
                            pc: d.pc,
                            wrong_path: false,
                            mispredicted,
                        });
                    }
                    fetch_index += 1;
                    if self.cfg.fetch_breaks_on_taken && taken_cti && !mispredicted {
                        break; // realistic fetch: stop at a taken branch
                    }
                    if mispredicted {
                        fetch_stalled_on = Some(d.seq);
                        // Wrong-path fetch continues from the (wrongly)
                        // predicted target; the synthetic stream chains
                        // sequence numbers after the branch.
                        wrong_seq = d.seq + 1;
                        wrong_pc = d.pc.wrapping_add(8);
                        break;
                    }
                }
            } else if self.cfg.model_wrong_path {
                for _ in 0..self.cfg.fetch_width {
                    if frontq.len() >= cap {
                        break;
                    }
                    // A wrong-path instruction: reads two live registers
                    // (so it waits in the window like real work) but writes
                    // nothing (r0), so no rename state needs recovery.
                    // Every third one is a load that strides ahead of the
                    // program's recent data — the cache pollution that makes
                    // wrong paths expensive on real machines.
                    let a = ce_isa::Reg::new(wrong_reg);
                    let b = ce_isa::Reg::new(8 + (wrong_reg + 5) % 16);
                    wrong_reg = 8 + (wrong_reg + 1) % 16;
                    let (inst, mem_addr) = if wrong_seq.is_multiple_of(3) {
                        wrong_mem_offset = wrong_mem_offset.wrapping_add(
                            self.cfg.dcache.line_bytes as u32 * 2,
                        );
                        (
                            ce_isa::Instruction::mem(ce_isa::Opcode::Lw, ce_isa::Reg::ZERO, 0, a),
                            Some(recent_mem_addr.wrapping_add(wrong_mem_offset)),
                        )
                    } else {
                        (
                            ce_isa::Instruction::rrr(
                                ce_isa::Opcode::Addu,
                                ce_isa::Reg::ZERO,
                                a,
                                b,
                            ),
                            None,
                        )
                    };
                    let d = DynInst {
                        seq: wrong_seq,
                        pc: wrong_pc,
                        inst,
                        next_pc: wrong_pc.wrapping_add(4),
                        taken: false,
                        mem_addr,
                    };
                    wrong_seq += 1;
                    wrong_pc = wrong_pc.wrapping_add(4);
                    self.stats.wrong_path_fetched += 1;
                    frontq.push_back(FrontEndSlot {
                        payload: SlotPayload::WrongPath(d),
                        ready_at: cycle + self.cfg.frontend_depth,
                        mispredicted: false,
                    });
                    if self.probes_on() {
                        self.emit(ProbeEvent::Fetch {
                            cycle,
                            seq: d.seq,
                            pc: d.pc,
                            wrong_path: true,
                            mispredicted: false,
                        });
                    }
                }
            }

            if let Some(p) = &mut self.profile {
                p.fetch += lap(&mut mark);
            }

            self.stats.occupancy_sum += self.sched.occupancy() as u64;
            if self.cfg.check && !self.check.violations().is_empty() {
                return self.checker_abort(cycle);
            }
        }

        self.stats.cycles = cycle;
        self.stats.committed = committed as u64;
        self.stats.dcache_accesses = self.dcache.hits() + self.dcache.misses();
        self.stats.dcache_misses = self.dcache.misses();
        if let Some(f) = self.cfg.fault {
            if f.kind == FaultKind::StatsCorrupt {
                // Silent accounting corruption; the end-of-run
                // reconciliation below is what must catch it.
                self.stats.issued = self.stats.issued.wrapping_add(1);
            }
        }
        if self.cfg.check {
            self.check.on_finish(&self.stats, &self.cfg);
            if !self.check.violations().is_empty() {
                return self.checker_abort(cycle);
            }
        }
        self.finish_probes();
        Ok(self.stats.clone())
    }

    /// Ends a checked run on recorded violations: probes still get their
    /// end-of-run flush (a pipeview log of the failing window is exactly
    /// what one debugs with), then the violations come back as a value.
    fn checker_abort(&mut self, cycle: u64) -> Result<SimStats, SimError> {
        self.finish_probes();
        Err(SimError::Checker { cycle, violations: self.check.violations().to_vec() })
    }

    fn note_commit(&mut self, e: &Entry) {
        match e.d.inst.opcode.kind() {
            OperationKind::Branch => {
                self.stats.branches += 1;
                if e.mispredicted {
                    self.stats.mispredictions += 1;
                }
            }
            OperationKind::Load => self.stats.loads += 1,
            OperationKind::Store => self.stats.stores += 1,
            _ => {}
        }
        if e.used_intercluster {
            self.stats.intercluster_bypasses += 1;
        }
    }

    /// First cycle the value in `preg` can feed an FU in `cluster`.
    fn avail_in(&self, preg: Preg, cluster: usize) -> u64 {
        let info = self.pregs[preg as usize];
        if info.ready == u64::MAX {
            return u64::MAX;
        }
        let Some(producer) = info.cluster else {
            // Architectural value present before the program started.
            return info.ready;
        };
        let cross_penalty =
            if producer != cluster { self.cfg.intercluster_extra } else { 0 };
        let mut avail = match self.cfg.bypass_model {
            crate::config::BypassModel::Full => info.ready + cross_penalty,
            crate::config::BypassModel::None => {
                info.ready + self.cfg.regwrite_delay + cross_penalty
            }
        };
        if self.cfg.pipelined_wakeup_select {
            // Wakeup and select in separate stages: the earliest a
            // dependent can be selected slips by one cycle (Figure 10).
            avail += 1;
        }
        avail
    }

    /// Whether the consumer grabbed `preg` off a bypass path (rather than
    /// the local register file), and from which cluster it came.
    fn bypass_source(&self, preg: Preg, consumer_cluster: usize, at: u64) -> Option<usize> {
        if self.cfg.bypass_model == crate::config::BypassModel::None {
            return None; // everything comes from the register file
        }
        let info = self.pregs[preg as usize];
        let producer = info.cluster?;
        let regfile_at = info.ready
            + self.cfg.regwrite_delay
            + if producer != consumer_cluster { self.cfg.intercluster_extra } else { 0 };
        (at < regfile_at).then_some(producer)
    }

    /// Earliest cycle `preg` is usable in its *producer's own* cluster —
    /// the cross-cluster penalty stripped, everything else (register-file
    /// read delay, pipelined wakeup) kept. A candidate whose operands pass
    /// this but fail [`avail_in`](Self::avail_in) is waiting purely on the
    /// inter-cluster bypass.
    fn avail_local(&self, preg: Preg) -> u64 {
        let cluster = self.pregs[preg as usize].cluster.unwrap_or(0);
        self.avail_in(preg, cluster)
    }

    /// Classifies an operands-not-ready rejection for the stall
    /// accountant: ready-at-producer-but-not-here is [`InterclusterWait`];
    /// an unready FIFO head shadowing queued work is [`FifoHeadNotReady`];
    /// everything else is plain [`OperandWait`].
    ///
    /// [`InterclusterWait`]: StallCause::InterclusterWait
    /// [`FifoHeadNotReady`]: StallCause::FifoHeadNotReady
    /// [`OperandWait`]: StallCause::OperandWait
    fn operand_wait_cause(
        &self,
        id: InstId,
        required: &[Option<Preg>],
        cycle: u64,
    ) -> StallCause {
        if self.cfg.clusters > 1
            && required.iter().flatten().all(|&p| self.avail_local(p) <= cycle)
        {
            return StallCause::InterclusterWait;
        }
        if self.sched.head_only() {
            let shadows_work = self
                .sched
                .placement_of(id)
                .and_then(|f| self.sched.pool().map(|p| p.fifo_len(FifoId(f as usize))))
                .map(|len| len > 1)
                .unwrap_or(false);
            if shadows_work {
                return StallCause::FifoHeadNotReady;
            }
        }
        StallCause::OperandWait
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_cycle(
        &mut self,
        cycle: u64,
        rob: &mut VecDeque<Entry>,
        stores: &mut StoreTracker,
        events: &mut EventHeap,
        candidates: &mut Vec<Candidate>,
        fu_used: &mut [usize],
        rejects: &mut Vec<StallCause>,
        front: FrontState,
    ) {
        let wake_mark = if self.profile.is_some() { Some(Instant::now()) } else { None };
        // The pruned scans enumerate only *awake* entries (operands all
        // produced) — the bit the tag-broadcast bookkeeping maintains.
        // Asleep entries would be rejected by the operand checks below, so
        // the pruned candidate list issues identically; it just skips the
        // certainly-fruitless probes that dominated central-window runs.
        let fast = self.fast_wakeup && self.track_wakeup;
        match self.cfg.selection {
            crate::config::SelectionPolicy::OldestFirst => {
                if fast && self.sched.is_central() {
                    self.sched.awake_candidates_into_aged(candidates);
                } else {
                    // Age order comes from the scheduler's own structures
                    // (central age list / FIFO merge) — no per-cycle sort.
                    self.sched.candidates_into_sorted(candidates);
                }
            }
            crate::config::SelectionPolicy::Position => {
                if fast && self.sched.is_central() {
                    self.sched.awake_candidates_into(candidates);
                } else {
                    // Keep the scheduler's slot order: physical position,
                    // not age (the HP PA-8000-style policy the paper
                    // assumes).
                    self.sched.candidates_into(candidates);
                }
            }
            crate::config::SelectionPolicy::YoungestFirst => {
                if fast && self.sched.is_central() {
                    self.sched.awake_candidates_into(candidates);
                } else {
                    self.sched.candidates_into(candidates);
                }
                candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.id));
            }
        }
        let select_mark = wake_mark.map(|m| {
            let now = Instant::now();
            if let Some(p) = &mut self.profile {
                p.wakeup += now - m;
            }
            now
        });
        let attr = self.cfg.attribution;
        rejects.clear();
        if candidates.is_empty() {
            self.stats.issue_histogram[0] += 1;
            if attr {
                // Every slot this cycle is a background loss.
                self.stats
                    .stall_breakdown
                    .charge(background_cause(front), self.cfg.issue_width as u64);
            }
            if let (Some(m), Some(p)) = (select_mark, &mut self.profile) {
                p.select += Instant::now() - m;
            }
            return;
        }
        let rob_base = rob.front().map(|e| e.seq).unwrap_or(0);
        let fus_per_cluster = self.cfg.fus_per_cluster();
        fu_used.iter_mut().for_each(|u| *u = 0);
        let mut ports_used = 0usize;
        let mut issued = 0usize;

        // Injected scheduler faults (`cfg.fault`; `None` everywhere by
        // default, so this block costs one branch per cycle). See
        // [`FaultKind`] for why each is detected-or-masked.
        let mut inject_drop = false;
        let mut inject_early_select = false;
        if let Some(f) = self.cfg.fault {
            if cycle == f.at_cycle {
                match f.kind {
                    FaultKind::DropIssueCycle => inject_drop = true,
                    FaultKind::EarlySelect => inject_early_select = true,
                    FaultKind::HotEntryCorrupt => {
                        // The wakeup array lies: the first candidate's
                        // mirrored operands vanish, so it looks ready.
                        if let Some(c) = candidates.first() {
                            self.hot[(c.id.0 & self.hot_mask) as usize].srcs = [None, None];
                        }
                    }
                    FaultKind::StatsCorrupt | FaultKind::PanicCell => {}
                }
            }
        }

        for &cand in candidates.iter() {
            if inject_drop || issued >= self.cfg.issue_width {
                break;
            }
            // Pruned scan (central windows prune in the scheduler via the
            // awake bitset; pooled organizations prune here): a candidate
            // with an unproduced operand, or whose best-case operand
            // arrival is still in the future, fails the readiness checks
            // below in every cluster — skip it without probing.
            let h = (cand.id.0 & self.hot_mask) as usize;
            if fast && (self.wake_pending[h] != 0 || self.wake_min_ready[h] > cycle) {
                continue;
            }
            // Reject-path checks read only the 16-byte hot entry (and the
            // small preg/store tables); the ROB entry is touched once the
            // candidate is committed to issuing.
            let hot = self.hot[h];
            debug_assert!((cand.id.0 - rob_base) < rob.len() as u64);
            debug_assert!(rob[(cand.id.0 - rob_base) as usize].issued_at.is_none());

            // Stores split address generation from data: they issue once
            // the address register is ready (making their address known,
            // the Table 3 rule) and complete when the data arrives — which
            // requires the data producer to at least have issued, so the
            // arrival time is known.
            let is_store = hot.kind == OperationKind::Store;
            let split_store = is_store && self.cfg.split_store_issue;
            let required_srcs: &[Option<Preg>] =
                if split_store { &hot.srcs[..1] } else { &hot.srcs[..] };
            if split_store {
                let data_unknown = hot.srcs[1]
                    .map(|preg| self.pregs[preg as usize].ready == u64::MAX)
                    .unwrap_or(false);
                if data_unknown {
                    if attr {
                        // Waiting on the store-data producer: a dataflow
                        // wait (documented approximation).
                        rejects.push(StallCause::OperandWait);
                    }
                    continue;
                }
            }

            // Pick the execution cluster and check operand readiness.
            let cluster = match cand.cluster {
                Some(c) => {
                    if fu_used[c] >= fus_per_cluster {
                        if attr {
                            rejects.push(StallCause::FuPortContention);
                        }
                        continue;
                    }
                    let ready = required_srcs
                        .iter()
                        .flatten()
                        .all(|&p| self.avail_in(p, c) <= cycle);
                    if !ready && inject_early_select {
                        // Injected fault: select fires ahead of wakeup.
                        inject_early_select = false;
                    } else if !ready {
                        if attr {
                            let cause = self.operand_wait_cause(cand.id, required_srcs, cycle);
                            rejects.push(cause);
                        }
                        continue;
                    }
                    c
                }
                None => {
                    // Execution-driven steering: choose the cluster whose
                    // operands arrive first, preferring cluster 0 on ties
                    // (Section 5.6.1).
                    let mut picked =
                        self.pick_cluster(required_srcs, cycle, fu_used, fus_per_cluster);
                    if picked.is_none() && inject_early_select {
                        // Injected fault: select fires ahead of wakeup —
                        // any cluster with a free FU will do.
                        inject_early_select = false;
                        picked = (0..self.cfg.clusters).find(|&c| fu_used[c] < fus_per_cluster);
                    }
                    match picked {
                        Some(c) => c,
                        None => {
                            if attr {
                                // If some cluster (FU caps ignored) had the
                                // operands ready, only contention blocked
                                // the issue; otherwise it is an operand
                                // wait, possibly cross-cluster.
                                let ready_somewhere = (0..self.cfg.clusters).any(|c| {
                                    required_srcs
                                        .iter()
                                        .flatten()
                                        .all(|&p| self.avail_in(p, c) <= cycle)
                                });
                                rejects.push(if ready_somewhere {
                                    StallCause::FuPortContention
                                } else {
                                    self.operand_wait_cause(cand.id, required_srcs, cycle)
                                });
                            }
                            continue;
                        }
                    }
                }
            };

            if self.probes_on() {
                self.emit(ProbeEvent::Wakeup { cycle, seq: cand.id.0, cluster });
            }

            // Memory structural and ordering constraints.
            let kind = hot.kind;
            let is_mem = matches!(kind, OperationKind::Load | OperationKind::Store);
            if is_mem && ports_used >= self.cfg.dcache.ports {
                if attr {
                    rejects.push(StallCause::FuPortContention);
                }
                continue;
            }
            if kind == OperationKind::Load {
                let load_word = hot.mem_addr.map(|a| a & !3);
                if !stores.load_may_issue(cand.id.0, load_word, self.cfg.mem_disambiguation) {
                    if attr {
                        // Blocked by an older store: a memory-dependence
                        // wait (documented approximation).
                        rejects.push(StallCause::OperandWait);
                    }
                    continue;
                }
            }

            // The candidate issues: from here on no check rejects it, and
            // the ROB entry comes into play.
            let idx = (cand.id.0 - rob_base) as usize;
            if self.cfg.check {
                // Audit the issue decision against primary state (ROB
                // operands, pool queues) before any mutation happens.
                self.check_issue(cycle, cand.id, cluster, rob, rob_base, stores);
            }

            // Latency: ALU/branch/jump 1 cycle; stores complete on issue;
            // loads add the D-cache access.
            let latency = match kind {
                OperationKind::Load => {
                    let load_word = hot.mem_addr.map(|a| a & !3);
                    if stores.forwarding_store(cand.id.0, load_word).is_some() {
                        self.stats.forwarded_loads += 1;
                        2
                    } else {
                        let addr = hot.mem_addr.expect("loads carry addresses");
                        match self.dcache.access(addr, false) {
                            Access::Hit => 2,
                            Access::Miss { .. } => 2 + self.cfg.dcache.miss_penalty,
                        }
                    }
                }
                OperationKind::Store => {
                    let addr = hot.mem_addr.expect("stores carry addresses");
                    let _ = self.dcache.access(addr, true);
                    // The store completes when its data arrives (it may
                    // issue address-first, before the data is ready).
                    let data_wait = hot
                        .srcs
                        .get(1)
                        .copied()
                        .flatten()
                        .map(|p| self.avail_in(p, cluster).saturating_sub(cycle))
                        .unwrap_or(0);
                    1 + data_wait
                }
                _ => self.cfg.op_latency(rob[idx].d.inst.opcode),
            };

            // Record inter-cluster bypass usage before mutating preg state.
            let entry = &mut rob[idx];
            let mut used_intercluster = false;
            for &src in entry.srcs.iter().flatten() {
                if let Some(producer) = self.bypass_source(src, cluster, cycle) {
                    if producer != cluster {
                        used_intercluster = true;
                    }
                }
            }
            entry.used_intercluster = used_intercluster;
            entry.cluster = Some(cluster);
            entry.issued_at = Some(cycle);
            entry.finish_at = Some(cycle + latency);
            if let Some(dest) = entry.dest {
                self.pregs[dest as usize] =
                    PregInfo { ready: cycle + latency, cluster: Some(cluster) };
                // Tag broadcast: consumers waiting on `dest` learn its
                // arrival time; the last outstanding operand wakes them.
                if self.track_wakeup {
                    self.broadcast_ready(dest);
                }
            }
            events.push(Reverse((cycle + latency, cand.id.0)));
            if is_store {
                // Later loads in this same issue pass must see the store
                // as issued (the AddressesKnown/Oracle predicates).
                stores.mark_issued(cand.id.0);
            }

            if rob[idx].wrong_path {
                self.stats.wrong_path_issued += 1;
            }
            self.stats.issued += 1;
            self.sched.remove(cand.id);
            fu_used[cluster] += 1;
            if is_mem {
                ports_used += 1;
            }
            issued += 1;
            if self.probes_on() {
                self.emit(ProbeEvent::Issue {
                    cycle,
                    seq: cand.id.0,
                    cluster,
                    latency,
                    intercluster: used_intercluster,
                });
            }
        }
        self.stats.issue_histogram[issued.min(16)] += 1;
        if attr {
            // Charge the unused slots: one per rejected candidate in scan
            // order, the remainder (the window held too few candidates) to
            // the front-end background cause. Exactly `width − issued`
            // slots are charged, so the per-run identity
            // `sum(causes) + issued == width × cycles` holds by
            // construction.
            let unused = self.cfg.issue_width - issued;
            let from_rejects = rejects.len().min(unused);
            for &cause in rejects.iter().take(from_rejects) {
                self.stats.stall_breakdown.charge(cause, 1);
            }
            let leftover = (unused - from_rejects) as u64;
            if leftover > 0 {
                self.stats.stall_breakdown.charge(background_cause(front), leftover);
            }
        }
        if self.cfg.check {
            self.check_after_issue(
                cycle, candidates, rob, rob_base, stores, fu_used, ports_used, issued,
            );
        }
        if let (Some(m), Some(p)) = (select_mark, &mut self.profile) {
            p.select += Instant::now() - m;
        }
    }

    /// Best-case counterpart of [`avail_in`](Self::avail_in): the earliest
    /// cycle the value in a *produced* register could feed any cluster —
    /// the cross-cluster penalty taken as zero, every other delay kept.
    /// `min_ready` bounds built from this can only under-estimate, which
    /// is the safe direction for pruning. Architectural values (no
    /// producing cluster) are available at `ready` exactly.
    fn best_case_avail(&self, info: PregInfo) -> u64 {
        debug_assert_ne!(info.ready, u64::MAX);
        if info.cluster.is_none() {
            return info.ready;
        }
        let mut avail = info.ready;
        if self.cfg.bypass_model == crate::config::BypassModel::None {
            avail += self.cfg.regwrite_delay;
        }
        if self.cfg.pipelined_wakeup_select {
            avail += 1;
        }
        avail
    }

    /// Registers a just-dispatched instruction with the tag-broadcast
    /// bookkeeping: counts unproduced operands (and enlists on their
    /// producers' waiter lists), folds already-known operands into the
    /// best-case readiness bound, and wakes the entry immediately when
    /// nothing is outstanding.
    fn register_wakeup(&mut self, seq: u64, srcs: [Option<Preg>; 2], kind: OperationKind) {
        let h = (seq & self.hot_mask) as usize;
        self.dispatch_count += 1;
        let token = self.dispatch_count;
        self.wake_token[h] = token;
        let split_store = kind == OperationKind::Store && self.cfg.split_store_issue;
        let mut pending = 0u8;
        let mut bound = 0u64;
        for (i, &src) in srcs.iter().enumerate() {
            let Some(p) = src else { continue };
            let info = self.pregs[p as usize];
            if info.ready == u64::MAX {
                pending += 1;
                self.waiters[p as usize].push((seq, token));
            } else if !(split_store && i == 1) {
                // A split store's data operand only needs a *known*
                // arrival, not a ready value — it never constrains the
                // earliest issue cycle, so it stays out of the bound.
                bound = bound.max(self.best_case_avail(info));
            }
        }
        self.wake_pending[h] = pending;
        self.wake_min_ready[h] = bound;
        if pending == 0 {
            self.sched.set_awake(InstId(seq));
        }
    }

    /// Drains the waiter list of a register whose producer just issued:
    /// each still-valid waiter loses one pending operand, absorbs the
    /// value's best-case arrival into its readiness bound, and wakes when
    /// its last operand is accounted for. Waiters whose ring token
    /// mismatches belong to a squashed instruction whose sequence number
    /// was reused — ignored.
    fn broadcast_ready(&mut self, p: Preg) {
        if self.waiters[p as usize].is_empty() {
            return;
        }
        // Take the list to end the borrow; the loop may push to *other*
        // registers' lists never this one (a producer issues once).
        let mut ws = std::mem::take(&mut self.waiters[p as usize]);
        let contribution = self.best_case_avail(self.pregs[p as usize]);
        for &(seq, token) in &ws {
            let h = (seq & self.hot_mask) as usize;
            if self.wake_token[h] != token {
                continue;
            }
            let hot = self.hot[h];
            let split_store =
                hot.kind == OperationKind::Store && self.cfg.split_store_issue;
            let data_only =
                split_store && hot.srcs[1] == Some(p) && hot.srcs[0] != Some(p);
            if !data_only {
                let b = &mut self.wake_min_ready[h];
                *b = (*b).max(contribution);
            }
            let left = self.wake_pending[h].saturating_sub(1);
            self.wake_pending[h] = left;
            if left == 0 {
                self.sched.set_awake(InstId(seq));
            }
        }
        ws.clear();
        self.waiters[p as usize] = ws; // hand the allocation back
    }

    /// Checker audit of the tag-broadcast bookkeeping: for every resident
    /// (unissued) entry, the pending count and readiness bound must equal
    /// a recomputation from primary state. Exact equality holds because a
    /// register's `ready`/`cluster` never change between the producer's
    /// issue and the consumer's departure, so each contribution is the
    /// same whenever it is computed.
    fn check_wakeup_state(&mut self, cycle: u64, rob: &VecDeque<Entry>) {
        for e in rob.iter().filter(|e| e.issued_at.is_none()) {
            let h = (e.seq & self.hot_mask) as usize;
            let split_store = e.d.inst.opcode.kind() == OperationKind::Store
                && self.cfg.split_store_issue;
            let mut pending = 0u8;
            let mut bound = 0u64;
            for (i, &src) in e.srcs.iter().enumerate() {
                let Some(p) = src else { continue };
                let info = self.pregs[p as usize];
                if info.ready == u64::MAX {
                    pending += 1;
                } else if !(split_store && i == 1) {
                    bound = bound.max(self.best_case_avail(info));
                }
            }
            if self.wake_pending[h] != pending {
                self.check.violation(
                    cycle,
                    Some(e.seq),
                    format!(
                        "wakeup pending count desynced: tracked {}, recomputed {pending}",
                        self.wake_pending[h]
                    ),
                );
            }
            if self.wake_min_ready[h] != bound {
                self.check.violation(
                    cycle,
                    Some(e.seq),
                    format!(
                        "wakeup readiness bound desynced: tracked {}, recomputed {bound}",
                        self.wake_min_ready[h]
                    ),
                );
            }
        }
    }

    fn pick_cluster(
        &self,
        srcs: &[Option<Preg>],
        cycle: u64,
        fu_used: &[usize],
        fus_per_cluster: usize,
    ) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (c, used) in fu_used.iter().enumerate().take(self.cfg.clusters) {
            if *used >= fus_per_cluster {
                continue;
            }
            let avail = srcs
                .iter()
                .flatten()
                .map(|&p| self.avail_in(p, c))
                .max()
                .unwrap_or(0);
            if avail > cycle {
                continue;
            }
            // Lower availability time wins; cluster 0 wins ties because it
            // is scanned first.
            if best.map(|(a, _)| avail < a).unwrap_or(true) {
                best = Some((avail, c));
            }
        }
        best.map(|(_, c)| c)
    }

    // ---- invariant checker hooks (active only with `cfg.check`) --------

    /// Commit-time invariants: strictly increasing retirement order, and a
    /// sane dispatch → issue → complete → commit timeline.
    fn check_commit(&mut self, cycle: u64, e: &Entry) {
        self.check.on_commit(cycle, e.seq);
        if e.wrong_path {
            self.check.violation(cycle, Some(e.seq), "wrong-path instruction committed");
        }
        if !e.done {
            self.check.violation(cycle, Some(e.seq), "committed while not done");
        }
        match (e.issued_at, e.finish_at) {
            // Complete runs after commit within a cycle, so a committing
            // entry finished on an earlier cycle.
            (Some(i), Some(f)) if e.dispatched_at < i && i < f && f < cycle => {}
            _ => self.check.violation(
                cycle,
                Some(e.seq),
                format!(
                    "commit timeline out of order: dispatched {}, issued {:?}, finished {:?}",
                    e.dispatched_at, e.issued_at, e.finish_at
                ),
            ),
        }
    }

    /// Issue-time invariants for one issuing instruction, audited against
    /// primary state (ROB operands, FIFO queues) before any mutation.
    fn check_issue(
        &mut self,
        cycle: u64,
        id: InstId,
        cluster: usize,
        rob: &VecDeque<Entry>,
        rob_base: u64,
        stores: &StoreTracker,
    ) {
        let e = &rob[(id.0 - rob_base) as usize];
        let kind = e.d.inst.opcode.kind();
        // The HotEntry ring is a performance mirror of the ROB; any skew
        // means the issue loop decided on stale operands.
        let hot = self.hot[(id.0 & self.hot_mask) as usize];
        if hot.srcs != e.srcs || hot.kind != kind || hot.mem_addr != e.d.mem_addr {
            self.check.violation(
                cycle,
                Some(id.0),
                format!(
                    "HotEntry ring desynced from ROB: hot ({:?}, {:?}, {:?}) vs \
                     ROB ({:?}, {:?}, {:?})",
                    hot.srcs, hot.kind, hot.mem_addr, e.srcs, kind, e.d.mem_addr
                ),
            );
        }
        // Operands-ready-at-issue, re-derived from the ROB operand fields.
        let split_store = kind == OperationKind::Store && self.cfg.split_store_issue;
        let required: &[Option<Preg>] = if split_store { &e.srcs[..1] } else { &e.srcs[..] };
        for &p in required.iter().flatten() {
            let at = self.avail_in(p, cluster);
            if at > cycle {
                self.check.violation(
                    cycle,
                    Some(id.0),
                    format!(
                        "issued with operand p{p} unavailable in cluster {cluster} until {at}"
                    ),
                );
            }
        }
        // The dependence-based organizations may only issue FIFO heads.
        if self.sched.head_only() {
            let head = self
                .sched
                .placement_of(id)
                .and_then(|f| self.sched.pool().and_then(|p| p.head(FifoId(f as usize))));
            if head != Some(id) {
                self.check
                    .violation(cycle, Some(id.0), format!("issued from mid-FIFO: head is {head:?}"));
            }
        }
        // Store-to-load forwarding: the StoreTracker's answer must agree
        // with a scan of the ROB's in-flight stores.
        if kind == OperationKind::Load {
            let word = e.d.mem_addr.map(|a| a & !3);
            let from_tracker = stores.forwarding_store(id.0, word);
            let from_rob = word.and_then(|w| {
                rob.iter()
                    .rev()
                    .filter(|s| s.seq < id.0)
                    .find(|s| {
                        s.d.inst.opcode.kind() == OperationKind::Store
                            && s.d.mem_addr.map(|a| a & !3) == Some(w)
                    })
                    .map(|s| s.seq)
            });
            if from_tracker != from_rob {
                self.check.violation(
                    cycle,
                    Some(id.0),
                    format!(
                        "forwarding store disagreement: tracker {from_tracker:?} vs \
                         ROB scan {from_rob:?}"
                    ),
                );
            }
        }
    }

    /// Post-pass invariants: issue caps recounted from the ROB, and the
    /// selection audit — no issuable candidate may be left waiting while
    /// issue width went unused.
    #[allow(clippy::too_many_arguments)]
    fn check_after_issue(
        &mut self,
        cycle: u64,
        candidates: &[Candidate],
        rob: &VecDeque<Entry>,
        rob_base: u64,
        stores: &StoreTracker,
        fu_used: &[usize],
        ports_used: usize,
        issued: usize,
    ) {
        let fus_per_cluster = self.cfg.fus_per_cluster();
        let mut per_cluster = vec![0usize; self.cfg.clusters];
        let mut mem = 0usize;
        let mut total = 0usize;
        for e in rob.iter() {
            if e.issued_at != Some(cycle) {
                continue;
            }
            total += 1;
            match e.cluster {
                Some(c) if c < self.cfg.clusters => per_cluster[c] += 1,
                other => self.check.violation(
                    cycle,
                    Some(e.seq),
                    format!("issued into nonexistent cluster {other:?}"),
                ),
            }
            if matches!(e.d.inst.opcode.kind(), OperationKind::Load | OperationKind::Store) {
                mem += 1;
            }
        }
        if total != issued {
            self.check.violation(
                cycle,
                None,
                format!("issue loop reported {issued} issues, the ROB holds {total}"),
            );
        }
        if total > self.cfg.issue_width {
            self.check.violation(
                cycle,
                None,
                format!("issued {total} > issue width {}", self.cfg.issue_width),
            );
        }
        for (c, &n) in per_cluster.iter().enumerate() {
            if n > fus_per_cluster {
                self.check
                    .violation(cycle, None, format!("cluster {c} issued {n} > {fus_per_cluster} FUs"));
            }
        }
        if mem > self.cfg.dcache.ports || mem != ports_used {
            self.check.violation(
                cycle,
                None,
                format!(
                    "memory issues {mem} vs {ports_used} ports counted, {} ports available",
                    self.cfg.dcache.ports
                ),
            );
        }
        // Selection audit. Sound because every resource an issue decision
        // consumes (FU slots, ports, width) only becomes scarcer over a
        // pass, and operand readiness at `cycle` cannot be created
        // mid-pass (a result produced now is ready at `cycle + latency`):
        // a leftover candidate feasible against the *final* state was
        // feasible when scanned, so skipping it broke the policy.
        if total < self.cfg.issue_width {
            for &cand in candidates {
                let e = &rob[(cand.id.0 - rob_base) as usize];
                if e.issued_at.is_some() {
                    continue; // issued this pass
                }
                let kind = e.d.inst.opcode.kind();
                // Mid-pass store issues *relax* the load-ordering (and
                // split-store data-known) predicates. Under oldest-first
                // every store older than the candidate settled before its
                // scan, so the audit is exact; other scan orders can skip
                // a load legitimately, so audit only operations whose
                // conditions are monotone there.
                let auditable = match self.cfg.selection {
                    crate::config::SelectionPolicy::OldestFirst => true,
                    _ => {
                        kind != OperationKind::Load
                            && !(kind == OperationKind::Store && self.cfg.split_store_issue)
                    }
                };
                if auditable
                    && self.would_issue(cand, cycle, rob_base, rob, stores, fu_used, ports_used)
                {
                    self.check.violation(
                        cycle,
                        Some(cand.id.0),
                        "issuable candidate skipped with issue width to spare",
                    );
                }
            }
        }
    }

    /// Re-evaluates every issue condition for a still-waiting candidate
    /// against the post-pass resource state (the checker's selection
    /// audit; never used by the issue loop itself).
    #[allow(clippy::too_many_arguments)]
    fn would_issue(
        &self,
        cand: Candidate,
        cycle: u64,
        rob_base: u64,
        rob: &VecDeque<Entry>,
        stores: &StoreTracker,
        fu_used: &[usize],
        ports_used: usize,
    ) -> bool {
        let e = &rob[(cand.id.0 - rob_base) as usize];
        let kind = e.d.inst.opcode.kind();
        let split_store = kind == OperationKind::Store && self.cfg.split_store_issue;
        let required: &[Option<Preg>] = if split_store { &e.srcs[..1] } else { &e.srcs[..] };
        if split_store {
            let data_unknown = e.srcs[1]
                .map(|preg| self.pregs[preg as usize].ready == u64::MAX)
                .unwrap_or(false);
            if data_unknown {
                return false;
            }
        }
        let fus_per_cluster = self.cfg.fus_per_cluster();
        let cluster_ok = match cand.cluster {
            Some(c) => {
                fu_used[c] < fus_per_cluster
                    && required.iter().flatten().all(|&p| self.avail_in(p, c) <= cycle)
            }
            None => self.pick_cluster(required, cycle, fu_used, fus_per_cluster).is_some(),
        };
        if !cluster_ok {
            return false;
        }
        let is_mem = matches!(kind, OperationKind::Load | OperationKind::Store);
        if is_mem && ports_used >= self.cfg.dcache.ports {
            return false;
        }
        if kind == OperationKind::Load {
            let word = e.d.mem_addr.map(|a| a & !3);
            if !stores.load_may_issue(cand.id.0, word, self.cfg.mem_disambiguation) {
                return false;
            }
        }
        true
    }

    /// Post-dispatch invariants: occupancy bounds and the redundant-state
    /// mirrors (scheduler residency, StoreTracker) against the ROB.
    fn check_after_dispatch(&mut self, cycle: u64, rob: &VecDeque<Entry>) {
        let occ = self.sched.occupancy();
        let cap = self.sched.capacity();
        if occ > cap {
            self.check
                .violation(cycle, None, format!("scheduler occupancy {occ} > capacity {cap}"));
        }
        if rob.len() > self.cfg.max_inflight {
            self.check.violation(
                cycle,
                None,
                format!("{} in flight > limit {}", rob.len(), self.cfg.max_inflight),
            );
        }
        let waiting = rob.iter().filter(|e| e.issued_at.is_none()).count();
        if waiting != occ {
            self.check.violation(
                cycle,
                None,
                format!("{waiting} unissued ROB entries but the scheduler holds {occ}"),
            );
        }
    }

    /// StoreTracker ↔ ROB lockstep: the tracker mirrors exactly the
    /// in-flight stores, in program order, with matching flags.
    fn check_store_tracker(&mut self, cycle: u64, rob: &VecDeque<Entry>, stores: &StoreTracker) {
        let from_rob: Vec<(u64, Option<u32>, bool, bool)> = rob
            .iter()
            .filter(|e| e.d.inst.opcode.kind() == OperationKind::Store)
            .map(|e| (e.seq, e.d.mem_addr.map(|a| a & !3), e.issued_at.is_some(), e.done))
            .collect();
        let from_tracker: Vec<(u64, Option<u32>, bool, bool)> =
            stores.recs.iter().map(|r| (r.seq, r.word, r.issued, r.done)).collect();
        if from_rob != from_tracker {
            self.check.violation(
                cycle,
                None,
                format!(
                    "StoreTracker desynced from ROB: tracker {from_tracker:?} vs ROB {from_rob:?}"
                ),
            );
        }
    }

    fn dispatch_cycle(
        &mut self,
        cycle: u64,
        insts: &[DynInst],
        frontq: &mut VecDeque<FrontEndSlot>,
        rob: &mut VecDeque<Entry>,
        stores: &mut StoreTracker,
    ) {
        let mut dispatched = 0usize;
        let mut had_candidate = false;
        while dispatched < self.cfg.fetch_width {
            let Some(&slot) = frontq.front() else { break };
            if slot.ready_at > cycle {
                break;
            }
            had_candidate = true;
            let wrong_path = slot.payload.is_wrong_path();
            let synthesized;
            let d = match slot.payload {
                SlotPayload::Real(index) => &insts[index],
                SlotPayload::WrongPath(d) => {
                    synthesized = d;
                    &synthesized
                }
            };

            if rob.len() >= self.cfg.max_inflight {
                self.stats.inflight_stalls += 1;
                if self.probes_on() {
                    self.emit(ProbeEvent::DispatchStall {
                        cycle,
                        seq: d.seq,
                        cause: DispatchStallCause::InflightLimit,
                    });
                }
                break;
            }
            if d.inst.defs().is_some() && !self.rename.has_free() {
                self.stats.preg_stalls += 1;
                if self.probes_on() {
                    self.emit(ProbeEvent::DispatchStall {
                        cycle,
                        seq: d.seq,
                        cause: DispatchStallCause::NoPhysicalReg,
                    });
                }
                break;
            }
            // Steer/insert before renaming so a scheduler stall leaves the
            // rename state untouched.
            let placement = match self.sched.try_insert_explained(InstId(d.seq), &d.inst) {
                Ok(p) => p,
                Err(reject) => {
                    self.stats.scheduler_stalls += 1;
                    if self.probes_on() {
                        let chain_full =
                            matches!(reject, InsertReject::Steering { chain_full: true });
                        self.emit(ProbeEvent::DispatchStall {
                            cycle,
                            seq: d.seq,
                            cause: DispatchStallCause::SchedulerFull { chain_full },
                        });
                    }
                    break;
                }
            };
            let cluster = placement.cluster;
            if self.probes_on() {
                self.emit(ProbeEvent::Dispatch {
                    cycle,
                    seq: d.seq,
                    pc: d.pc,
                    cluster,
                    slot: placement.slot,
                    steer: placement.steer,
                });
            }

            let srcs = d.inst.uses().map(|u| u.map(|r| self.rename.lookup(r)));
            let (dest, prev_dest) = match d.inst.defs() {
                Some(r) => {
                    let (new, prev) = self.rename.rename_dest(r).expect("checked has_free");
                    self.pregs[new as usize] = PregInfo { ready: u64::MAX, cluster: None };
                    // A freshly allocated register has no consumers yet;
                    // its waiter list is empty in normal operation, but a
                    // fault-injected early issue can leave stale entries.
                    self.waiters[new as usize].clear();
                    (Some(new), Some(prev))
                }
                None => (None, None),
            };

            stores.on_dispatch(d);
            self.hot[(d.seq & self.hot_mask) as usize] =
                HotEntry { srcs, kind: d.inst.opcode.kind(), mem_addr: d.mem_addr };
            if self.track_wakeup {
                self.register_wakeup(d.seq, srcs, d.inst.opcode.kind());
            }
            rob.push_back(Entry {
                seq: d.seq,
                d: *d,
                srcs,
                dest,
                prev_dest,
                cluster,
                dispatched_at: cycle,
                issued_at: None,
                finish_at: None,
                done: false,
                mispredicted: slot.mispredicted,
                used_intercluster: false,
                wrong_path,
            });
            frontq.pop_front();
            dispatched += 1;
        }
        if dispatched == 0 && had_candidate {
            self.stats.dispatch_stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;
    use ce_isa::asm::assemble;
    use ce_workloads::Emulator;

    fn trace_of(src: &str) -> Trace {
        let program = assemble(src).expect("assembles");
        Emulator::new(&program).run_to_completion(1_000_000).expect("halts")
    }

    fn run(mut cfg: SimConfig, src: &str) -> SimStats {
        // Every pipeline test doubles as a checker test: the invariant
        // checker re-derives the issue/commit decisions each cycle and
        // panics the run on any disagreement.
        cfg.check = true;
        Simulator::new(cfg).run(&trace_of(src))
    }

    /// A long chain of dependent ALU ops: IPC must approach 1 (one per
    /// cycle through the local bypass), never exceed it.
    #[test]
    fn dependent_chain_has_ipc_near_one() {
        let src = "
            li t0, 1
            addu t1, t0, t0\n".to_owned()
            + &"            addu t1, t1, t1\n".repeat(200)
            + "            halt\n";
        let stats = run(machine::baseline_8way(), &src);
        assert!(stats.ipc() <= 1.05, "chain cannot beat 1 IPC, got {}", stats.ipc());
        assert!(stats.ipc() > 0.7, "chain should approach 1 IPC, got {}", stats.ipc());
    }

    /// Independent ALU ops: an 8-wide machine should sustain well over
    /// 2 IPC even with front-end effects.
    #[test]
    fn independent_ops_exploit_width() {
        let mut src = String::from("li t0, 1\nli t1, 1\nli t2, 1\nli t3, 1\n");
        for _ in 0..100 {
            src.push_str("addu t4, t0, t1\naddu t5, t0, t1\naddu t6, t0, t1\naddu t7, t0, t1\n");
        }
        src.push_str("halt\n");
        let stats = run(machine::baseline_8way(), &src);
        assert!(stats.ipc() > 3.0, "independent stream too slow: {}", stats.ipc());
    }

    #[test]
    fn commits_every_instruction_exactly_once() {
        let stats = run(
            machine::baseline_8way(),
            "li t0, 50\nloop: addiu t0, t0, -1\nbnez t0, loop\nhalt\n",
        );
        // li + 50×(addiu,bne) + halt.
        assert_eq!(stats.committed, 102);
        assert_eq!(stats.branches, 50);
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // A data-dependent unpredictable branch pattern (LCG parity) vs a
        // monotone loop of the same instruction count.
        let unpredictable = "
            li s0, 12345
            li s1, 400
        loop:
            li t1, 1103515245
            mul s0, s0, t1
            addiu s0, s0, 12345
            srl t2, s0, 16
            andi t2, t2, 1
            beqz t2, skip
            addu s2, s2, t2
        skip:
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let predictable = "
            li s0, 12345
            li s1, 400
        loop:
            li t1, 1103515245
            mul s0, s0, t1
            addiu s0, s0, 12345
            srl t2, s0, 16
            andi t2, t2, 0
            beqz t2, skip
            addu s2, s2, t2
        skip:
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let a = run(machine::baseline_8way(), unpredictable);
        let b = run(machine::baseline_8way(), predictable);
        assert!(a.mispredictions > b.mispredictions + 50);
        assert!(a.ipc() < b.ipc(), "mispredictions must cost IPC");
    }

    #[test]
    fn cache_misses_slow_loads() {
        // Stream over 256 KB (thrashes 32 KB cache) vs re-reading one word.
        let thrash = "
            li s1, 2000
            move s2, gp
        loop:
            lw t0, 0(s2)
            addiu s2, s2, 128
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let friendly = "
            li s1, 2000
        loop:
            lw t0, 0(gp)
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let a = run(machine::baseline_8way(), thrash);
        let b = run(machine::baseline_8way(), friendly);
        assert!(a.dcache_miss_rate() > 0.9, "miss rate {}", a.dcache_miss_rate());
        assert!(b.dcache_miss_rate() < 0.05, "miss rate {}", b.dcache_miss_rate());
        assert!(a.cycles > b.cycles);
    }

    #[test]
    fn store_load_forwarding_detected() {
        let stats = run(
            machine::baseline_8way(),
            "
            li s1, 100
        loop:
            sw s1, 0(gp)
            lw t0, 0(gp)
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ",
        );
        assert!(stats.forwarded_loads >= 90, "forwarded {}", stats.forwarded_loads);
    }

    #[test]
    fn single_cluster_never_reports_intercluster_bypasses() {
        let stats = run(
            machine::baseline_8way(),
            "li t0, 7\nloop: addiu t0, t0, -1\nbnez t0, loop\nhalt\n",
        );
        assert_eq!(stats.intercluster_bypasses, 0);
    }

    #[test]
    fn clustered_machine_uses_intercluster_bypasses() {
        // Interleave two chains that cross-couple, forcing communication.
        let mut src = String::from("li t0, 1\nli t1, 2\n");
        for _ in 0..100 {
            src.push_str("addu t0, t0, t1\naddu t1, t1, t0\n");
        }
        src.push_str("halt\n");
        let stats = run(machine::clustered_fifos_8way(), &src);
        assert!(
            stats.intercluster_bypasses > 0,
            "cross-coupled chains must communicate across clusters"
        );
    }

    #[test]
    fn pipelined_wakeup_select_halves_chain_throughput() {
        // A pure dependence chain: atomic wakeup+select sustains 1 IPC,
        // the pipelined version at most 0.5 (one issue every two cycles) —
        // the Figure 10 bubble.
        let src = "li t0, 1\n".to_owned() + &"addu t0, t0, t0\n".repeat(300) + "halt\n";
        let atomic = run(machine::baseline_8way(), &src);
        let mut cfg = machine::baseline_8way();
        cfg.pipelined_wakeup_select = true;
        let pipelined = run(cfg, &src);
        assert!(pipelined.ipc() < 0.55, "pipelined chain IPC {}", pipelined.ipc());
        assert!(atomic.ipc() > 0.8, "atomic chain IPC {}", atomic.ipc());
    }

    #[test]
    fn no_bypass_model_waits_for_the_register_file() {
        let src = "li t0, 1\n".to_owned() + &"addu t0, t0, t0\n".repeat(200) + "halt\n";
        let full = run(machine::baseline_8way(), &src);
        let mut cfg = machine::baseline_8way();
        cfg.bypass_model = crate::config::BypassModel::None;
        let none = run(cfg, &src);
        // Chain step becomes 1 + regwrite_delay cycles.
        assert!(none.ipc() < full.ipc() / 2.0, "{} vs {}", none.ipc(), full.ipc());
        assert_eq!(none.intercluster_bypasses, 0);
    }

    #[test]
    fn selection_policies_agree_on_committed_work() {
        let src = "li t0, 50\nloop: addiu t0, t0, -1\nbnez t0, loop\nhalt\n";
        for policy in [
            crate::config::SelectionPolicy::OldestFirst,
            crate::config::SelectionPolicy::Position,
            crate::config::SelectionPolicy::YoungestFirst,
        ] {
            let mut cfg = machine::baseline_8way();
            cfg.selection = policy;
            let stats = run(cfg, src);
            assert_eq!(stats.committed, 102, "{policy:?}");
        }
    }

    #[test]
    fn weighted_latency_slows_multiply_chains() {
        let src = "li t0, 3\n".to_owned() + &"mul t0, t0, t0\n".repeat(100) + "halt\n";
        let uniform = run(machine::baseline_8way(), &src);
        let mut cfg = machine::baseline_8way();
        cfg.latency = crate::config::LatencyModel::Weighted;
        let weighted = run(cfg, &src);
        // A mul chain steps 3 cycles instead of 1.
        assert!(weighted.cycles > 2 * uniform.cycles, "{} vs {}", weighted.cycles, uniform.cycles);
        assert_eq!(weighted.committed, uniform.committed);
    }

    #[test]
    fn wrong_path_modeling_costs_cycles_but_not_correctness() {
        // Unpredictable branches: wrong-path pollution must slow the
        // machine down without changing what commits.
        let src = "
            li s0, 12345
            li s1, 300
        loop:
            li t1, 1103515245
            mul s0, s0, t1
            addiu s0, s0, 12345
            srl t2, s0, 16
            andi t2, t2, 1
            beqz t2, skip
            addu s2, s2, t2
        skip:
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let stall_model = run(machine::baseline_8way(), src);
        let mut cfg = machine::baseline_8way();
        cfg.model_wrong_path = true;
        let polluted = run(cfg, src);
        assert_eq!(polluted.committed, stall_model.committed);
        assert_eq!(polluted.mispredictions, stall_model.mispredictions);
        assert!(polluted.wrong_path_fetched > 0);
        assert!(polluted.wrong_path_issued <= polluted.wrong_path_fetched);
        assert!(
            polluted.cycles >= stall_model.cycles,
            "pollution cannot speed the machine up: {} vs {}",
            polluted.cycles,
            stall_model.cycles
        );
    }

    #[test]
    fn wrong_path_modeling_is_inert_without_mispredictions() {
        let src = "li t0, 100\nloop: addiu t0, t0, -1\nbgtz t0, loop\nhalt\n";
        let mut cfg = machine::baseline_8way();
        cfg.model_wrong_path = true;
        let stats = run(cfg, src);
        // The loop branch trains after the 12-bit history saturates
        // (~13 mispredictions); each one injects a bounded burst of
        // wrong-path work, far less than an unpredictable branch would.
        assert!(stats.mispredictions < 20, "{}", stats.mispredictions);
        assert!(stats.wrong_path_fetched < 80 * stats.mispredictions, "{}", stats.wrong_path_fetched);
        assert_eq!(stats.committed, 202);
    }

    #[test]
    fn perfect_prediction_is_an_upper_bound() {
        let src = "
            li s0, 12345
            li s1, 300
        loop:
            li t1, 1103515245
            mul s0, s0, t1
            addiu s0, s0, 12345
            srl t2, s0, 16
            andi t2, t2, 1
            beqz t2, skip
            addu s2, s2, t2
        skip:
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let real = run(machine::baseline_8way(), src);
        let mut cfg = machine::baseline_8way();
        cfg.bpred.perfect = true;
        let oracle = run(cfg, src);
        assert_eq!(oracle.mispredictions, 0);
        assert!(oracle.ipc() > real.ipc(), "{} vs {}", oracle.ipc(), real.ipc());
        assert_eq!(oracle.committed, real.committed);
    }

    #[test]
    fn memory_disambiguation_rules_order_correctly() {
        use crate::config::MemDisambiguation as M;
        // A store whose data hangs off a 12-cycle divide (weighted
        // latencies), followed by loads to *different* addresses: the
        // oracle knows they cannot conflict, the conservative rule makes
        // them wait for the store to finish.
        let src = "
            li s0, 1000000
            li s2, 3
            li s1, 200
        loop:
            div t0, s0, s2
            sw t0, 0(gp)
            lw t1, 64(gp)
            lw t2, 128(gp)
            addu s0, t0, s1
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ";
        let ipc = |rule| {
            let mut cfg = machine::baseline_8way();
            cfg.latency = crate::config::LatencyModel::Weighted;
            cfg.mem_disambiguation = rule;
            run(cfg, src).ipc()
        };
        let table3 = ipc(M::AddressesKnown);
        let conservative = ipc(M::AllStoresComplete);
        let oracle = ipc(M::Oracle);
        assert!(conservative <= table3 + 1e-9, "{conservative} vs {table3}");
        assert!(table3 <= oracle + 1e-9, "{table3} vs {oracle}");
        assert!(oracle > conservative, "the rules must actually differ here");
    }

    #[test]
    fn issue_histogram_accounts_every_cycle() {
        let src = "li t0, 50\nloop: addiu t0, t0, -1\nbnez t0, loop\nhalt\n";
        let stats = run(machine::baseline_8way(), src);
        let total: u64 = stats.issue_histogram.iter().sum();
        assert_eq!(total, stats.cycles, "every cycle lands in one bucket");
        let issued: u64 = stats
            .issue_histogram
            .iter()
            .enumerate()
            .map(|(n, &count)| n as u64 * count)
            .sum();
        assert_eq!(issued, stats.committed, "histogram mass equals instructions");
        assert!(stats.idle_issue_fraction() > 0.0, "front-end fill leaves idle cycles");
    }

    #[test]
    fn taken_branch_fetch_breaks_cost_throughput() {
        // A chain of taken jumps: the aggressive Table 3 fetch unit takes
        // eight per cycle, a realistic one takes one.
        let mut src = String::new();
        for i in 0..300 {
            src.push_str(&format!("L{i}: j L{}\n", i + 1));
        }
        src.push_str("L300: halt\n");
        let src = &src;
        let aggressive = run(machine::baseline_8way(), src);
        let mut cfg = machine::baseline_8way();
        cfg.fetch_breaks_on_taken = true;
        let realistic = run(cfg, src);
        assert!(
            realistic.cycles > 2 * aggressive.cycles,
            "{} vs {}",
            realistic.cycles,
            aggressive.cycles
        );
        assert_eq!(realistic.committed, aggressive.committed);
    }

    #[test]
    fn empty_trace_is_fine() {
        let stats = Simulator::new(machine::baseline_8way()).run(&Trace::new());
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.committed, 0);
    }

    #[test]
    fn fifo_machine_close_to_window_on_chains() {
        // On a pure dependence chain the FIFO machine loses nothing: the
        // chain sits in one FIFO and issues head-to-head.
        let src = "li t0, 1\n".to_owned()
            + &"addu t0, t0, t0\n".repeat(300)
            + "halt\n";
        let win = run(machine::baseline_8way(), &src);
        let dep = run(machine::dependence_8way(), &src);
        assert!(
            (win.ipc() - dep.ipc()).abs() / win.ipc() < 0.02,
            "window {} vs fifos {}",
            win.ipc(),
            dep.ipc()
        );
    }
}
