//! Konata-compatible pipeline-trace writer.
//!
//! [`KonataWriter`] is a [`ProbeSink`] that renders the probe event
//! stream in the Kanata log format (version 0004) understood by the
//! [Konata](https://github.com/shioyadan/Konata) pipeline viewer and
//! similar pipeview tools: one lane per instruction, stages `F` (fetch),
//! `Ds` (dispatch/wait), `X` (execute), `Cm` (completed, waiting to
//! retire), ended by a retire (`R … 0`) or flush (`R … 1`) record.
//!
//! Wrong-path instructions synthesized after a mispredicted branch reuse
//! the sequence numbers the real path later occupies, so the writer keys
//! live instructions by sequence number only *between* fetch and
//! commit/squash, and gives every fetched instance its own file-level id.
//!
//! Attach with [`Simulator::attach_probe`]; `cesim --pipeview out.log`
//! does this for you.
//!
//! [`Simulator::attach_probe`]: crate::pipeline::Simulator::attach_probe

use crate::probe::{DispatchStallCause, ProbeEvent, ProbeSink};
use crate::stats::SimStats;
use ce_core::steering::SteerChoice;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;

/// One fetched-but-not-retired instruction instance.
struct LiveInst {
    /// File-level instruction id (monotone per fetch — never reused, even
    /// when sequence numbers are).
    uid: u64,
    /// Stage currently open in the log.
    stage: &'static str,
}

/// Streams probe events as a Kanata 0004 pipeline log.
///
/// Write errors panic: the writer is an observation tool and a partial
/// trace silently passing for a full one is worse than an abort.
pub struct KonataWriter<W: Write> {
    w: W,
    started: bool,
    cur_cycle: u64,
    next_uid: u64,
    retire_id: u64,
    live: HashMap<u64, LiveInst>,
}

impl<W: Write> fmt::Debug for KonataWriter<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KonataWriter")
            .field("cur_cycle", &self.cur_cycle)
            .field("next_uid", &self.next_uid)
            .field("live", &self.live.len())
            .finish()
    }
}

/// Panic message for log write failures.
const WRITE_MSG: &str = "pipeline trace write failed";

impl<W: Write> KonataWriter<W> {
    /// Wraps a writer (use a `BufWriter` for files).
    pub fn new(w: W) -> KonataWriter<W> {
        KonataWriter {
            w,
            started: false,
            cur_cycle: 0,
            next_uid: 0,
            retire_id: 0,
            live: HashMap::new(),
        }
    }

    /// Unwraps the inner writer (for tests and in-memory use).
    pub fn into_inner(self) -> W {
        self.w
    }

    /// Emits the header (first call) and cycle-advance records.
    fn advance(&mut self, cycle: u64) {
        if !self.started {
            writeln!(self.w, "Kanata\t0004").expect(WRITE_MSG);
            writeln!(self.w, "C=\t{cycle}").expect(WRITE_MSG);
            self.started = true;
            self.cur_cycle = cycle;
        } else if cycle > self.cur_cycle {
            writeln!(self.w, "C\t{}", cycle - self.cur_cycle).expect(WRITE_MSG);
            self.cur_cycle = cycle;
        }
    }

    /// Closes the live instruction's current stage and opens `stage`.
    fn move_stage(&mut self, seq: u64, stage: &'static str) {
        if let Some(li) = self.live.get_mut(&seq) {
            writeln!(self.w, "E\t{}\t0\t{}", li.uid, li.stage).expect(WRITE_MSG);
            writeln!(self.w, "S\t{}\t0\t{stage}", li.uid).expect(WRITE_MSG);
            li.stage = stage;
        }
    }

    /// Appends hover detail text to the live instruction, if any.
    fn detail(&mut self, seq: u64, text: &str) {
        if let Some(li) = self.live.get(&seq) {
            writeln!(self.w, "L\t{}\t1\t{text}", li.uid).expect(WRITE_MSG);
        }
    }
}

/// Short label for a steering decision, for the hover text.
fn steer_label(choice: SteerChoice) -> String {
    match choice {
        SteerChoice::Chained { operand } => format!("chained(op{operand})"),
        SteerChoice::FreshAffinity => "fresh-affinity".into(),
        SteerChoice::Fresh => "fresh".into(),
        SteerChoice::Random => "random".into(),
        SteerChoice::RoundRobin => "round-robin".into(),
        SteerChoice::Balanced => "balanced".into(),
    }
}

impl<W: Write> ProbeSink for KonataWriter<W> {
    fn event(&mut self, ev: &ProbeEvent) {
        self.advance(ev.cycle());
        match *ev {
            ProbeEvent::Fetch { seq, pc, wrong_path, mispredicted, .. } => {
                let uid = self.next_uid;
                self.next_uid += 1;
                self.live.insert(seq, LiveInst { uid, stage: "F" });
                writeln!(self.w, "I\t{uid}\t{seq}\t0").expect(WRITE_MSG);
                let mark = if wrong_path {
                    " [wrong-path]"
                } else if mispredicted {
                    " [mispredict]"
                } else {
                    ""
                };
                writeln!(self.w, "L\t{uid}\t0\t{seq}: {pc:#010x}{mark}").expect(WRITE_MSG);
                writeln!(self.w, "S\t{uid}\t0\tF").expect(WRITE_MSG);
            }
            ProbeEvent::Dispatch { seq, cluster, slot, steer, .. } => {
                self.move_stage(seq, "Ds");
                let place = match cluster {
                    Some(c) => format!("cluster {c} fifo {slot}"),
                    None => format!("window slot {slot}"),
                };
                let how = match steer {
                    Some(choice) => format!(", steer {}", steer_label(choice)),
                    None => String::new(),
                };
                self.detail(seq, &format!("{place}{how}"));
            }
            ProbeEvent::DispatchStall { seq, cause, .. } => {
                let text = match cause {
                    DispatchStallCause::InflightLimit => "stall: in-flight limit".into(),
                    DispatchStallCause::NoPhysicalReg => "stall: no physical reg".into(),
                    DispatchStallCause::SchedulerFull { chain_full } => {
                        format!("stall: scheduler full (chain_full={chain_full})")
                    }
                };
                self.detail(seq, &text);
            }
            ProbeEvent::Wakeup { .. } => {} // subsumed by the issue record
            ProbeEvent::Issue { seq, cluster, latency, intercluster, .. } => {
                self.move_stage(seq, "X");
                self.detail(
                    seq,
                    &format!(
                        "issue: cluster {cluster}, latency {latency}{}",
                        if intercluster { ", intercluster bypass" } else { "" }
                    ),
                );
            }
            ProbeEvent::Complete { seq, .. } => {
                self.move_stage(seq, "Cm");
            }
            ProbeEvent::Commit { seq, .. } => {
                if let Some(li) = self.live.remove(&seq) {
                    writeln!(self.w, "E\t{}\t0\t{}", li.uid, li.stage).expect(WRITE_MSG);
                    writeln!(self.w, "R\t{}\t{}\t0", li.uid, self.retire_id).expect(WRITE_MSG);
                    self.retire_id += 1;
                }
            }
            ProbeEvent::Squash { seq, .. } => {
                if let Some(li) = self.live.remove(&seq) {
                    writeln!(self.w, "E\t{}\t0\t{}", li.uid, li.stage).expect(WRITE_MSG);
                    writeln!(self.w, "R\t{}\t0\t1", li.uid).expect(WRITE_MSG);
                }
            }
        }
    }

    fn finish(&mut self, _stats: &SimStats) {
        self.w.flush().expect(WRITE_MSG);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(events: &[ProbeEvent]) -> String {
        let mut w = KonataWriter::new(Vec::new());
        for ev in events {
            w.event(ev);
        }
        w.finish(&SimStats::default());
        String::from_utf8(w.into_inner()).expect("utf8 log")
    }

    #[test]
    fn single_instruction_lifecycle() {
        let log = drive(&[
            ProbeEvent::Fetch { cycle: 1, seq: 0, pc: 0x400000, wrong_path: false, mispredicted: false },
            ProbeEvent::Dispatch { cycle: 3, seq: 0, pc: 0x400000, cluster: None, slot: 0, steer: None },
            ProbeEvent::Issue { cycle: 4, seq: 0, cluster: 0, latency: 1, intercluster: false },
            ProbeEvent::Complete { cycle: 5, seq: 0 },
            ProbeEvent::Commit {
                cycle: 6, seq: 0, pc: 0x400000, dispatched_at: 3, issued_at: 4,
                completed_at: 5, cluster: 0,
            },
        ]);
        let expected = "Kanata\t0004\n\
                        C=\t1\n\
                        I\t0\t0\t0\n\
                        L\t0\t0\t0: 0x00400000\n\
                        S\t0\t0\tF\n\
                        C\t2\n\
                        E\t0\t0\tF\n\
                        S\t0\t0\tDs\n\
                        L\t0\t1\twindow slot 0\n\
                        C\t1\n\
                        E\t0\t0\tDs\n\
                        S\t0\t0\tX\n\
                        L\t0\t1\tissue: cluster 0, latency 1\n\
                        C\t1\n\
                        E\t0\t0\tX\n\
                        S\t0\t0\tCm\n\
                        C\t1\n\
                        E\t0\t0\tCm\n\
                        R\t0\t0\t0\n";
        assert_eq!(log, expected);
    }

    #[test]
    fn squash_flushes_and_frees_the_seq_for_reuse() {
        let log = drive(&[
            // Wrong-path instance of seq 5 ...
            ProbeEvent::Fetch { cycle: 1, seq: 5, pc: 0x1000, wrong_path: true, mispredicted: false },
            ProbeEvent::Squash { cycle: 2, seq: 5, branch_seq: 4, issued: false },
            // ... then the real path reuses seq 5 with a fresh uid.
            ProbeEvent::Fetch { cycle: 3, seq: 5, pc: 0x2000, wrong_path: false, mispredicted: false },
        ]);
        assert!(log.contains("L\t0\t0\t5: 0x00001000 [wrong-path]"), "{log}");
        // The wrong-path instance is flushed (type-1 retire), not retired.
        assert!(log.contains("R\t0\t0\t1"), "{log}");
        // The real instance got uid 1, not a collision on uid 0.
        assert!(log.contains("I\t1\t5\t0"), "{log}");
        assert!(log.contains("L\t1\t0\t5: 0x00002000"), "{log}");
    }

    #[test]
    fn steering_and_stall_details_render() {
        let log = drive(&[
            ProbeEvent::Fetch { cycle: 1, seq: 0, pc: 0, wrong_path: false, mispredicted: false },
            ProbeEvent::Dispatch {
                cycle: 2, seq: 0, pc: 0, cluster: Some(1), slot: 6,
                steer: Some(SteerChoice::Chained { operand: 1 }),
            },
            ProbeEvent::Fetch { cycle: 2, seq: 1, pc: 4, wrong_path: false, mispredicted: false },
            ProbeEvent::DispatchStall {
                cycle: 3, seq: 1,
                cause: DispatchStallCause::SchedulerFull { chain_full: true },
            },
        ]);
        assert!(log.contains("L\t0\t1\tcluster 1 fifo 6, steer chained(op1)"), "{log}");
        assert!(log.contains("L\t1\t1\tstall: scheduler full (chain_full=true)"), "{log}");
    }

    #[test]
    fn events_for_unknown_seqs_are_ignored() {
        // A sink attached mid-run (or a stale event) must not panic.
        let log = drive(&[
            ProbeEvent::Issue { cycle: 1, seq: 42, cluster: 0, latency: 1, intercluster: false },
            ProbeEvent::Commit {
                cycle: 2, seq: 42, pc: 0, dispatched_at: 0, issued_at: 1,
                completed_at: 1, cluster: 0,
            },
        ]);
        assert_eq!(log, "Kanata\t0004\nC=\t1\nC\t1\n");
    }
}
