//! `cesim` — command-line driver for the timing simulator.
//!
//! ```text
//! cesim [--machine NAME] [--bench NAME | --asm FILE] [--max-insts N]
//!       [--schedule | --profile]
//!
//!   --machine    window | fifos | clustered-fifos | clustered-windows |
//!                exec-steer | random          (default: window)
//!   --bench      compress|gcc|go|li|m88ksim|perl|vortex  (default: compress)
//!   --asm FILE   assemble and run FILE instead of a bundled benchmark
//!   --trace FILE replay a saved trace file instead of emulating
//!   --max-insts  dynamic instruction cap      (default: 2000000)
//!   --schedule   print the first 32 issue records
//!   --profile    print a per-phase wall-clock cost breakdown
//!   --save-trace FILE  write the dynamic trace to FILE and exit
//!   --metrics FILE     write a ce-sim.metrics.v1 JSON report (enables
//!                      stall attribution and prints the breakdown)
//!   --pipeview FILE    write a Konata-compatible pipeline trace
//!   --check            run with the invariant checker on
//!   --inject KIND@CYCLE  plant a scheduler fault (see `cesim --help`)
//! ```
//!
//! Exit codes: 0 success, 1 input/config error (unreadable trace, bad
//! assembly, invalid machine config), 2 usage error, 3 simulation
//! aborted (checker violation, deadlock, or deadline) — reported as a
//! structured one-line `error[KIND]: ...` on stderr, never a panic.

use ce_sim::{machine, FaultSpec, KonataWriter, SimConfig, Simulator};
use ce_workloads::{Benchmark, Emulator, Trace};
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;

fn machine_by_name(name: &str) -> Option<SimConfig> {
    machine::by_name(name)
}

fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::from_name(name)
}

struct Options {
    config: SimConfig,
    machine_name: String,
    source: Source,
    max_insts: u64,
    schedule: bool,
    profile: bool,
    save_trace: Option<String>,
    metrics: Option<String>,
    pipeview: Option<String>,
    check: bool,
    inject: Option<FaultSpec>,
}

enum Source {
    Bench(Benchmark),
    Asm(String),
    TraceFile(String),
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        config: machine::baseline_8way(),
        machine_name: "window".to_owned(),
        source: Source::Bench(Benchmark::Compress),
        max_insts: 2_000_000,
        schedule: false,
        profile: false,
        save_trace: None,
        metrics: None,
        pipeview: None,
        check: false,
        inject: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--machine" => {
                let name = value("--machine")?;
                opts.config = machine_by_name(&name)
                    .ok_or_else(|| format!("unknown machine `{name}`"))?;
                opts.machine_name = name;
            }
            "--bench" => {
                let name = value("--bench")?;
                let bench = benchmark_by_name(&name)
                    .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
                opts.source = Source::Bench(bench);
            }
            "--asm" => opts.source = Source::Asm(value("--asm")?),
            "--trace" => opts.source = Source::TraceFile(value("--trace")?),
            "--save-trace" => opts.save_trace = Some(value("--save-trace")?),
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--pipeview" => opts.pipeview = Some(value("--pipeview")?),
            "--max-insts" => {
                opts.max_insts = value("--max-insts")?
                    .parse()
                    .map_err(|e| format!("bad --max-insts: {e}"))?;
            }
            "--schedule" => opts.schedule = true,
            "--profile" => opts.profile = true,
            "--check" => opts.check = true,
            "--inject" => {
                let spec = value("--inject")?;
                opts.inject = Some(
                    FaultSpec::parse(&spec).map_err(|e| format!("bad --inject: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.profile && opts.schedule {
        return Err("--profile and --schedule are mutually exclusive".into());
    }
    Ok(opts)
}

fn load_trace(source: &Source, max_insts: u64) -> Result<Arc<Trace>, String> {
    match source {
        // The process-wide cache is shared with any library code that also
        // needs this kernel (and makes repeat loads free).
        Source::Bench(b) => ce_workloads::trace_cached(*b, max_insts)
            .map_err(|e| format!("running {b}: {e}")),
        Source::Asm(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {path}: {e}"))?;
            let program =
                ce_isa::asm::assemble(&text).map_err(|e| format!("assembling {path}: {e}"))?;
            let mut emu = Emulator::new(&program);
            emu.run(max_insts).map(Arc::new).map_err(|e| format!("emulating {path}: {e}"))
        }
        Source::TraceFile(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {path}: {e}"))?;
            ce_workloads::trace_io::parse_trace(&text).map(Arc::new).map_err(|e| e.to_string())
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: cesim [--machine window|fifos|clustered-fifos|clustered-windows|\
                 exec-steer|random] [--bench NAME | --asm FILE | --trace FILE] \
                 [--max-insts N] [--schedule | --profile] [--save-trace FILE] \
                 [--metrics FILE] [--pipeview FILE] [--check] [--inject KIND@CYCLE]"
            );
            return ExitCode::from(2);
        }
    };
    let trace = match load_trace(&opts.source, opts.max_insts) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &opts.save_trace {
        if let Err(e) = std::fs::write(path, ce_workloads::trace_io::format_trace(&trace)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} instructions to {path}", trace.len());
        return ExitCode::SUCCESS;
    }

    let mut config = opts.config;
    if opts.metrics.is_some() {
        // The metrics report carries the stall breakdown, so the
        // accountant rides along (observation only; timing is unchanged).
        config.attribution = true;
    }
    if opts.check {
        config.check = true;
    }
    config.fault = opts.inject;
    let mut sim = match Simulator::try_new(config) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.pipeview {
        match std::fs::File::create(path) {
            Ok(file) => sim.attach_probe(Box::new(KonataWriter::new(BufWriter::new(file)))),
            Err(e) => {
                eprintln!("error: creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let run = if opts.profile {
        sim.try_run_profiled(&trace)
            .map(|(stats, profile)| (stats, Vec::new(), Some(profile)))
    } else {
        sim.try_run_traced(&trace).map(|(stats, schedule)| (stats, schedule, None))
    };
    let (stats, schedule, profile) = match run {
        Ok(run) => run,
        Err(e) => {
            // One structured line, newlines flattened, so scripts can
            // match `error[...]` without multi-line parsing.
            let text = e.to_string();
            let flat: Vec<&str> = text.lines().map(str::trim).collect();
            eprintln!("error[{}]: {}", e.kind(), flat.join("; "));
            return ExitCode::from(3);
        }
    };
    println!("machine: {}", opts.machine_name);
    println!("instructions: {} ({} cycles)", stats.committed, stats.cycles);
    println!("IPC: {:.3}", stats.ipc());
    println!(
        "branches: {} ({:.1}% predicted)",
        stats.branches,
        stats.branch_accuracy() * 100.0
    );
    println!(
        "loads/stores: {}/{} (D-cache miss rate {:.1}%, {} forwarded loads)",
        stats.loads,
        stats.stores,
        stats.dcache_miss_rate() * 100.0,
        stats.forwarded_loads
    );
    if opts.config.clusters > 1 {
        println!(
            "inter-cluster bypasses: {:.1}% of instructions",
            stats.intercluster_bypass_frequency() * 100.0
        );
    }
    println!(
        "dispatch stalls: {} scheduler, {} in-flight, {} registers",
        stats.scheduler_stalls, stats.inflight_stalls, stats.preg_stalls
    );
    println!("mean scheduler occupancy: {:.1}", stats.mean_occupancy());

    if config.attribution {
        let slots = config.issue_width as u64 * stats.cycles;
        println!();
        println!(
            "stall attribution ({} issue slots = {} wide x {} cycles; {:.1}% used):",
            slots,
            config.issue_width,
            stats.cycles,
            if slots == 0 { 0.0 } else { stats.issued as f64 / slots as f64 * 100.0 }
        );
        for (cause, n) in stats.stall_breakdown.rows() {
            println!(
                "  {:<20} {:>12}  ({:>5.1}% of slots)",
                cause.key(),
                n,
                if slots == 0 { 0.0 } else { n as f64 / slots as f64 * 100.0 }
            );
        }
    }

    if let Some(profile) = &profile {
        let total = profile.total();
        println!();
        println!(
            "phase profile ({:.3}s instrumented, {:.0} ns/cycle):",
            total.as_secs_f64(),
            if stats.cycles == 0 { 0.0 } else { total.as_secs_f64() * 1e9 / stats.cycles as f64 }
        );
        for (name, cost) in profile.rows() {
            println!(
                "  {:<10} {:>9.3} ms  ({:>5.1}%)",
                name,
                cost.as_secs_f64() * 1e3,
                if total.is_zero() { 0.0 } else { cost.as_secs_f64() / total.as_secs_f64() * 100.0 }
            );
        }
    }

    let workload = match &opts.source {
        Source::Bench(b) => b.name().to_owned(),
        Source::Asm(path) | Source::TraceFile(path) => path.clone(),
    };
    if let Some(path) = &opts.metrics {
        let doc = ce_sim::metrics_json(&opts.machine_name, &workload, &config, &stats);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics to {path}");
    }
    if let Some(path) = &opts.pipeview {
        println!("wrote pipeline trace to {path}");
    }

    if opts.schedule {
        println!();
        println!("{:>6} {:>10} {:>8} {:>8} {:>9} {:>8}", "seq", "pc", "dispatch", "issue", "complete", "cluster");
        for rec in schedule.iter().take(32) {
            println!(
                "{:>6} {:>#10x} {:>8} {:>8} {:>9} {:>8}",
                rec.seq, rec.pc, rec.dispatched_at, rec.issued_at, rec.completed_at, rec.cluster
            );
        }
        println!();
        println!("pipeline diagram (first 32 instructions; D=dispatch, .=wait, E/digit=execute):");
        let head: Vec<_> = schedule.iter().take(32).copied().collect();
        print!("{}", ce_sim::viz::render_schedule(&head, opts.config.clusters));
    }
    ExitCode::SUCCESS
}
