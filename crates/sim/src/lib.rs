//! # ce-sim — cycle-level out-of-order superscalar timing simulator
//!
//! A trace-driven timing model of the paper's baseline superscalar
//! (Figure 1, Table 3) and of every scheduler organization evaluated in
//! Section 5:
//!
//! * the conventional machine with a central issue window,
//! * the dependence-based machine (FIFOs + steering, Figure 11),
//! * the clustered variants of Figure 16 — FIFOs or windows with
//!   dispatch-driven steering, a central window with execution-driven
//!   steering, and random steering — with configurable inter-cluster
//!   bypass latency.
//!
//! The functional outcome of every instruction (branch directions,
//! effective addresses) comes from a [`Trace`](ce_workloads::Trace)
//! produced by the `ce-workloads` emulator; this crate decides only *when*
//! things happen: fetch, rename, steer, wake up, select, execute, bypass,
//! and commit.
//!
//! ## Example
//!
//! ```
//! use ce_sim::{machine, Simulator};
//! use ce_workloads::{trace_benchmark, Benchmark};
//!
//! let trace = trace_benchmark(Benchmark::Compress, 20_000)?;
//! let stats = Simulator::new(machine::baseline_8way()).run(&trace);
//! assert!(stats.ipc() > 1.0);
//! # Ok::<(), ce_workloads::WorkloadError>(())
//! ```

pub mod attribution;
pub mod bpred;
pub mod check;
pub mod config;
pub mod dcache;
pub mod fault;
pub mod machine;
pub mod metrics;
pub mod oracle;
pub mod pipeline;
pub mod probe;
pub mod rename;
pub mod sampling;
pub mod scheduler;
pub mod stats;
pub mod trace_writer;
pub mod viz;

pub use attribution::{StallBreakdown, StallCause};
pub use check::{Checker, Violation};
pub use config::{
    BypassModel, ConfigError, LatencyModel, MemDisambiguation, SchedulerKind, SelectionPolicy,
    SimConfig, SteeringPolicy,
};
pub use fault::{FaultKind, FaultSpec};
pub use metrics::metrics_json;
pub use oracle::OracleSimulator;
pub use pipeline::{IssueRecord, PhaseProfile, SimError, Simulator};
pub use probe::{DispatchStallCause, EventLog, ProbeEvent, ProbeSink, ScheduleRecorder};
pub use sampling::{run_sampled, try_run_sampled, SampleError, SampledStats, SamplingConfig};
pub use stats::SimStats;
pub use trace_writer::KonataWriter;
