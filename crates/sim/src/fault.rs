//! Deterministic scheduler fault injection (enabled via
//! [`SimConfig::fault`]).
//!
//! The invariant checker (PR 2) and the attribution reconciliation
//! (PR 3) claim to catch timing bugs; this module deliberately plants
//! the bugs they claim to catch. A [`FaultSpec`] names one transient
//! fault and the cycle it strikes. Each fault is designed to be
//! **detected-or-masked** when the run has [`SimConfig::check`] on:
//! either the checker records a violation (the run aborts with a
//! [`SimError`]) or the fault provably could not have changed the
//! machine's behaviour and the statistics fingerprint is bit-identical
//! to an uninjected run. A fault that silently changes the fingerprint
//! is a hole in the checker — the `faultcampaign` harness in `ce-bench`
//! sweeps seeded fault plans asserting no such hole exists.
//!
//! With `fault: None` (the default, and every preset in
//! [`machine`](crate::machine)) the injection paths cost one branch per
//! cycle and the simulator is bit-identical to its pre-fault-injection
//! behaviour — the golden Figure 17 fingerprint tests pin this.
//!
//! [`SimConfig::fault`]: crate::config::SimConfig::fault
//! [`SimConfig::check`]: crate::config::SimConfig::check
//! [`SimError`]: crate::pipeline::SimError

use std::fmt;

/// What kind of transient fault to inject.
///
/// Detection notes assume the run has the invariant checker on
/// ([`SimConfig::check`](crate::config::SimConfig::check)); with the
/// checker off a fault may silently skew statistics — which is exactly
/// the scenario the checker exists to rule out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The wakeup logic goes silent for one cycle: every candidate the
    /// scheduler offered is dropped and nothing issues. Detected by the
    /// selection audit (an issuable candidate was skipped with the full
    /// issue width to spare) whenever anything *could* have issued that
    /// cycle; masked (fingerprint-neutral) when nothing was ready
    /// anyway.
    DropIssueCycle,
    /// The select logic fires early: the first candidate rejected for
    /// unready operands that cycle is issued anyway. Detected by the
    /// operands-ready-at-issue check the moment it issues; masked when
    /// every candidate was ready (nothing to select early).
    EarlySelect,
    /// The HotEntry ring entry of the scheduler's first candidate has
    /// its source-operand fields cleared — the wakeup array lying about
    /// readiness. Detected by the ring/ROB desync check when that
    /// instruction issues (every instruction eventually issues); masked
    /// when the instruction genuinely has no source operands.
    HotEntryCorrupt,
    /// The `issued` counter is bumped by one after the run — silent
    /// accounting corruption. Always detected by the end-of-run
    /// reconciliation (`issued == committed + wrong_path_issued`, and
    /// the attribution identity when the accountant ran).
    StatsCorrupt,
    /// A deliberate `panic!` mid-simulation — not a checker target but a
    /// way for the sweep runner's tests and fault campaigns to exercise
    /// per-cell panic isolation with a real unwinding cell.
    PanicCell,
}

impl FaultKind {
    /// Every injectable kind, for campaign generators.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::DropIssueCycle,
        FaultKind::EarlySelect,
        FaultKind::HotEntryCorrupt,
        FaultKind::StatsCorrupt,
        FaultKind::PanicCell,
    ];

    /// Short stable name (campaign reports, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropIssueCycle => "drop-issue-cycle",
            FaultKind::EarlySelect => "early-select",
            FaultKind::HotEntryCorrupt => "hot-entry-corrupt",
            FaultKind::StatsCorrupt => "stats-corrupt",
            FaultKind::PanicCell => "panic-cell",
        }
    }

    /// Parses a [`name`](Self::name) back into a kind.
    pub fn from_name(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One planted fault: a kind and the cycle it strikes.
///
/// A trigger cycle past the end of the run never fires (the fault is
/// trivially masked); [`FaultKind::StatsCorrupt`] ignores the cycle and
/// strikes at the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// The cycle on which the fault strikes.
    pub at_cycle: u64,
}

impl FaultSpec {
    /// Parses the `kind@cycle` CLI syntax (e.g. `early-select@500`).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (kind, cycle) = s
            .split_once('@')
            .ok_or_else(|| format!("expected <kind>@<cycle>, got {s:?}"))?;
        let kind = FaultKind::from_name(kind).ok_or_else(|| {
            let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown fault kind {kind:?} (one of: {})", names.join(", "))
        })?;
        let at_cycle = cycle
            .parse::<u64>()
            .map_err(|_| format!("bad fault trigger cycle {cycle:?}"))?;
        Ok(FaultSpec { kind, at_cycle })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.at_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("bogus"), None);
    }

    #[test]
    fn spec_parses_cli_syntax() {
        let spec = FaultSpec::parse("early-select@500").expect("parses");
        assert_eq!(spec, FaultSpec { kind: FaultKind::EarlySelect, at_cycle: 500 });
        assert_eq!(spec.to_string(), "early-select@500");
        assert!(FaultSpec::parse("early-select").is_err());
        assert!(FaultSpec::parse("bogus@5").is_err());
        assert!(FaultSpec::parse("early-select@many").is_err());
    }
}
