//! Simulation statistics.

use crate::attribution::StallBreakdown;

/// Counters collected over one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions issued to execution, counted at issue — wrong-path
    /// instructions included. Without wrong-path modeling this equals
    /// [`committed`](Self::committed); with it, the invariant checker
    /// reconciles `issued == committed + wrong_path_issued` (every
    /// correct-path issue commits; every other issue was squashed
    /// wrong-path work).
    pub issued: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Data-cache misses (loads and stores).
    pub dcache_misses: u64,
    /// Data-cache accesses.
    pub dcache_accesses: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwarded_loads: u64,
    /// Instructions that consumed at least one operand over an
    /// inter-cluster bypass (the Figure 17 bottom-graph metric: operands
    /// already waiting in the local register file do not count).
    pub intercluster_bypasses: u64,
    /// Cycles dispatch stalled with instructions available (any reason).
    pub dispatch_stall_cycles: u64,
    /// Dispatch stalls because no suitable FIFO/window slot existed.
    pub scheduler_stalls: u64,
    /// Dispatch stalls because the in-flight limit was reached.
    pub inflight_stalls: u64,
    /// Dispatch stalls because no physical register was free.
    pub preg_stalls: u64,
    /// Sum over cycles of scheduler occupancy (for mean occupancy).
    pub occupancy_sum: u64,
    /// Wrong-path instructions fetched (only with wrong-path modeling).
    pub wrong_path_fetched: u64,
    /// Wrong-path instructions that reached execution before the squash.
    pub wrong_path_issued: u64,
    /// Histogram of instructions issued per cycle: `issue_histogram[n]` is
    /// the number of cycles on which exactly `n` instructions issued
    /// (index capped at 16).
    pub issue_histogram: [u64; 17],
    /// Per-cause unused-issue-slot accounting (all zero unless the run had
    /// [`SimConfig::attribution`] enabled). Deliberately **not** part of
    /// [`fingerprint`](Self::fingerprint): attribution observes the timing
    /// model without being part of it, and the differential suite pins
    /// that fingerprints are identical with the accountant on or off.
    ///
    /// [`SimConfig::attribution`]: crate::config::SimConfig::attribution
    pub stall_breakdown: StallBreakdown,
}

impl SimStats {
    /// Instructions per cycle — the paper's primary metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy in [0, 1].
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Data-cache miss rate in [0, 1].
    pub fn dcache_miss_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_misses as f64 / self.dcache_accesses as f64
        }
    }

    /// Fraction of committed instructions that exercised an inter-cluster
    /// bypass — the paper's Figure 17 (bottom) metric.
    pub fn intercluster_bypass_frequency(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.intercluster_bypasses as f64 / self.committed as f64
        }
    }

    /// Fraction of cycles on which nothing issued (the machine's idle
    /// fraction from the issue logic's point of view).
    pub fn idle_issue_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issue_histogram[0] as f64 / self.cycles as f64
        }
    }

    /// Mean scheduler occupancy over the run.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Every counter, serialized into one canonical line — the equivalence
    /// fingerprint used by the golden tests. Two runs with equal
    /// fingerprints had bit-identical timing behaviour (IPC, bypass
    /// statistics, stall breakdowns, and the full issue histogram).
    pub fn fingerprint(&self) -> String {
        let hist = self
            .issue_histogram
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "cycles={} committed={} issued={} branches={} mispred={} loads={} stores={} \
             dmiss={} dacc={} fwd={} xbypass={} dstall={} sstall={} istall={} pstall={} \
             occ={} wpf={} wpi={} hist={}",
            self.cycles,
            self.committed,
            self.issued,
            self.branches,
            self.mispredictions,
            self.loads,
            self.stores,
            self.dcache_misses,
            self.dcache_accesses,
            self.forwarded_loads,
            self.intercluster_bypasses,
            self.dispatch_stall_cycles,
            self.scheduler_stalls,
            self.inflight_stalls,
            self.preg_stalls,
            self.occupancy_sum,
            self.wrong_path_fetched,
            self.wrong_path_issued,
            hist
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let stats = SimStats {
            cycles: 100,
            committed: 250,
            branches: 50,
            mispredictions: 5,
            dcache_accesses: 40,
            dcache_misses: 4,
            intercluster_bypasses: 25,
            occupancy_sum: 3200,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert!((stats.branch_accuracy() - 0.9).abs() < 1e-12);
        assert!((stats.dcache_miss_rate() - 0.1).abs() < 1e-12);
        assert!((stats.intercluster_bypass_frequency() - 0.1).abs() < 1e-12);
        assert!((stats.mean_occupancy() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_zero_or_one() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.branch_accuracy(), 1.0);
        assert_eq!(stats.dcache_miss_rate(), 0.0);
        assert_eq!(stats.intercluster_bypass_frequency(), 0.0);
    }
}
