//! SimPoint-style sampled simulation: functional fast-forward between
//! periodically placed detailed windows.
//!
//! A full detailed run prices every instruction through the timing model.
//! Sampling instead slices the trace into fixed periods and, in each
//! period, runs only a prefix (`warmup + window` instructions) through the
//! detailed pipeline; the rest of the period is *functionally
//! fast-forwarded* — just the branch predictor and D-cache are updated, at
//! a tiny fraction of the cost. The warmed predictor/cache state is
//! carried into the next detailed window, and the first `warmup`
//! instructions of each window are simulated but not measured, absorbing
//! the cold-pipeline transient (empty ROB, all-ready registers).
//!
//! The estimate is a ratio extrapolation: measured cycles over measured
//! instructions, scaled to the whole trace. The error model (how warmup
//! length, window length, and period trade speed against bias) is
//! documented in DESIGN.md; the `sampling_check` tool in `ce-bench`
//! reports the realized IPC error against full runs, and CI gates on it.
//!
//! Sampling never touches full runs: with sampling disabled the simulator
//! executes the exact same code as before this module existed, and the
//! Figure 17 fingerprints stay bit-identical.

use crate::bpred::Gshare;
use crate::config::{ConfigError, SimConfig};
use crate::dcache::Dcache;
use crate::pipeline::{SimError, Simulator};
use ce_isa::OperationKind;
use ce_workloads::{DynInst, Trace};
use std::fmt;

/// Everything that can go wrong starting or running a sampled simulation —
/// the checked surface sweep drivers (and the design-space explorer) use,
/// where an invalid grid cell must become a structured skip, never a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// The machine configuration failed [`SimConfig::validate`].
    Config(ConfigError),
    /// The sampling geometry failed [`SamplingConfig::validate`].
    Sampling(String),
    /// A detailed window failed mid-run (deadlock, expired deadline).
    Sim(SimError),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Config(e) => write!(f, "{e}"),
            SampleError::Sampling(msg) => {
                write!(f, "invalid sampling configuration: {msg}")
            }
            SampleError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SampleError {}

/// Geometry of a sampled run: every `period_insts`, run `warmup_insts +
/// window_insts` through the detailed model (measuring only the window)
/// and fast-forward the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Detailed-but-unmeasured instructions at the head of each window,
    /// absorbing the cold-start transient (empty ROB, all-ready
    /// registers).
    pub warmup_insts: u64,
    /// Measured instructions per window.
    pub window_insts: u64,
    /// Detailed-but-unmeasured instructions after the measured window,
    /// keeping the end-of-slice pipeline drain (cycles a continuous run
    /// would overlap with later work) out of the measurement.
    pub cooldown_insts: u64,
    /// Distance between window starts; the `period - warmup - window -
    /// cooldown` remainder is fast-forwarded.
    pub period_insts: u64,
}

impl Default for SamplingConfig {
    /// 256 warmup + 512 measured + 128 cooldown every 3072 instructions:
    /// ~29% of the trace through the detailed model, ~17% measured.
    ///
    /// Short, frequent windows beat long, sparse ones here: per-window
    /// measurement is *exact* (the detailed slice reproduces the full
    /// run's cycles for the measured region bit-for-bit once the warmup
    /// has absorbed the pipeline fill), so the only error source is phase
    /// coverage — compress swings between IPC 2 and IPC 8 at a few-K
    /// instruction scale, and a sparse window grid aliases against that.
    /// This geometry holds the cycle error under 2% on all seven kernels
    /// across all five Figure 17 organizations (worst case −1.8%,
    /// compress on the baseline), validated by `sampling_check`.
    fn default() -> SamplingConfig {
        SamplingConfig {
            warmup_insts: 256,
            window_insts: 512,
            cooldown_insts: 128,
            period_insts: 3072,
        }
    }
}

impl SamplingConfig {
    /// Instructions per period that run through the detailed model.
    fn detailed_insts(&self) -> u64 {
        self.warmup_insts
            .saturating_add(self.window_insts)
            .saturating_add(self.cooldown_insts)
    }

    /// Checks the geometry: a non-empty measured window, and a period
    /// long enough to contain the detailed prefix.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_insts == 0 {
            return Err("window_insts must be at least 1".into());
        }
        if self.period_insts < self.detailed_insts() {
            return Err(format!(
                "period_insts ({}) must cover warmup + window + cooldown ({})",
                self.period_insts,
                self.detailed_insts()
            ));
        }
        Ok(())
    }

    /// Fraction of the trace that goes through the detailed model
    /// (warmup + measured window + cooldown, per period).
    pub fn detailed_fraction(&self) -> f64 {
        (self.detailed_insts() as f64 / self.period_insts as f64).min(1.0)
    }
}

/// What a sampled run measured and estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledStats {
    /// Instructions in the trace.
    pub total_insts: u64,
    /// Detailed windows executed.
    pub windows: u32,
    /// Instructions run through the detailed model (warmup + measured).
    pub detailed_insts: u64,
    /// Instructions inside measured windows.
    pub measured_insts: u64,
    /// Cycles spent inside measured windows.
    pub measured_cycles: u64,
    /// Estimated full-run cycles (ratio extrapolation).
    pub est_cycles: u64,
    /// Whether the trace fit inside one detailed window, making the
    /// "estimate" an exact full run.
    pub exact: bool,
}

impl SampledStats {
    /// Estimated instructions per cycle for the whole trace.
    pub fn est_ipc(&self) -> f64 {
        self.total_insts as f64 / self.est_cycles as f64
    }

    /// Signed relative error of the estimate against a known full-run
    /// cycle count (negative = sampled run under-estimated the cycles).
    pub fn cycle_error_vs(&self, full_cycles: u64) -> f64 {
        (self.est_cycles as f64 - full_cycles as f64) / full_cycles as f64
    }
}

/// Runs a trace under sampled simulation: detailed warmup+window slices at
/// every period boundary, functional fast-forward in between, predictor
/// and cache state carried across the seams.
///
/// # Errors
///
/// Propagates the [`SimError`] of any detailed window (deadlock, expired
/// deadline — checker runs are full-length affairs and not expected here).
///
/// # Panics
///
/// Panics if `cfg` fails validation or `sampling` fails
/// [`SamplingConfig::validate`] — both are caller bugs, consistent with
/// [`Simulator::new`].
pub fn run_sampled(
    cfg: SimConfig,
    trace: &Trace,
    sampling: SamplingConfig,
) -> Result<SampledStats, SimError> {
    match try_run_sampled(cfg, trace, sampling) {
        Ok(stats) => Ok(stats),
        Err(SampleError::Sim(e)) => Err(e),
        Err(e @ (SampleError::Config(_) | SampleError::Sampling(_))) => panic!("{e}"),
    }
}

/// Checked form of [`run_sampled`]: an invalid machine configuration or
/// sampling geometry is a classified [`SampleError`] instead of a panic,
/// so sweep drivers probing risky corners of a design grid can record the
/// cell as a structured skip and move on.
///
/// # Errors
///
/// [`SampleError::Config`] / [`SampleError::Sampling`] for inputs that
/// fail validation; [`SampleError::Sim`] for a detailed window that fails
/// mid-run.
pub fn try_run_sampled(
    cfg: SimConfig,
    trace: &Trace,
    sampling: SamplingConfig,
) -> Result<SampledStats, SampleError> {
    sampling.validate().map_err(SampleError::Sampling)?;
    cfg.validate().map_err(|msg| SampleError::Config(ConfigError(msg)))?;
    let insts = trace.as_slice();
    let total = insts.len() as u64;
    // Degenerate but exact: the whole trace fits inside one detailed
    // region (warmup + window + cooldown), so sampling would simulate
    // every instruction in detail anyway — there is nothing to
    // fast-forward and nothing to save. Collapse to a plain full run with
    // zero scaling error rather than extrapolating whole-trace cycles
    // from a truncated measured window (which discards the fill and drain
    // cycles that dominate at these lengths: up to −29% observed on a
    // trace one cooldown past the measured window).
    if total <= sampling.detailed_insts() {
        let stats = Simulator::new(cfg).try_run(trace).map_err(SampleError::Sim)?;
        return Ok(SampledStats {
            total_insts: total,
            windows: 1,
            detailed_insts: stats.committed,
            measured_insts: stats.committed,
            measured_cycles: stats.cycles,
            est_cycles: stats.cycles,
            exact: true,
        });
    }

    let mut bpred = Gshare::new(cfg.bpred);
    let mut dcache = Dcache::new(cfg.dcache);
    let detailed_len = sampling.detailed_insts() as usize;
    let period = sampling.period_insts as usize;
    let mut windows = 0u32;
    let mut detailed_insts = 0u64;
    let mut measured_insts = 0u64;
    let mut measured_cycles = 0u64;
    let mut start = 0usize;
    while start < insts.len() {
        let det_end = (start + detailed_len).min(insts.len());
        let mut sim = Simulator::new(cfg);
        sim.warm_start(bpred, dcache);
        sim.set_measure_window(
            sampling.warmup_insts,
            sampling.warmup_insts + sampling.window_insts,
        );
        let stats = sim.run_slice(&insts[start..det_end]).map_err(SampleError::Sim)?;
        // Boundary marks fall back to "end of slice" for a short final
        // window: a slice ending inside the warmup measures nothing; one
        // ending inside the window measures up to the slice end (and
        // accepts the drain bias for that one window).
        let (mark_start, mark_end) = sim.measure_marks();
        let mark_start = mark_start.unwrap_or(stats.cycles);
        let mark_end = mark_end.unwrap_or(stats.cycles);
        measured_cycles += mark_end - mark_start;
        measured_insts +=
            stats.committed.saturating_sub(sampling.warmup_insts).min(sampling.window_insts);
        detailed_insts += stats.committed;
        windows += 1;
        (bpred, dcache) = sim.into_warm_state();
        let period_end = (start + period).min(insts.len());
        fast_forward(&mut bpred, &mut dcache, &insts[det_end..period_end]);
        start = period_end;
    }
    debug_assert!(measured_insts > 0, "the first window always measures");
    let est_cycles =
        ((measured_cycles as f64) * (total as f64) / (measured_insts as f64)).round() as u64;
    Ok(SampledStats {
        total_insts: total,
        windows,
        detailed_insts,
        measured_insts,
        measured_cycles,
        est_cycles,
        exact: false,
    })
}

/// The functional fast-forward: replay only what warms long-lived state —
/// conditional branches train the predictor, memory operations touch the
/// cache. Everything else in the trace is already functionally resolved
/// (the emulator produced it), so nothing else needs to run.
fn fast_forward(bpred: &mut Gshare, dcache: &mut Dcache, insts: &[DynInst]) {
    for d in insts {
        if d.is_conditional_branch() {
            bpred.predict_and_update(d.pc, d.taken);
        }
        if let Some(addr) = d.mem_addr {
            dcache.access(addr, d.inst.opcode.kind() == OperationKind::Store);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;
    use ce_workloads::{trace_benchmark, Benchmark};

    #[test]
    fn oversized_window_reproduces_the_full_run_exactly() {
        let trace = trace_benchmark(Benchmark::Compress, 5_000).expect("trace");
        let cfg = machine::baseline_8way();
        let full = Simulator::new(cfg).run(&trace);
        let sampled = run_sampled(
            cfg,
            &trace,
            SamplingConfig {
                warmup_insts: 0,
                window_insts: u64::MAX,
                cooldown_insts: 0,
                period_insts: u64::MAX,
            },
        )
        .expect("sampled run");
        assert!(sampled.exact);
        assert_eq!(sampled.est_cycles, full.cycles);
        assert_eq!(sampled.measured_insts, full.committed);
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let trace = trace_benchmark(Benchmark::Compress, 30_000).expect("trace");
        let cfg = machine::baseline_8way();
        let a = run_sampled(cfg, &trace, SamplingConfig::default()).expect("run a");
        let b = run_sampled(cfg, &trace, SamplingConfig::default()).expect("run b");
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_ipc_tracks_full_ipc_on_compress() {
        let trace = trace_benchmark(Benchmark::Compress, 100_000).expect("trace");
        let cfg = machine::baseline_8way();
        let full = Simulator::new(cfg).run(&trace);
        let sampled = run_sampled(cfg, &trace, SamplingConfig::default()).expect("sampled");
        assert!(!sampled.exact);
        assert!(sampled.windows > 1);
        let err = sampled.cycle_error_vs(full.cycles).abs();
        assert!(err < 0.02, "sampled cycle error {err:.4} exceeds 2%");
    }

    /// Regression test (short-trace seam): any trace no longer than one
    /// detailed region (`warmup + window + cooldown`) must degenerate to
    /// a plain full run — exact flag set, estimated cycles *equal* to the
    /// full run's, zero scaling error — rather than extrapolating
    /// whole-trace cycles from a truncated measured window. The old
    /// boundary stopped at `warmup + window`, so a trace ending inside
    /// the cooldown was simulated entirely in detail (zero sampling
    /// savings) yet still "estimated", −29% low on compress. The
    /// explorer's capped smoke grids hit exactly this seam on every
    /// kernel.
    #[test]
    fn short_traces_degenerate_to_exact_full_runs() {
        let cfg = machine::baseline_8way();
        let sampling = SamplingConfig::default();
        let prefix = sampling.warmup_insts + sampling.window_insts; // 768
        let detailed = prefix + sampling.cooldown_insts; // 896
        // Shorter than the warmup alone, inside the window, at the old
        // (buggy) boundary, inside the cooldown, and exactly at the
        // detailed-region boundary.
        for cap in [50, sampling.warmup_insts - 1, 300, prefix, prefix + 64, detailed] {
            let trace = trace_benchmark(Benchmark::Compress, cap).expect("trace");
            assert!(trace.len() as u64 <= detailed, "cap {cap} grew past the region");
            let full = Simulator::new(cfg).run(&trace);
            let sampled = run_sampled(cfg, &trace, sampling).expect("sampled run");
            assert!(sampled.exact, "cap {cap}: short trace must be exact");
            assert_eq!(sampled.windows, 1, "cap {cap}");
            assert_eq!(sampled.est_cycles, full.cycles, "cap {cap}: scaling error");
            assert_eq!(sampled.measured_insts, full.committed, "cap {cap}");
            assert_eq!(sampled.cycle_error_vs(full.cycles), 0.0, "cap {cap}");
        }
        // Past the detailed region there is genuinely something to
        // fast-forward, so the run becomes a (single-window) estimate.
        let trace = trace_benchmark(Benchmark::Compress, detailed + 256).expect("trace");
        assert!(trace.len() as u64 > detailed);
        let sampled = run_sampled(cfg, &trace, sampling).expect("sampled run");
        assert!(!sampled.exact);
        assert_eq!(sampled.windows, 1);
        assert!(sampled.est_cycles > 0);
    }

    /// The checked entry classifies bad inputs instead of panicking, and
    /// agrees with `run_sampled` on good ones.
    #[test]
    fn try_run_sampled_classifies_bad_inputs() {
        let trace = trace_benchmark(Benchmark::Compress, 2_000).expect("trace");
        let good = machine::baseline_8way();

        let ok = try_run_sampled(good, &trace, SamplingConfig::default()).expect("runs");
        assert_eq!(ok, run_sampled(good, &trace, SamplingConfig::default()).unwrap());

        let bad_sampling = SamplingConfig { window_insts: 0, ..SamplingConfig::default() };
        match try_run_sampled(good, &trace, bad_sampling) {
            Err(SampleError::Sampling(msg)) => assert!(msg.contains("window"), "{msg}"),
            other => panic!("want Sampling error, got {other:?}"),
        }
        let err = try_run_sampled(good, &trace, bad_sampling).unwrap_err();
        assert!(err.to_string().contains("invalid sampling configuration"), "{err}");

        let mut bad_cfg = good;
        bad_cfg.bpred.history_bits = 40;
        match try_run_sampled(bad_cfg, &trace, SamplingConfig::default()) {
            Err(SampleError::Config(e)) => assert!(e.to_string().contains("history"), "{e}"),
            other => panic!("want Config error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid sampling configuration")]
    fn zero_window_is_rejected() {
        let trace = trace_benchmark(Benchmark::Compress, 1_000).expect("trace");
        let _ = run_sampled(
            machine::baseline_8way(),
            &trace,
            SamplingConfig { warmup_insts: 1, window_insts: 0, cooldown_insts: 0, period_insts: 8 },
        );
    }
}
