//! The per-cycle invariant checker (enabled via [`SimConfig::check`]).
//!
//! The optimized pipeline keeps several redundant views of the machine
//! state — the HotEntry ring mirrors ROB operands, the StoreTracker
//! mirrors in-flight stores, the scheduler's placement ring mirrors
//! window/FIFO residency, and the event heap mirrors `finish_at` fields.
//! A timing bug in any of them silently skews every figure the repo
//! reproduces, so with `check` on the pipeline re-derives each invariant
//! from first principles every cycle and records any disagreement here.
//! Violations abort the run at the end of the offending cycle with
//! cycle/sequence context instead of letting garbage statistics escape.
//!
//! What is asserted (see the hooks in `pipeline.rs`):
//!
//! * **caps** — per-cycle issue count ≤ issue width, per-cluster issues ≤
//!   FUs per cluster, memory issues ≤ D-cache ports, recounted from the
//!   ROB rather than trusted from the issue loop's own accumulators;
//! * **operands ready at issue** — every required source register of an
//!   issuing instruction is available in its cluster, re-derived from the
//!   *ROB* operand fields (catching HotEntry-ring desync);
//! * **selection completeness / oldest-ready-first** — when issue width
//!   was left on the table, no remaining candidate may still satisfy
//!   every issue condition (resources only get scarcer over a pass, so a
//!   feasible leftover was feasible when scanned and should have issued);
//! * **FIFO head-only issue** — in the dependence-based organizations an
//!   issuing instruction is the head of its FIFO at selection time;
//! * **store-to-load forwarding consistency** — the StoreTracker's
//!   forwarding answer matches a scan of the ROB's in-flight stores;
//! * **occupancy bounds** — scheduler occupancy ≤ capacity, ROB ≤ the
//!   in-flight limit;
//! * **monotone commit order** — commits retire in strictly increasing
//!   sequence order, each done, issued, and finished in the past;
//! * **final reconciliation** — `issued == committed + wrong_path_issued`,
//!   the issue histogram's mass equals the issue count, and (when the
//!   stall-attribution accountant ran) the per-cause breakdown satisfies
//!   `sum(causes) + issued == issue_width × cycles` exactly.
//!
//! [`SimConfig::check`]: crate::config::SimConfig::check

use std::fmt;

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle on which the violation was detected.
    pub cycle: u64,
    /// Sequence number of the instruction involved, if one is.
    pub seq: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seq {
            Some(seq) => write!(f, "cycle {} seq {}: {}", self.cycle, seq, self.message),
            None => write!(f, "cycle {}: {}", self.cycle, self.message),
        }
    }
}

/// Collects violations during a checked run and aborts when any exist.
#[derive(Debug, Default)]
pub struct Checker {
    violations: Vec<Violation>,
    last_commit: Option<u64>,
}

impl Checker {
    /// A fresh checker with no recorded violations.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Records a violation (detection continues; the abort happens at the
    /// end of the cycle so one report covers everything that went wrong).
    pub fn violation(&mut self, cycle: u64, seq: Option<u64>, message: impl Into<String>) {
        self.violations.push(Violation { cycle, seq, message: message.into() });
    }

    /// Checks that commits retire in strictly increasing sequence order.
    pub fn on_commit(&mut self, cycle: u64, seq: u64) {
        if let Some(last) = self.last_commit {
            if seq <= last {
                self.violation(
                    cycle,
                    Some(seq),
                    format!("commit order not monotone: {seq} after {last}"),
                );
            }
        }
        self.last_commit = Some(seq);
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The formatted multi-line violation report (up to ten shown), or
    /// `None` when the checker is clean — the text [`assert_clean`]
    /// panics with, also reachable without unwinding through
    /// [`Simulator::try_run`].
    ///
    /// [`assert_clean`]: Self::assert_clean
    /// [`Simulator::try_run`]: crate::pipeline::Simulator::try_run
    pub fn report(&self, cycle: u64) -> Option<String> {
        report_violations(&self.violations, cycle)
    }

    /// Aborts the run if any violation was recorded this cycle.
    ///
    /// # Panics
    ///
    /// Panics with a formatted report (up to ten violations) when the
    /// checker holds any violation.
    pub fn assert_clean(&self, cycle: u64) {
        if let Some(report) = self.report(cycle) {
            panic!("{report}");
        }
    }

    /// End-of-run reconciliation of the aggregate counters.
    pub fn on_finish(&mut self, stats: &crate::stats::SimStats, cfg: &crate::config::SimConfig) {
        if cfg.attribution {
            let b = &stats.stall_breakdown;
            if !b.reconciles(cfg.issue_width, stats.cycles, stats.issued) {
                self.violation(
                    stats.cycles,
                    None,
                    format!(
                        "stall attribution does not reconcile: {} charged + {} issued != \
                         {} width × {} cycles",
                        b.total(),
                        stats.issued,
                        cfg.issue_width,
                        stats.cycles
                    ),
                );
            }
        }
        if stats.issued != stats.committed + stats.wrong_path_issued {
            self.violation(
                stats.cycles,
                None,
                format!(
                    "issued ({}) != committed ({}) + wrong_path_issued ({})",
                    stats.issued, stats.committed, stats.wrong_path_issued
                ),
            );
        }
        let hist_cycles: u64 = stats.issue_histogram.iter().sum();
        if hist_cycles != stats.cycles {
            self.violation(
                stats.cycles,
                None,
                format!(
                    "issue histogram covers {hist_cycles} cycles, ran {}",
                    stats.cycles
                ),
            );
        }
        let hist_mass: u64 = stats
            .issue_histogram
            .iter()
            .enumerate()
            .map(|(n, &count)| n as u64 * count)
            .sum();
        // Cycles issuing more than 16 are clamped into the last bucket, so
        // the mass is a lower bound then; with issue widths ≤ 16 (all the
        // paper's machines) it is exact.
        if hist_mass > stats.issued {
            self.violation(
                stats.cycles,
                None,
                format!("issue histogram mass {hist_mass} exceeds issued {}", stats.issued),
            );
        }
    }
}

/// Formats a violation list the way the checker reports it (shared by
/// [`Checker::report`] and [`SimError`]'s display).
///
/// [`SimError`]: crate::pipeline::SimError
pub(crate) fn report_violations(violations: &[Violation], cycle: u64) -> Option<String> {
    if violations.is_empty() {
        return None;
    }
    let shown =
        violations.iter().take(10).map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n");
    let extra = violations.len().saturating_sub(10);
    let suffix = if extra > 0 { format!("\n  … and {extra} more") } else { String::new() };
    Some(format!(
        "invariant checker: {} violation(s) by cycle {cycle}:\n{shown}{suffix}",
        violations.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_checker_is_silent() {
        let mut c = Checker::new();
        c.on_commit(1, 0);
        c.on_commit(1, 1);
        c.on_commit(2, 5);
        assert!(c.violations().is_empty());
        c.assert_clean(2);
    }

    #[test]
    fn non_monotone_commit_is_recorded() {
        let mut c = Checker::new();
        c.on_commit(1, 5);
        c.on_commit(2, 3);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].to_string().contains("not monotone"));
    }

    #[test]
    #[should_panic(expected = "invariant checker")]
    fn assert_clean_panics_with_context() {
        let mut c = Checker::new();
        c.violation(7, Some(42), "synthetic violation");
        c.assert_clean(7);
    }

    #[test]
    fn finish_reconciles_issue_accounting() {
        let mut stats = crate::stats::SimStats { committed: 10, issued: 12, ..Default::default() };
        stats.wrong_path_issued = 1; // 10 + 1 != 12
        let mut c = Checker::new();
        c.on_finish(&stats, &crate::machine::baseline_8way());
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].message.contains("issued"));
    }

    #[test]
    fn finish_reconciles_stall_attribution() {
        use crate::attribution::StallCause;
        let mut cfg = crate::machine::baseline_8way();
        cfg.attribution = true;
        // 8-wide × 10 cycles = 80 slots; 30 issued leaves 50 to charge.
        let mut stats = crate::stats::SimStats {
            cycles: 10,
            committed: 30,
            issued: 30,
            ..Default::default()
        };
        stats.issue_histogram[3] = 10;
        stats.stall_breakdown.charge(StallCause::OperandWait, 50);
        let mut c = Checker::new();
        c.on_finish(&stats, &cfg);
        assert!(c.violations().is_empty(), "{:?}", c.violations());

        // One slot short: the identity check must fire.
        let mut short = stats.clone();
        short.stall_breakdown = Default::default();
        short.stall_breakdown.charge(StallCause::OperandWait, 49);
        let mut c = Checker::new();
        c.on_finish(&short, &cfg);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].message.contains("stall attribution"));

        // With attribution off an empty breakdown is fine.
        cfg.attribution = false;
        let mut off = stats.clone();
        off.stall_breakdown = Default::default();
        let mut c = Checker::new();
        c.on_finish(&off, &cfg);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }
}
