//! The issue structure: central window, steered per-cluster windows, or
//! the dependence-based FIFOs.
//!
//! One type models all five of the paper's organizations; the
//! [`SchedulerKind`] and [`SteeringPolicy`] pick the behaviour:
//!
//! * `CentralWindow` — one flexible pool of entries; with multiple
//!   clusters, the cluster is chosen at issue time (Section 5.6.1).
//! * `SteeredWindows` — dispatch-steered conceptual FIFOs; issue may pick
//!   any waiting instruction (Section 5.6.2).
//! * `Fifos` — the dependence-based design; only FIFO heads are issue
//!   candidates (Section 5).

use crate::config::{SchedulerKind, SteeringPolicy};
use ce_core::fifos::{FifoPool, PoolConfig};
use ce_core::steering::{DependenceSteerer, RandomSteerer, SteerOutcome};
use ce_core::steering_variants::{LoadBalancedSteerer, RoundRobinSteerer};
use ce_core::{FifoId, InstId};
use ce_isa::Instruction;
use std::collections::HashMap;

/// An issue candidate: a waiting instruction and the cluster it is bound
/// to (`None` = unbound; the pipeline picks a cluster at issue time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The instruction's dynamic sequence number.
    pub id: InstId,
    /// Dispatch-assigned cluster, if the organization binds one.
    pub cluster: Option<usize>,
}

/// The issue structure.
#[derive(Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    clusters: usize,
    /// Pool backing the FIFO-shaped organizations (`None` for the central
    /// window).
    pool: Option<FifoPool>,
    dependence: DependenceSteerer,
    random: Option<RandomSteerer>,
    round_robin: Option<RoundRobinSteerer>,
    load_balanced: Option<LoadBalancedSteerer>,
    /// Which FIFO each pooled instruction sits in (for O(1) removal).
    placement: HashMap<InstId, FifoId>,
    /// Central-window slots: new instructions take the first free slot, so
    /// slot order models physical window position (no compaction).
    window: Vec<Option<InstId>>,
    central_capacity: usize,
}

impl Scheduler {
    /// Builds the scheduler for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (zero sizes, clusters not dividing
    /// the window).
    pub fn new(kind: SchedulerKind, clusters: usize, steering: SteeringPolicy) -> Scheduler {
        let pool = match kind {
            SchedulerKind::CentralWindow { .. } => None,
            SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
                Some(FifoPool::new(PoolConfig {
                    fifos: fifos_per_cluster * clusters,
                    depth: fifo_depth,
                    clusters,
                }))
            }
            SchedulerKind::Fifos { fifos_per_cluster, depth } => Some(FifoPool::new(PoolConfig {
                fifos: fifos_per_cluster * clusters,
                depth,
                clusters,
            })),
        };
        let central_capacity = match kind {
            SchedulerKind::CentralWindow { size } => size,
            _ => 0,
        };
        let random = match steering {
            SteeringPolicy::Random { seed } => Some(RandomSteerer::new(seed)),
            _ => None,
        };
        let round_robin = matches!(steering, SteeringPolicy::RoundRobin)
            .then(RoundRobinSteerer::new);
        let load_balanced = matches!(steering, SteeringPolicy::LoadBalanced)
            .then(LoadBalancedSteerer::new);
        Scheduler {
            kind,
            clusters,
            pool,
            dependence: DependenceSteerer::new(),
            random,
            round_robin,
            load_balanced,
            placement: HashMap::new(),
            window: Vec::new(),
            central_capacity,
        }
    }

    /// Whether only FIFO heads may issue.
    pub fn head_only(&self) -> bool {
        matches!(self.kind, SchedulerKind::Fifos { .. })
    }

    /// Inserts an instruction at dispatch. Returns its bound cluster
    /// (`None` for the central window), or `Err(())` when the structure
    /// has no suitable slot and dispatch must stall.
    #[allow(clippy::result_unit_err)]
    pub fn try_insert(&mut self, id: InstId, inst: &Instruction) -> Result<Option<usize>, ()> {
        match &mut self.pool {
            None => {
                if self.window.len() < self.central_capacity {
                    self.window.push(Some(id));
                    return Ok(None);
                }
                match self.window.iter_mut().find(|slot| slot.is_none()) {
                    Some(slot) => {
                        *slot = Some(id);
                        Ok(None)
                    }
                    None => Err(()),
                }
            }
            Some(pool) => {
                let outcome = if let Some(r) = &mut self.random {
                    r.steer(id, pool)
                } else if let Some(r) = &mut self.round_robin {
                    r.steer(id, pool)
                } else if let Some(l) = &mut self.load_balanced {
                    l.steer(id, inst, pool)
                } else {
                    self.dependence.steer(id, inst, pool)
                };
                match outcome {
                    SteerOutcome::Fifo(fifo) => {
                        self.placement.insert(id, fifo);
                        Ok(Some(pool.cluster_of(fifo)))
                    }
                    SteerOutcome::Stall => Err(()),
                }
            }
        }
    }

    /// The instructions eligible for selection this cycle, in an arbitrary
    /// order (the pipeline sorts by age).
    pub fn candidates(&self) -> Vec<Candidate> {
        match &self.pool {
            None => self
                .window
                .iter()
                .flatten()
                .map(|&id| Candidate { id, cluster: None })
                .collect(),
            Some(pool) => {
                if self.head_only() {
                    pool.heads()
                        .map(|(f, id)| Candidate { id, cluster: Some(pool.cluster_of(f)) })
                        .collect()
                } else {
                    pool.entries()
                        .map(|(f, _, id)| Candidate { id, cluster: Some(pool.cluster_of(f)) })
                        .collect()
                }
            }
        }
    }

    /// Removes an instruction at issue.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not present (a pipeline bug).
    pub fn remove(&mut self, id: InstId) {
        let head_only = self.head_only();
        match &mut self.pool {
            None => {
                let slot = self
                    .window
                    .iter_mut()
                    .find(|w| **w == Some(id))
                    .expect("issued instruction must be in the window");
                *slot = None;
            }
            Some(pool) => {
                let fifo = self.placement.remove(&id).expect("issued instruction placed");
                if head_only {
                    let popped = pool.pop_head(fifo);
                    assert_eq!(popped, Some(id), "head-only issue must pop the head");
                } else {
                    assert!(pool.remove(fifo, id), "instruction must be in its FIFO");
                }
                // NOTE: the SRC_FIFO table is deliberately NOT cleared at
                // issue. The paper invalidates entries only at *completion*;
                // keeping them lets later dependents inherit the producer's
                // cluster (FIFO→cluster is static), and the steerer already
                // validates staleness against the pool contents.
                let _ = id;
            }
        }
    }

    /// Instructions currently waiting.
    pub fn occupancy(&self) -> usize {
        match &self.pool {
            None => self.window.iter().flatten().count(),
            Some(pool) => pool.occupancy(),
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_isa::{Opcode, Reg};

    fn alu(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::rrr(Opcode::Addu, Reg::new(dst), Reg::new(a), Reg::new(b))
    }

    #[test]
    fn central_window_capacity() {
        let mut s = Scheduler::new(
            SchedulerKind::CentralWindow { size: 2 },
            1,
            SteeringPolicy::Dependence,
        );
        assert!(s.try_insert(InstId(0), &alu(10, 1, 2)).is_ok());
        assert!(s.try_insert(InstId(1), &alu(11, 1, 2)).is_ok());
        assert!(s.try_insert(InstId(2), &alu(12, 1, 2)).is_err());
        assert_eq!(s.occupancy(), 2);
        s.remove(InstId(0));
        assert!(s.try_insert(InstId(2), &alu(12, 1, 2)).is_ok());
    }

    #[test]
    fn fifo_candidates_are_heads_only() {
        let mut s = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 4 },
            1,
            SteeringPolicy::Dependence,
        );
        // A chain of three dependent instructions lands in one FIFO.
        s.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        s.try_insert(InstId(1), &alu(11, 10, 2)).unwrap();
        s.try_insert(InstId(2), &alu(12, 11, 2)).unwrap();
        let cands = s.candidates();
        assert_eq!(cands.len(), 1, "only the head is visible");
        assert_eq!(cands[0].id, InstId(0));
        assert!(s.head_only());
        s.remove(InstId(0));
        assert_eq!(s.candidates()[0].id, InstId(1));
    }

    #[test]
    fn steered_windows_expose_every_entry() {
        let mut s = Scheduler::new(
            SchedulerKind::SteeredWindows { fifos_per_cluster: 2, fifo_depth: 4 },
            1,
            SteeringPolicy::Dependence,
        );
        s.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        s.try_insert(InstId(1), &alu(11, 10, 2)).unwrap();
        assert_eq!(s.candidates().len(), 2, "flexible window sees all entries");
        assert!(!s.head_only());
        // Out-of-order removal works (issue from the middle of a chain).
        s.remove(InstId(1));
        assert_eq!(s.candidates().len(), 1);
    }

    #[test]
    fn clustered_fifos_report_cluster() {
        let mut s = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 2 },
            2,
            SteeringPolicy::Dependence,
        );
        // Independent instructions spread across FIFOs; clusters 0 then 1.
        for i in 0..4u64 {
            s.try_insert(InstId(i), &alu(10 + i as u8, 1, 2)).unwrap();
        }
        let mut clusters: Vec<usize> =
            s.candidates().iter().filter_map(|c| c.cluster).collect();
        clusters.sort_unstable();
        assert_eq!(clusters, vec![0, 0, 1, 1]);
    }

    #[test]
    fn random_steering_fills_everything() {
        let mut s = Scheduler::new(
            SchedulerKind::SteeredWindows { fifos_per_cluster: 2, fifo_depth: 2 },
            2,
            SteeringPolicy::Random { seed: 3 },
        );
        for i in 0..8u64 {
            assert!(s.try_insert(InstId(i), &alu(10, 1, 2)).is_ok(), "slot {i}");
        }
        assert!(s.try_insert(InstId(8), &alu(10, 1, 2)).is_err());
        assert_eq!(s.occupancy(), 8);
    }

    #[test]
    #[should_panic(expected = "must be in the window")]
    fn removing_absent_instruction_panics() {
        let mut s = Scheduler::new(
            SchedulerKind::CentralWindow { size: 4 },
            1,
            SteeringPolicy::Dependence,
        );
        s.remove(InstId(42));
    }
}
