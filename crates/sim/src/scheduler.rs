//! The issue structure: central window, steered per-cluster windows, or
//! the dependence-based FIFOs.
//!
//! One type models all five of the paper's organizations; the
//! [`SchedulerKind`] and [`SteeringPolicy`] pick the behaviour:
//!
//! * `CentralWindow` — one flexible pool of entries; with multiple
//!   clusters, the cluster is chosen at issue time (Section 5.6.1).
//! * `SteeredWindows` — dispatch-steered conceptual FIFOs; issue may pick
//!   any waiting instruction (Section 5.6.2).
//! * `Fifos` — the dependence-based design; only FIFO heads are issue
//!   candidates (Section 5).

use crate::config::{SchedulerKind, SteeringPolicy};
use ce_core::fifos::{FifoPool, PoolConfig};
use ce_core::steering::{DependenceSteerer, RandomSteerer, SteerChoice, SteerExplain, SteerOutcome};
use ce_core::steering_variants::{LoadBalancedSteerer, RoundRobinSteerer};
use ce_core::{FifoId, InstId};
use ce_isa::Instruction;

/// An issue candidate: a waiting instruction and the cluster it is bound
/// to (`None` = unbound; the pipeline picks a cluster at issue time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The instruction's dynamic sequence number.
    pub id: InstId,
    /// Dispatch-assigned cluster, if the organization binds one.
    pub cluster: Option<usize>,
}

/// A successful dispatch insertion, explained — for pipeline probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Bound cluster (`None` for the central window).
    pub cluster: Option<usize>,
    /// Central-window slot index, or FIFO index for pooled organizations.
    pub slot: u32,
    /// How steering chose the FIFO (`None` for the central window).
    pub steer: Option<SteerChoice>,
}

/// Why a dispatch insertion failed — for pipeline probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertReject {
    /// The central window has no free slot.
    WindowFull,
    /// The steering heuristic found no suitable or free FIFO; `chain_full`
    /// means a dependence-chain target existed but had no room.
    Steering {
        /// A chain target existed but its FIFO was full.
        chain_full: bool,
    },
}

/// The issue structure.
#[derive(Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    clusters: usize,
    /// Pool backing the FIFO-shaped organizations (`None` for the central
    /// window).
    pool: Option<FifoPool>,
    dependence: DependenceSteerer,
    random: Option<RandomSteerer>,
    round_robin: Option<RoundRobinSteerer>,
    load_balanced: Option<LoadBalancedSteerer>,
    /// Dense placement ring keyed by `seq & place_mask`: the window slot
    /// (central) or FIFO index (pooled) holding each resident instruction.
    /// Sound because resident sequence numbers are ROB-contiguous, so any
    /// two differ by less than the ring size (a power of two ≥
    /// `max_inflight`) — no hash lookups on the issue path.
    place: Vec<Option<u32>>,
    place_mask: u64,
    /// Central-window slots: new instructions take the lowest free slot, so
    /// slot order models physical window position (no compaction).
    window: Vec<Option<InstId>>,
    /// Bit `s` set iff `window[s]` is occupied; bits at or beyond
    /// `central_capacity` are permanently set so the free-slot probe never
    /// strays past the capacity.
    occ_words: Vec<u64>,
    central_capacity: usize,
    /// Central-window population (pooled occupancy lives in the pool).
    central_len: usize,
    /// Intrusive doubly-linked list over occupied central slots in *age*
    /// order (oldest first). Dispatch order is monotone in sequence
    /// number, so appending at the tail keeps the list id-sorted — oldest-
    /// first selection walks it instead of sorting every cycle.
    age_next: Vec<u32>,
    age_prev: Vec<u32>,
    age_head: u32,
    age_tail: u32,
    /// Bit `s` set iff `window[s]` holds an instruction whose source
    /// operands have all been produced (the tag-match result of the
    /// paper's wakeup broadcast, cached as a bit per slot). Maintained by
    /// the pipeline via [`set_awake`](Self::set_awake); cleared when a slot
    /// is recycled. Pad bits stay clear, so `occ & awake` is exactly the
    /// set of occupied, woken slots. Central window only.
    awake_words: Vec<u64>,
}

/// Sentinel for the age-list links.
const AGE_NONE: u32 = u32::MAX;

impl Scheduler {
    /// Builds the scheduler for a machine configuration. `max_inflight` is
    /// the machine's in-flight limit; it bounds how far apart the sequence
    /// numbers of two resident instructions can be, sizing the placement
    /// ring.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (zero sizes, clusters not dividing
    /// the window).
    pub fn new(
        kind: SchedulerKind,
        clusters: usize,
        steering: SteeringPolicy,
        max_inflight: usize,
    ) -> Scheduler {
        let pool = match kind {
            SchedulerKind::CentralWindow { .. } => None,
            SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
                Some(FifoPool::new(PoolConfig {
                    fifos: fifos_per_cluster * clusters,
                    depth: fifo_depth,
                    clusters,
                }))
            }
            SchedulerKind::Fifos { fifos_per_cluster, depth } => Some(FifoPool::new(PoolConfig {
                fifos: fifos_per_cluster * clusters,
                depth,
                clusters,
            })),
        };
        let central_capacity = match kind {
            SchedulerKind::CentralWindow { size } => size,
            _ => 0,
        };
        let random = match steering {
            SteeringPolicy::Random { seed } => Some(RandomSteerer::new(seed)),
            _ => None,
        };
        let round_robin = matches!(steering, SteeringPolicy::RoundRobin)
            .then(RoundRobinSteerer::new);
        let load_balanced = matches!(steering, SteeringPolicy::LoadBalanced)
            .then(LoadBalancedSteerer::new);
        let ring = max_inflight.max(1).next_power_of_two();
        let words = central_capacity.div_ceil(64).max(1);
        let mut occ_words = vec![0u64; words];
        // Pad bits past the capacity read as "occupied" so the lowest-free
        // probe never hands out a slot beyond the window.
        for (w, word) in occ_words.iter_mut().enumerate() {
            for bit in 0..64 {
                if w * 64 + bit >= central_capacity {
                    *word |= 1u64 << bit;
                }
            }
        }
        Scheduler {
            kind,
            clusters,
            pool,
            dependence: DependenceSteerer::new(),
            random,
            round_robin,
            load_balanced,
            place: vec![None; ring],
            place_mask: ring as u64 - 1,
            window: vec![None; central_capacity],
            occ_words,
            central_capacity,
            central_len: 0,
            age_next: vec![AGE_NONE; central_capacity],
            age_prev: vec![AGE_NONE; central_capacity],
            age_head: AGE_NONE,
            age_tail: AGE_NONE,
            awake_words: vec![0u64; words],
        }
    }

    /// Whether this is the central-window organization (no FIFO pool).
    pub fn is_central(&self) -> bool {
        self.pool.is_none()
    }

    /// Whether only FIFO heads may issue.
    pub fn head_only(&self) -> bool {
        matches!(self.kind, SchedulerKind::Fifos { .. })
    }

    /// Inserts an instruction at dispatch. Returns its bound cluster
    /// (`None` for the central window), or `Err(())` when the structure
    /// has no suitable slot and dispatch must stall.
    #[allow(clippy::result_unit_err)]
    pub fn try_insert(&mut self, id: InstId, inst: &Instruction) -> Result<Option<usize>, ()> {
        self.try_insert_explained(id, inst).map(|p| p.cluster).map_err(|_| ())
    }

    /// [`try_insert`](Self::try_insert), explained: on success reports the
    /// slot/FIFO taken and how steering chose it; on failure reports why.
    /// Placement behaviour is identical to `try_insert`.
    pub fn try_insert_explained(
        &mut self,
        id: InstId,
        inst: &Instruction,
    ) -> Result<Placement, InsertReject> {
        match &mut self.pool {
            None => {
                // Lowest free slot, found by bitmask probe (same placement a
                // first-`None` linear scan produced).
                let word = match self.occ_words.iter().position(|&w| w != u64::MAX) {
                    Some(w) => w,
                    None => return Err(InsertReject::WindowFull),
                };
                let slot = word * 64 + (!self.occ_words[word]).trailing_zeros() as usize;
                debug_assert!(slot < self.central_capacity);
                debug_assert!(self.window[slot].is_none());
                self.occ_words[word] |= 1u64 << (slot % 64);
                self.awake_words[word] &= !(1u64 << (slot % 64));
                self.window[slot] = Some(id);
                self.place[(id.0 & self.place_mask) as usize] = Some(slot as u32);
                self.central_len += 1;
                // Append at the age-list tail: a dispatching instruction is
                // always the youngest resident.
                let s = slot as u32;
                self.age_prev[slot] = self.age_tail;
                self.age_next[slot] = AGE_NONE;
                match self.age_tail {
                    AGE_NONE => self.age_head = s,
                    t => self.age_next[t as usize] = s,
                }
                self.age_tail = s;
                Ok(Placement { cluster: None, slot: s, steer: None })
            }
            Some(pool) => {
                let (outcome, explain) = if let Some(r) = &mut self.random {
                    (r.steer(id, pool), None)
                } else if let Some(r) = &mut self.round_robin {
                    (r.steer(id, pool), None)
                } else if let Some(l) = &mut self.load_balanced {
                    (l.steer(id, inst, pool), None)
                } else {
                    let (o, e) = self.dependence.steer_explained(id, inst, pool);
                    (o, Some(e))
                };
                match outcome {
                    SteerOutcome::Fifo(fifo) => {
                        self.place[(id.0 & self.place_mask) as usize] = Some(fifo.0 as u32);
                        let choice = match explain {
                            Some(SteerExplain::Placed(c)) => c,
                            // The non-dependence steerers don't explain
                            // themselves; label by policy.
                            _ if self.random.is_some() => SteerChoice::Random,
                            _ if self.round_robin.is_some() => SteerChoice::RoundRobin,
                            _ => SteerChoice::Balanced,
                        };
                        Ok(Placement {
                            cluster: Some(pool.cluster_of(fifo)),
                            slot: fifo.0 as u32,
                            steer: Some(choice),
                        })
                    }
                    SteerOutcome::Stall => {
                        let chain_full = matches!(
                            explain,
                            Some(SteerExplain::Stalled { chain_full: true })
                        );
                        Err(InsertReject::Steering { chain_full })
                    }
                }
            }
        }
    }

    /// Appends the instructions eligible for selection this cycle to `out`
    /// (cleared first) — central window in slot order, FIFO organizations
    /// in ascending FIFO order. The pipeline reuses one buffer across
    /// cycles; the order matches what the old per-cycle allocation
    /// produced.
    pub fn candidates_into(&self, out: &mut Vec<Candidate>) {
        out.clear();
        match &self.pool {
            None => {
                for (w, &word) in self.occ_words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let slot = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if slot >= self.central_capacity {
                            break; // pad bits, not real slots
                        }
                        let id = self.window[slot].expect("occupied bit ⇒ filled slot");
                        out.push(Candidate { id, cluster: None });
                    }
                }
            }
            Some(pool) => {
                if self.head_only() {
                    out.extend(
                        pool.heads()
                            .map(|(f, id)| Candidate { id, cluster: Some(pool.cluster_of(f)) }),
                    );
                } else {
                    out.extend(pool.entries().map(|(f, _, id)| Candidate {
                        id,
                        cluster: Some(pool.cluster_of(f)),
                    }));
                }
            }
        }
    }

    /// Appends the central window's candidates to `out` (cleared first) in
    /// **age order** — identical to sorting [`candidates_into`]'s output by
    /// id, without the per-cycle sort.
    ///
    /// [`candidates_into`]: Self::candidates_into
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called on a FIFO organization; callers
    /// gate on [`is_central`](Self::is_central).
    pub fn candidates_into_aged(&self, out: &mut Vec<Candidate>) {
        debug_assert!(self.is_central());
        out.clear();
        let mut s = self.age_head;
        while s != AGE_NONE {
            let id = self.window[s as usize].expect("linked slot is filled");
            out.push(Candidate { id, cluster: None });
            s = self.age_next[s as usize];
        }
    }

    /// Appends this cycle's candidates to `out` (cleared first) in
    /// ascending instruction order — the oldest-first selection order —
    /// without a per-cycle sort wherever the organization permits:
    /// central windows walk the intrusive age list, pooled windows k-way
    /// merge their (individually ascending) per-FIFO queues, and the
    /// head-only FIFO organizations sort their handful of heads.
    pub fn candidates_into_sorted(&self, out: &mut Vec<Candidate>) {
        match &self.pool {
            None => self.candidates_into_aged(out),
            Some(pool) => {
                out.clear();
                if self.head_only() {
                    out.extend(
                        pool.heads()
                            .map(|(f, id)| Candidate { id, cluster: Some(pool.cluster_of(f)) }),
                    );
                    out.sort_unstable_by_key(|c| c.id);
                } else {
                    out.extend(pool.entries_aged().map(|(f, id)| Candidate {
                        id,
                        cluster: Some(pool.cluster_of(f)),
                    }));
                }
            }
        }
    }

    /// Marks a resident central-window instruction as awake: every source
    /// operand has been produced, so it is a real wakeup/select candidate.
    /// The pipeline calls this from its tag-broadcast bookkeeping (at
    /// dispatch when no operand is outstanding, and when the last
    /// outstanding producer issues). No-op for pooled organizations and
    /// for ids that are not (or are no longer) resident — a broadcast can
    /// race an early-selected or squashed consumer under fault injection.
    pub fn set_awake(&mut self, id: InstId) {
        if self.pool.is_some() {
            return;
        }
        if let Some(slot) = self.place[(id.0 & self.place_mask) as usize] {
            self.awake_words[slot as usize / 64] |= 1u64 << (slot % 64);
        }
    }

    /// Appends the occupied **and awake** central-window slots to `out`
    /// (cleared first) in slot order — one `occ & awake` word scan with
    /// `trailing_zeros`, touching only set bits. Subset of
    /// [`candidates_into`](Self::candidates_into) restricted to awake
    /// entries; asleep entries could never pass the pipeline's operand
    /// checks, so pruning them here is selection-invisible.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called on a FIFO organization.
    pub fn awake_candidates_into(&self, out: &mut Vec<Candidate>) {
        debug_assert!(self.is_central());
        out.clear();
        for (w, (&occ, &awake)) in self.occ_words.iter().zip(&self.awake_words).enumerate() {
            let mut bits = occ & awake;
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let id = self.window[slot].expect("awake∧occupied bit ⇒ filled slot");
                out.push(Candidate { id, cluster: None });
            }
        }
    }

    /// [`awake_candidates_into`](Self::awake_candidates_into) in **age
    /// order**: the bitset scan plus a sort of the (few) awake entries.
    /// Resident ids are ROB-contiguous and dispatch appends in sequence
    /// order, so ascending id *is* age order — this matches
    /// [`candidates_into_aged`](Self::candidates_into_aged) filtered to
    /// awake entries (the property pinned by the randomized scan-order
    /// test).
    pub fn awake_candidates_into_aged(&self, out: &mut Vec<Candidate>) {
        self.awake_candidates_into(out);
        out.sort_unstable_by_key(|c| c.id);
    }

    /// The instructions eligible for selection this cycle (allocating
    /// convenience over [`candidates_into`](Self::candidates_into)).
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        self.candidates_into(&mut out);
        out
    }

    /// Removes an instruction at issue.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not present (a pipeline bug).
    pub fn remove(&mut self, id: InstId) {
        let head_only = self.head_only();
        let placed = self.place[(id.0 & self.place_mask) as usize].take();
        match &mut self.pool {
            None => {
                let slot =
                    placed.expect("issued instruction must be in the window") as usize;
                assert_eq!(
                    self.window[slot].take(),
                    Some(id),
                    "issued instruction must be in the window"
                );
                self.occ_words[slot / 64] &= !(1u64 << (slot % 64));
                self.awake_words[slot / 64] &= !(1u64 << (slot % 64));
                self.central_len -= 1;
                let (p, n) = (self.age_prev[slot], self.age_next[slot]);
                match p {
                    AGE_NONE => self.age_head = n,
                    p => self.age_next[p as usize] = n,
                }
                match n {
                    AGE_NONE => self.age_tail = p,
                    n => self.age_prev[n as usize] = p,
                }
            }
            Some(pool) => {
                let fifo = FifoId(placed.expect("issued instruction placed") as usize);
                if head_only {
                    let popped = pool.pop_head(fifo);
                    assert_eq!(popped, Some(id), "head-only issue must pop the head");
                } else {
                    assert!(pool.remove(fifo, id), "instruction must be in its FIFO");
                }
                // NOTE: the SRC_FIFO table is deliberately NOT cleared at
                // issue. The paper invalidates entries only at *completion*;
                // keeping them lets later dependents inherit the producer's
                // cluster (FIFO→cluster is static), and the steerer already
                // validates staleness against the pool contents.
            }
        }
    }

    /// Removes a squashed, never-issued instruction.
    ///
    /// Distinct from [`remove`](Self::remove), which models *issue*: the
    /// head-only FIFO organizations must pop their FIFO head there. A
    /// squash strikes from the *young* end — the wrong-path work sits at
    /// FIFO tails, behind entries that survive — so this removes from any
    /// queue position.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not present (a pipeline bug).
    pub fn remove_squashed(&mut self, id: InstId) {
        if self.pool.is_none() {
            // Central window removal is position-independent already.
            self.remove(id);
            return;
        }
        let placed = self.place[(id.0 & self.place_mask) as usize].take();
        let fifo = FifoId(placed.expect("squashed instruction must be placed") as usize);
        let pool = self.pool.as_mut().expect("checked");
        assert!(pool.remove(fifo, id), "squashed instruction must be in its FIFO");
    }

    /// The FIFO pool backing a pooled organization (`None` for the
    /// central window) — read-only access for invariant checkers.
    pub fn pool(&self) -> Option<&FifoPool> {
        self.pool.as_ref()
    }

    /// Where a *resident* instruction sits: the central-window slot index,
    /// or the FIFO index for pooled organizations. Only meaningful for
    /// instructions currently in the scheduler (the placement ring slot is
    /// recycled once an instruction leaves).
    pub fn placement_of(&self, id: InstId) -> Option<u32> {
        self.place[(id.0 & self.place_mask) as usize]
    }

    /// Total scheduler capacity (window slots, or FIFOs × depth).
    pub fn capacity(&self) -> usize {
        match &self.pool {
            None => self.central_capacity,
            Some(pool) => pool.config().fifos * pool.config().depth,
        }
    }

    /// Instructions currently waiting.
    pub fn occupancy(&self) -> usize {
        match &self.pool {
            None => self.central_len,
            Some(pool) => pool.occupancy(),
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_isa::{Opcode, Reg};

    fn alu(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::rrr(Opcode::Addu, Reg::new(dst), Reg::new(a), Reg::new(b))
    }

    #[test]
    fn central_window_capacity() {
        let mut s = Scheduler::new(
            SchedulerKind::CentralWindow { size: 2 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        assert!(s.try_insert(InstId(0), &alu(10, 1, 2)).is_ok());
        assert!(s.try_insert(InstId(1), &alu(11, 1, 2)).is_ok());
        assert!(s.try_insert(InstId(2), &alu(12, 1, 2)).is_err());
        assert_eq!(s.occupancy(), 2);
        s.remove(InstId(0));
        assert!(s.try_insert(InstId(2), &alu(12, 1, 2)).is_ok());
    }

    #[test]
    fn fifo_candidates_are_heads_only() {
        let mut s = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        // A chain of three dependent instructions lands in one FIFO.
        s.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        s.try_insert(InstId(1), &alu(11, 10, 2)).unwrap();
        s.try_insert(InstId(2), &alu(12, 11, 2)).unwrap();
        let cands = s.candidates();
        assert_eq!(cands.len(), 1, "only the head is visible");
        assert_eq!(cands[0].id, InstId(0));
        assert!(s.head_only());
        s.remove(InstId(0));
        assert_eq!(s.candidates()[0].id, InstId(1));
    }

    #[test]
    fn steered_windows_expose_every_entry() {
        let mut s = Scheduler::new(
            SchedulerKind::SteeredWindows { fifos_per_cluster: 2, fifo_depth: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        s.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        s.try_insert(InstId(1), &alu(11, 10, 2)).unwrap();
        assert_eq!(s.candidates().len(), 2, "flexible window sees all entries");
        assert!(!s.head_only());
        // Out-of-order removal works (issue from the middle of a chain).
        s.remove(InstId(1));
        assert_eq!(s.candidates().len(), 1);
    }

    #[test]
    fn clustered_fifos_report_cluster() {
        let mut s = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 2 },
            2,
            SteeringPolicy::Dependence,
            128,
        );
        // Independent instructions spread across FIFOs; clusters 0 then 1.
        for i in 0..4u64 {
            s.try_insert(InstId(i), &alu(10 + i as u8, 1, 2)).unwrap();
        }
        let mut clusters: Vec<usize> =
            s.candidates().iter().filter_map(|c| c.cluster).collect();
        clusters.sort_unstable();
        assert_eq!(clusters, vec![0, 0, 1, 1]);
    }

    #[test]
    fn random_steering_fills_everything() {
        let mut s = Scheduler::new(
            SchedulerKind::SteeredWindows { fifos_per_cluster: 2, fifo_depth: 2 },
            2,
            SteeringPolicy::Random { seed: 3 },
            128,
        );
        for i in 0..8u64 {
            assert!(s.try_insert(InstId(i), &alu(10, 1, 2)).is_ok(), "slot {i}");
        }
        assert!(s.try_insert(InstId(8), &alu(10, 1, 2)).is_err());
        assert_eq!(s.occupancy(), 8);
    }

    /// Regression test: squashing from a head-only FIFO used to go
    /// through [`Scheduler::remove`], which pops the *head* and asserts it
    /// matches — but squashed wrong-path work sits at the *tail*, so any
    /// FIFO holding real work in front of wrong-path work panicked.
    #[test]
    fn squash_removes_from_fifo_tail_not_head() {
        let mut s = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        // A dependence chain: all three share one FIFO, id order 0,1,2.
        s.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        s.try_insert(InstId(1), &alu(11, 10, 2)).unwrap();
        s.try_insert(InstId(2), &alu(12, 11, 2)).unwrap();
        // Squash the two youngest (a wrong-path slice): tail-side removal.
        s.remove_squashed(InstId(2));
        s.remove_squashed(InstId(1));
        assert_eq!(s.occupancy(), 1);
        let cands = s.candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].id, InstId(0), "the surviving head is untouched");
        // The survivor still issues normally.
        s.remove(InstId(0));
        assert_eq!(s.occupancy(), 0);
    }

    #[test]
    fn checker_accessors_expose_placement() {
        let mut s = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        s.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        s.try_insert(InstId(1), &alu(11, 10, 2)).unwrap();
        let fifo = s.placement_of(InstId(1)).expect("resident");
        let pool = s.pool().expect("pooled organization");
        assert_eq!(pool.position_of(ce_core::FifoId(fifo as usize), InstId(1)), Some(1));
        assert_eq!(s.capacity(), 8);
    }

    #[test]
    fn try_insert_explained_reports_placement_and_rejection() {
        // Central window: slots fill lowest-first, reject is WindowFull.
        let mut s = Scheduler::new(
            SchedulerKind::CentralWindow { size: 2 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        let p0 = s.try_insert_explained(InstId(0), &alu(10, 1, 2)).unwrap();
        assert_eq!(p0, Placement { cluster: None, slot: 0, steer: None });
        let p1 = s.try_insert_explained(InstId(1), &alu(11, 1, 2)).unwrap();
        assert_eq!(p1.slot, 1);
        assert_eq!(
            s.try_insert_explained(InstId(2), &alu(12, 1, 2)),
            Err(InsertReject::WindowFull)
        );

        // Dependence FIFOs: the chain explanation and fifo index surface.
        let mut f = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 1, depth: 2 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        let q0 = f.try_insert_explained(InstId(0), &alu(10, 1, 2)).unwrap();
        assert_eq!(q0.cluster, Some(0));
        assert_eq!(q0.steer, Some(SteerChoice::Fresh));
        let q1 = f.try_insert_explained(InstId(1), &alu(11, 10, 2)).unwrap();
        assert_eq!(q1.slot, q0.slot, "chained into the producer's FIFO");
        assert_eq!(q1.steer, Some(SteerChoice::Chained { operand: 0 }));
        // FIFO full behind a chain target: Steering { chain_full: true }.
        assert_eq!(
            f.try_insert_explained(InstId(2), &alu(12, 11, 2)),
            Err(InsertReject::Steering { chain_full: true })
        );

        // Policy-labelled steering for the non-dependence steerers.
        let mut r = Scheduler::new(
            SchedulerKind::SteeredWindows { fifos_per_cluster: 2, fifo_depth: 2 },
            1,
            SteeringPolicy::RoundRobin,
            128,
        );
        let w = r.try_insert_explained(InstId(0), &alu(10, 1, 2)).unwrap();
        assert_eq!(w.steer, Some(SteerChoice::RoundRobin));
    }

    #[test]
    fn try_insert_and_explained_agree() {
        let mk = || {
            Scheduler::new(
                SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 2 },
                2,
                SteeringPolicy::Dependence,
                128,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let stream = [
            alu(10, 1, 2),
            alu(11, 10, 2),
            alu(12, 3, 4),
            alu(13, 12, 11),
            alu(14, 5, 6),
            alu(15, 7, 8),
            alu(16, 14, 15),
            alu(17, 9, 9),
            alu(18, 17, 16),
            alu(19, 2, 3),
        ];
        for (i, inst) in stream.iter().enumerate() {
            let id = InstId(i as u64);
            let plain = a.try_insert(id, inst);
            let explained = b.try_insert_explained(id, inst);
            assert_eq!(plain.is_ok(), explained.is_ok(), "inst {i}");
            if let (Ok(c), Ok(p)) = (plain, explained) {
                assert_eq!(c, p.cluster, "inst {i}");
            }
        }
    }

    /// Property: on randomized windows (random insert/remove/wake
    /// histories, with fragmentation so slot order ≠ age order), the
    /// bitset-scanned awake candidates match the age-list walk filtered to
    /// awake entries, and the slot-order variant matches `candidates_into`
    /// filtered the same way.
    #[test]
    fn awake_bitset_scan_matches_age_list_on_random_windows() {
        let mut rng: u64 = 0x5eed_cafe_f00d_0001;
        let mut next = move || {
            // xorshift64* — deterministic, no external crates.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for trial in 0..200 {
            let size = 1 + (next() % 100) as usize; // spans multiple words
            // Ring sized past the whole trial: the random removal order
            // lets resident ids spread wider than a real pipeline's
            // in-flight limit would allow.
            let mut s = Scheduler::new(
                SchedulerKind::CentralWindow { size },
                1,
                SteeringPolicy::Dependence,
                512,
            );
            let mut seq = trial * 10_000; // distinct ids per trial
            let mut resident: Vec<InstId> = Vec::new();
            let mut awake: Vec<InstId> = Vec::new();
            for _ in 0..300 {
                match next() % 4 {
                    // Dispatch (ids ascend, like real sequence numbers).
                    0 | 1 => {
                        let id = InstId(seq);
                        if s.try_insert(id, &alu(10, 1, 2)).is_ok() {
                            seq += 1;
                            resident.push(id);
                            if next() % 2 == 0 {
                                s.set_awake(id);
                                awake.push(id);
                            }
                        }
                    }
                    // Issue an arbitrary resident (fragments the window).
                    2 => {
                        if !resident.is_empty() {
                            let victim = resident.remove((next() % resident.len() as u64) as usize);
                            awake.retain(|&id| id != victim);
                            s.remove(victim);
                        }
                    }
                    // Wake a sleeping resident.
                    _ => {
                        if let Some(&id) =
                            resident.iter().find(|id| !awake.contains(id))
                        {
                            s.set_awake(id);
                            awake.push(id);
                        }
                    }
                }
                // Slot order: candidates_into filtered to the awake set.
                let mut all = Vec::new();
                s.candidates_into(&mut all);
                let expect_slot: Vec<Candidate> = all
                    .iter()
                    .copied()
                    .filter(|c| awake.contains(&c.id))
                    .collect();
                let mut got = Vec::new();
                s.awake_candidates_into(&mut got);
                assert_eq!(got, expect_slot, "trial {trial}: slot-order scan");
                // Age order: candidates_into_aged filtered to the awake set.
                s.candidates_into_aged(&mut all);
                let expect_aged: Vec<Candidate> = all
                    .iter()
                    .copied()
                    .filter(|c| awake.contains(&c.id))
                    .collect();
                s.awake_candidates_into_aged(&mut got);
                assert_eq!(got, expect_aged, "trial {trial}: age-order scan");
            }
        }
    }

    #[test]
    fn set_awake_tolerates_pooled_and_absent_ids() {
        let mut pooled = Scheduler::new(
            SchedulerKind::Fifos { fifos_per_cluster: 2, depth: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        pooled.try_insert(InstId(0), &alu(10, 1, 2)).unwrap();
        pooled.set_awake(InstId(0)); // no-op, must not panic
        let mut central = Scheduler::new(
            SchedulerKind::CentralWindow { size: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        central.set_awake(InstId(7)); // absent id: no-op
        let mut out = Vec::new();
        central.awake_candidates_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be in the window")]
    fn removing_absent_instruction_panics() {
        let mut s = Scheduler::new(
            SchedulerKind::CentralWindow { size: 4 },
            1,
            SteeringPolicy::Dependence,
            128,
        );
        s.remove(InstId(42));
    }
}
