//! McFarling gshare branch predictor (Table 3: 4 K 2-bit counters, 12-bit
//! global history; unconditional control transfers predicted perfectly).

use crate::config::BpredConfig;

/// A gshare direction predictor.
///
/// ```
/// use ce_sim::bpred::Gshare;
/// use ce_sim::config::BpredConfig;
///
/// let mut bp = Gshare::new(BpredConfig::default());
/// // A monotone branch trains once the 12-bit global history saturates.
/// for _ in 0..20 {
///     bp.predict_and_update(0x40_0040, true);
/// }
/// assert!(bp.predict_and_update(0x40_0040, true));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u32,
    history_mask: u32,
    index_mask: usize,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BpredConfig::validate`]
    /// (counter count not a non-zero power of two, or more than 31
    /// history bits — the `u32` history register cannot mask more).
    pub fn new(config: BpredConfig) -> Gshare {
        if let Err(msg) = config.validate() {
            panic!("invalid branch predictor configuration: {msg}");
        }
        // `validate` caps history_bits at 31, so the shift cannot
        // overflow (`1u32 << 32` would panic in debug builds).
        Gshare {
            counters: vec![1; config.counters],
            history: 0,
            history_mask: (1u32 << config.history_bits) - 1,
            index_mask: config.counters - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) ^ self.history) as usize) & self.index_mask
    }

    /// Predicts the branch at `pc`, then updates the counter and global
    /// history with the actual outcome (trace-driven sims never fetch a
    /// wrong path, so updating immediately is exact).
    ///
    /// Returns whether the *prediction* was taken.
    pub fn predict_and_update(&mut self, pc: u32, actual_taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.counters[idx];
        let predicted_taken = counter >= 2;

        self.predictions += 1;
        if predicted_taken != actual_taken {
            self.mispredictions += 1;
        }

        self.counters[idx] = match (counter, actual_taken) {
            (3, true) => 3,
            (c, true) => c + 1,
            (0, false) => 0,
            (c, false) => c - 1,
        };
        self.history = ((self.history << 1) | u32::from(actual_taken)) & self.history_mask;
        predicted_taken
    }

    /// Conditional branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Prediction accuracy in [0, 1]; 1.0 when nothing was predicted yet.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> Gshare {
        Gshare::new(BpredConfig::default())
    }

    #[test]
    fn learns_monotone_branch() {
        let mut p = bp();
        // Warm-up must outlast the 12-bit history filling with ones (the
        // table index keeps moving until the history saturates).
        for _ in 0..20 {
            p.predict_and_update(0x400100, true);
        }
        // After warm-up, a monotone branch is always predicted correctly.
        let before = p.mispredictions();
        for _ in 0..100 {
            p.predict_and_update(0x400100, true);
        }
        assert_eq!(p.mispredictions(), before);
        // Warm-up mispredictions (history churn) cap accuracy below 1.0.
        assert!(p.accuracy() > 0.8, "accuracy {}", p.accuracy());
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T,N,T,N… is perfectly predictable with global history.
        let mut p = bp();
        let mut taken = true;
        for _ in 0..200 {
            p.predict_and_update(0x400200, taken);
            taken = !taken;
        }
        let before = p.mispredictions();
        for _ in 0..100 {
            p.predict_and_update(0x400200, taken);
            taken = !taken;
        }
        assert_eq!(p.mispredictions(), before, "pattern should be learned");
    }

    #[test]
    fn counts_predictions() {
        let mut p = bp();
        for i in 0..10 {
            p.predict_and_update(0x400000 + i * 4, i % 2 == 0);
        }
        assert_eq!(p.predictions(), 10);
    }

    #[test]
    fn random_outcomes_mispredict_often() {
        // Deterministic pseudo-random outcomes: accuracy should be near
        // chance, demonstrating the predictor is not an oracle.
        let mut p = bp();
        let mut x: u32 = 12345;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            p.predict_and_update(0x400300, (x >> 16) & 1 == 1);
        }
        assert!(p.accuracy() < 0.65, "accuracy {}", p.accuracy());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = Gshare::new(BpredConfig { counters: 1000, history_bits: 10, perfect: false });
    }

    /// Regression test: `history_bits = 32` used to overflow the
    /// `1u32 << history_bits` mask computation (a debug-build panic with
    /// an unhelpful "attempt to shift left with overflow" message); it
    /// must now fail validation with a descriptive error instead.
    #[test]
    #[should_panic(expected = "history is limited to 31 bits")]
    fn oversized_history_is_rejected_not_overflowed() {
        let _ = Gshare::new(BpredConfig { counters: 4096, history_bits: 32, perfect: false });
    }

    /// The widest representable history works — and the mask is all ones.
    #[test]
    fn thirty_one_history_bits_are_fine() {
        let mut p = Gshare::new(BpredConfig { counters: 64, history_bits: 31, perfect: false });
        for i in 0..100 {
            p.predict_and_update(0x400000 + i * 4, i % 3 == 0);
        }
        assert_eq!(p.predictions(), 100);
    }
}
