//! Stall-attribution accounting: where the issue slots went.
//!
//! IPC differences between the paper's organizations (Section 5) come down
//! to *unused issue slots*: a `width`-wide machine has `width × cycles`
//! issue slots over a run, `issued` of them do work, and every other slot
//! was lost to something. With [`SimConfig::attribution`] enabled the
//! pipeline charges each unused slot, every cycle, to exactly one cause in
//! the fixed taxonomy below, so the identity
//!
//! ```text
//! sum(causes) + issued == issue_width × cycles
//! ```
//!
//! holds *exactly* (the invariant checker re-verifies it at the end of a
//! checked run). The result is a CPI-stack-style breakdown that explains a
//! Figure 17 cell instead of just reporting it.
//!
//! ## Charging rule
//!
//! Each cycle the issue loop scans candidates in selection order. Every
//! candidate it rejects records the *first* check that failed. After the
//! scan, the `width − issued` unused slots are charged one-per-rejected-
//! candidate in scan order; slots beyond the rejection count (the window
//! simply held too few candidates) fall to a background cause derived from
//! the front end: [`MispredictRecovery`] while fetch is stalled on an
//! unresolved branch, [`DispatchStall`] while fetched work exists but has
//! not reached the scheduler, and [`EmptyWindow`] otherwise.
//!
//! Attribution is observational: it never changes timing, and the
//! differential suite pins that the statistics fingerprint is bit-identical
//! with the accountant on or off.
//!
//! [`SimConfig::attribution`]: crate::config::SimConfig::attribution
//! [`MispredictRecovery`]: StallCause::MispredictRecovery
//! [`DispatchStall`]: StallCause::DispatchStall
//! [`EmptyWindow`]: StallCause::EmptyWindow

/// Why an issue slot went unused on some cycle — the fixed taxonomy.
///
/// Precedence for a rejected candidate (first matching cause wins):
/// structural caps ([`FuPortContention`]), operands that would be ready
/// but for cluster crossing ([`InterclusterWait`]), an unready FIFO head
/// shadowing work queued behind it ([`FifoHeadNotReady`]), and plain
/// dataflow waiting ([`OperandWait`] — which also covers loads held by
/// memory-ordering rules and split stores with unknown data, both waits on
/// a store dependence).
///
/// [`FuPortContention`]: StallCause::FuPortContention
/// [`InterclusterWait`]: StallCause::InterclusterWait
/// [`FifoHeadNotReady`]: StallCause::FifoHeadNotReady
/// [`OperandWait`]: StallCause::OperandWait
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The scheduler held no candidate at all and the front end had
    /// nothing in flight (program start, drain, or a fetch-limited phase).
    EmptyWindow,
    /// A FIFO head was not ready and at least one instruction was queued
    /// behind it — the dependence-based organizations' signature loss
    /// (Section 5.2: only heads are visible to select).
    FifoHeadNotReady,
    /// A candidate's source operands were not yet produced (dataflow
    /// limit), including loads waiting on older-store ordering.
    OperandWait,
    /// A candidate was ready but every usable FU (or D-cache port) was
    /// taken this cycle.
    FuPortContention,
    /// A candidate's operands were ready in the producing cluster but not
    /// yet here — the Section 5.5 inter-cluster bypass delay.
    InterclusterWait,
    /// The scheduler was starved while fetched instructions sat in the
    /// front end (front-end depth or a dispatch-side structural stall).
    DispatchStall,
    /// Fetch was stalled on an unresolved mispredicted branch and the
    /// window had nothing left to issue — the misprediction refill window.
    MispredictRecovery,
}

impl StallCause {
    /// Number of causes in the taxonomy.
    pub const COUNT: usize = 7;

    /// Every cause, in display order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::EmptyWindow,
        StallCause::FifoHeadNotReady,
        StallCause::OperandWait,
        StallCause::FuPortContention,
        StallCause::InterclusterWait,
        StallCause::DispatchStall,
        StallCause::MispredictRecovery,
    ];

    /// A stable snake_case identifier (used in JSON/CSV exports).
    pub fn key(self) -> &'static str {
        match self {
            StallCause::EmptyWindow => "empty_window",
            StallCause::FifoHeadNotReady => "fifo_head_not_ready",
            StallCause::OperandWait => "operand_wait",
            StallCause::FuPortContention => "fu_port_contention",
            StallCause::InterclusterWait => "intercluster_wait",
            StallCause::DispatchStall => "dispatch_stall",
            StallCause::MispredictRecovery => "mispredict_recovery",
        }
    }

    /// A short label for fixed-width tables.
    pub fn short(self) -> &'static str {
        match self {
            StallCause::EmptyWindow => "empty",
            StallCause::FifoHeadNotReady => "fifohead",
            StallCause::OperandWait => "operand",
            StallCause::FuPortContention => "fu/port",
            StallCause::InterclusterWait => "xcluster",
            StallCause::DispatchStall => "dispatch",
            StallCause::MispredictRecovery => "mispred",
        }
    }
}

/// Per-cause unused-issue-slot counts for one run.
///
/// All-zero unless the run had [`SimConfig::attribution`] enabled.
/// Deliberately excluded from [`SimStats::fingerprint`]: the breakdown is
/// an observation layered on the timing model, not part of it.
///
/// [`SimConfig::attribution`]: crate::config::SimConfig::attribution
/// [`SimStats::fingerprint`]: crate::stats::SimStats::fingerprint
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    slots: [u64; StallCause::COUNT],
}

impl StallBreakdown {
    /// Charges `n` unused issue slots to `cause`.
    pub fn charge(&mut self, cause: StallCause, n: u64) {
        self.slots[cause as usize] += n;
    }

    /// Slots charged to one cause.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.slots[cause as usize]
    }

    /// Total unused slots across all causes.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Whether any slot was charged (i.e. the accountant ran and the
    /// machine ever left a slot unused).
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&n| n == 0)
    }

    /// `(cause, slots)` rows in display order.
    pub fn rows(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Checks the accounting identity for a run of `cycles` cycles on a
    /// `issue_width`-wide machine that issued `issued` instructions.
    pub fn reconciles(&self, issue_width: usize, cycles: u64, issued: u64) -> bool {
        self.total() + issued == issue_width as u64 * cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut b = StallBreakdown::default();
        assert!(b.is_empty());
        b.charge(StallCause::OperandWait, 3);
        b.charge(StallCause::EmptyWindow, 2);
        b.charge(StallCause::OperandWait, 1);
        assert_eq!(b.get(StallCause::OperandWait), 4);
        assert_eq!(b.get(StallCause::EmptyWindow), 2);
        assert_eq!(b.get(StallCause::FuPortContention), 0);
        assert_eq!(b.total(), 6);
        assert!(!b.is_empty());
    }

    #[test]
    fn reconciliation_identity() {
        let mut b = StallBreakdown::default();
        // 8-wide, 10 cycles, 50 issued: 30 slots unused.
        b.charge(StallCause::EmptyWindow, 10);
        b.charge(StallCause::OperandWait, 20);
        assert!(b.reconciles(8, 10, 50));
        assert!(!b.reconciles(8, 10, 49));
    }

    #[test]
    fn keys_are_unique_and_ordered() {
        let keys: Vec<&str> = StallCause::ALL.iter().map(|c| c.key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), StallCause::COUNT);
        // Discriminants index the slots array densely.
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn rows_cover_every_cause() {
        let mut b = StallBreakdown::default();
        b.charge(StallCause::MispredictRecovery, 7);
        let rows: Vec<(StallCause, u64)> = b.rows().collect();
        assert_eq!(rows.len(), StallCause::COUNT);
        assert!(rows.contains(&(StallCause::MispredictRecovery, 7)));
    }
}
