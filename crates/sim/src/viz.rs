//! ASCII pipeline diagrams from [`IssueRecord`]s — a textual version of
//! the paper's Figure 12 timeline.
//!
//! Each instruction gets a row; columns are cycles. Markers:
//!
//! * `D` — dispatched into the scheduler,
//! * `.` — waiting in the scheduler,
//! * `E` — executing (issue to completion),
//! * digits `0`/`1`/… in place of `E` — executing in that cluster (only
//!   when the machine has more than one cluster).

use crate::pipeline::IssueRecord;
use std::fmt::Write as _;

/// Renders a pipeline diagram for `records` (typically a slice of the
/// schedule from [`Simulator::run_traced`](crate::Simulator::run_traced)).
///
/// `clusters` controls the execute marker: pass the machine's cluster
/// count. Returns an empty string for an empty slice.
///
/// ```
/// use ce_sim::pipeline::IssueRecord;
/// use ce_sim::viz::render_schedule;
///
/// let records = [
///     IssueRecord { seq: 0, pc: 0x400000, dispatched_at: 1, issued_at: 2, completed_at: 3, cluster: 0 },
///     IssueRecord { seq: 1, pc: 0x400004, dispatched_at: 1, issued_at: 3, completed_at: 4, cluster: 0 },
/// ];
/// let diagram = render_schedule(&records, 1);
/// assert!(diagram.contains("i0"));
/// assert!(diagram.contains('E'));
/// ```
pub fn render_schedule(records: &[IssueRecord], clusters: usize) -> String {
    let Some(first_cycle) = records.iter().map(|r| r.dispatched_at).min() else {
        return String::new();
    };
    let last_cycle = records.iter().map(|r| r.completed_at).max().expect("nonempty");
    let span = (last_cycle - first_cycle + 1) as usize;
    let label_width = records
        .iter()
        .map(|r| format!("i{}", r.seq).len())
        .max()
        .expect("nonempty")
        .max(4);

    let mut out = String::new();
    // Header: cycle ruler, one tick each 5 columns.
    let _ = write!(out, "{:>label_width$} ", "");
    for c in 0..span {
        let cycle = first_cycle + c as u64;
        if cycle.is_multiple_of(5) {
            let digit = (cycle / 5) % 10;
            let _ = write!(out, "{digit}");
        } else {
            out.push(' ');
        }
    }
    out.push('\n');

    for r in records {
        let _ = write!(out, "{:>label_width$} ", format!("i{}", r.seq));
        for c in 0..span {
            let cycle = first_cycle + c as u64;
            let ch = if cycle < r.dispatched_at {
                ' '
            } else if cycle == r.dispatched_at {
                'D'
            } else if cycle < r.issued_at {
                '.'
            } else if cycle < r.completed_at {
                if clusters > 1 {
                    char::from_digit(r.cluster as u32 % 10, 10).unwrap_or('E')
                } else {
                    'E'
                }
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, d: u64, i: u64, c: u64, cluster: usize) -> IssueRecord {
        IssueRecord {
            seq,
            pc: 0x40_0000 + seq as u32 * 4,
            dispatched_at: d,
            issued_at: i,
            completed_at: c,
            cluster,
        }
    }

    #[test]
    fn empty_schedule_renders_nothing() {
        assert_eq!(render_schedule(&[], 1), "");
    }

    #[test]
    fn single_cluster_uses_e_markers() {
        let diagram = render_schedule(&[rec(0, 1, 3, 5, 0)], 1);
        let row = diagram.lines().nth(1).expect("one row");
        assert!(row.contains('D'));
        assert!(row.contains('.'));
        assert_eq!(row.matches('E').count(), 2, "executes cycles 3 and 4: {row}");
    }

    #[test]
    fn multi_cluster_marks_cluster_digits() {
        let diagram = render_schedule(&[rec(0, 1, 2, 3, 0), rec(1, 1, 2, 3, 1)], 2);
        assert!(diagram.contains('0'));
        assert!(diagram.contains('1'));
    }

    #[test]
    fn rows_align_to_a_common_origin() {
        let records = [rec(0, 1, 2, 3, 0), rec(1, 4, 5, 6, 0)];
        let diagram = render_schedule(&records, 1);
        let lines: Vec<&str> = diagram.lines().collect();
        assert_eq!(lines.len(), 3, "ruler + two rows");
        // The second instruction's D appears later in its row than the
        // first instruction's D does in its row.
        let d0 = lines[1].find('D').unwrap();
        let d1 = lines[2].find('D').unwrap();
        assert!(d1 > d0);
    }

    /// A schedule spanning several hundred cycles must still produce one
    /// column per cycle, rows as wide as the full span, and a ruler tick
    /// on every 5th cycle — long-latency tails (cache misses) hit this.
    #[test]
    fn long_span_renders_one_column_per_cycle() {
        let records = [rec(0, 3, 10, 20, 0), rec(1, 5, 250, 260, 0)];
        let diagram = render_schedule(&records, 1);
        let lines: Vec<&str> = diagram.lines().collect();
        assert_eq!(lines.len(), 3);
        let label_width = 4; // "i0" padded to the 4-char minimum.
        let span = (260 - 3 + 1) as usize;
        for line in &lines {
            assert_eq!(line.chars().count(), label_width + 1 + span, "{line:?}");
        }
        // Ruler ticks: cycles 5, 10, ..., 260 → 52 digits.
        let ruler_digits = lines[0].chars().filter(char::is_ascii_digit).count();
        assert_eq!(ruler_digits, 52, "{:?}", lines[0]);
        // The second instruction waits from cycle 6 to 249 — 244 dots.
        assert_eq!(lines[2].matches('.').count(), 244, "{:?}", lines[2]);
        assert_eq!(lines[2].matches('E').count(), 10);
    }

    #[test]
    fn back_to_back_chain_reads_as_a_staircase() {
        let records = [rec(0, 1, 2, 3, 0), rec(1, 1, 3, 4, 0), rec(2, 1, 4, 5, 0)];
        let diagram = render_schedule(&records, 1);
        let positions: Vec<usize> = diagram
            .lines()
            .skip(1)
            .map(|l| l.find('E').expect("each row executes"))
            .collect();
        assert!(positions.windows(2).all(|w| w[1] == w[0] + 1), "{diagram}");
    }
}
