//! Ready-made machine configurations for every organization the paper
//! evaluates.

use crate::config::{
    BpredConfig, BypassModel, DcacheConfig, LatencyModel, MemDisambiguation, SchedulerKind,
    SelectionPolicy, SimConfig, SteeringPolicy,
};

fn base() -> SimConfig {
    SimConfig {
        fetch_width: 8,
        issue_width: 8,
        retire_width: 16,
        max_inflight: 128,
        physical_regs: 120,
        clusters: 1,
        intercluster_extra: 1,
        regwrite_delay: 2,
        frontend_depth: 2,
        scheduler: SchedulerKind::CentralWindow { size: 64 },
        steering: SteeringPolicy::Dependence,
        selection: SelectionPolicy::OldestFirst,
        bypass_model: BypassModel::Full,
        pipelined_wakeup_select: false,
        latency: LatencyModel::Uniform,
        mem_disambiguation: MemDisambiguation::AddressesKnown,
        split_store_issue: false,
        fetch_breaks_on_taken: false,
        model_wrong_path: false,
        check: false,
        attribution: false,
        fault: None,
        bpred: BpredConfig::default(),
        dcache: DcacheConfig::default(),
    }
}

/// The conventional baseline (Table 3): 8-way, single 64-entry issue
/// window, single-cycle bypass between all units. Also the "ideal"
/// leftmost bar of Figure 17.
///
/// ```
/// use ce_sim::machine;
///
/// let cfg = machine::baseline_8way();
/// assert_eq!(cfg.issue_width, 8);
/// assert!(cfg.validate().is_ok());
/// ```
pub fn baseline_8way() -> SimConfig {
    base()
}

/// The dependence-based microarchitecture of Figure 11/13: 8 FIFOs of 8
/// entries, unclustered, 8-way.
pub fn dependence_8way() -> SimConfig {
    SimConfig {
        scheduler: SchedulerKind::Fifos { fifos_per_cluster: 8, depth: 8 },
        ..base()
    }
}

/// The clustered dependence-based machine of Figures 14/15: two 4-way
/// clusters of 4 FIFOs × 8 entries, 2-cycle inter-cluster bypass
/// (`2-cluster.FIFOs.dispatch_steer` in Figure 17).
pub fn clustered_fifos_8way() -> SimConfig {
    SimConfig {
        clusters: 2,
        scheduler: SchedulerKind::Fifos { fifos_per_cluster: 4, depth: 8 },
        ..base()
    }
}

/// Two 32-entry flexible windows with dispatch-driven steering
/// (Section 5.6.2, `2-cluster.windows.dispatch_steer`): the steering
/// heuristic sees each window as 8 conceptual FIFOs of 4 slots.
pub fn clustered_windows_dispatch_8way() -> SimConfig {
    SimConfig {
        clusters: 2,
        scheduler: SchedulerKind::SteeredWindows { fifos_per_cluster: 8, fifo_depth: 4 },
        ..base()
    }
}

/// A central 64-entry window whose instructions pick a cluster at issue
/// time (Section 5.6.1, `2-cluster.1window.exec_steer`).
pub fn clustered_window_exec_8way() -> SimConfig {
    SimConfig { clusters: 2, scheduler: SchedulerKind::CentralWindow { size: 64 }, ..base() }
}

/// Two 32-entry windows with random steering (Section 5.6.3,
/// `2-cluster.windows.random_steer`).
pub fn clustered_windows_random_8way() -> SimConfig {
    SimConfig {
        clusters: 2,
        scheduler: SchedulerKind::SteeredWindows { fifos_per_cluster: 1, fifo_depth: 32 },
        steering: SteeringPolicy::Random { seed: 0xce11 },
        ..base()
    }
}

/// Stable names of the preset machines, as accepted by [`by_name`] —
/// the wire vocabulary shared by `cesim --machine` and the experiment
/// service's custom-cell specs.
pub const MACHINE_NAMES: [&str; 6] =
    ["window", "fifos", "clustered-fifos", "clustered-windows", "exec-steer", "random"];

/// Looks up a preset machine by its stable name (see [`MACHINE_NAMES`]).
pub fn by_name(name: &str) -> Option<SimConfig> {
    Some(match name {
        "window" => baseline_8way(),
        "fifos" => dependence_8way(),
        "clustered-fifos" => clustered_fifos_8way(),
        "clustered-windows" => clustered_windows_dispatch_8way(),
        "exec-steer" => clustered_window_exec_8way(),
        "random" => clustered_windows_random_8way(),
        _ => return None,
    })
}

/// All five Figure 17 organizations, in the figure's bar order, with
/// display labels.
pub fn figure17_machines() -> [(&'static str, SimConfig); 5] {
    [
        ("1-cluster.1window", baseline_8way()),
        ("2-cluster.FIFOs.dispatch_steer", clustered_fifos_8way()),
        ("2-cluster.windows.dispatch_steer", clustered_windows_dispatch_8way()),
        ("2-cluster.1window.exec_steer", clustered_window_exec_8way()),
        ("2-cluster.windows.random_steer", clustered_windows_random_8way()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for (name, cfg) in figure17_machines() {
            assert!(cfg.validate().is_ok(), "{name}");
        }
        assert!(dependence_8way().validate().is_ok());
    }

    #[test]
    fn cluster_geometry() {
        assert_eq!(baseline_8way().fus_per_cluster(), 8);
        assert_eq!(clustered_fifos_8way().fus_per_cluster(), 4);
        assert_eq!(
            clustered_windows_dispatch_8way().scheduler.capacity_per_cluster(2),
            32
        );
        assert_eq!(
            clustered_windows_random_8way().scheduler.capacity_per_cluster(2),
            32
        );
    }
}
