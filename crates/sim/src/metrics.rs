//! Metrics export: one run's configuration, counters, and stall
//! attribution as a self-describing JSON document.
//!
//! The schema is versioned (`"schema": "ce-sim.metrics.v1"`) and checked
//! in CI against `results/metrics.schema.json` by the `metrics_check`
//! tool, so downstream scripts can rely on the shape. Serialization is
//! hand-rolled (the repo takes no external dependencies); all keys are
//! emitted in a fixed order so documents diff cleanly.

use crate::attribution::StallCause;
use crate::config::{SchedulerKind, SimConfig, SteeringPolicy};
use crate::stats::SimStats;
use std::fmt::Write;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A stable label for the scheduler organization.
fn scheduler_label(kind: SchedulerKind) -> String {
    match kind {
        SchedulerKind::CentralWindow { size } => format!("central_window({size})"),
        SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
            format!("steered_windows({fifos_per_cluster}x{fifo_depth})")
        }
        SchedulerKind::Fifos { fifos_per_cluster, depth } => {
            format!("fifos({fifos_per_cluster}x{depth})")
        }
    }
}

/// A stable label for the steering policy.
fn steering_label(policy: SteeringPolicy) -> &'static str {
    match policy {
        SteeringPolicy::Dependence => "dependence",
        SteeringPolicy::Random { .. } => "random",
        SteeringPolicy::RoundRobin => "round_robin",
        SteeringPolicy::LoadBalanced => "load_balanced",
    }
}

/// Renders one run as a `ce-sim.metrics.v1` JSON document.
///
/// `stall_attribution` is `null` when the run did not enable
/// [`SimConfig::attribution`]; otherwise it carries the per-cause
/// unused-slot counts plus the quantities of the reconciliation identity
/// `sum(causes) + issued == issue_slots` (`issue_slots = issue_width ×
/// cycles`).
pub fn metrics_json(machine: &str, workload: &str, cfg: &SimConfig, stats: &SimStats) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str("{\n");
    s.push_str("  \"schema\": \"ce-sim.metrics.v1\",\n");
    let _ = writeln!(s, "  \"machine\": \"{}\",", esc(machine));
    let _ = writeln!(s, "  \"workload\": \"{}\",", esc(workload));
    s.push_str("  \"config\": {\n");
    let _ = writeln!(s, "    \"issue_width\": {},", cfg.issue_width);
    let _ = writeln!(s, "    \"fetch_width\": {},", cfg.fetch_width);
    let _ = writeln!(s, "    \"clusters\": {},", cfg.clusters);
    let _ = writeln!(s, "    \"scheduler\": \"{}\",", scheduler_label(cfg.scheduler));
    let _ = writeln!(s, "    \"steering\": \"{}\",", steering_label(cfg.steering));
    let _ = writeln!(s, "    \"attribution\": {}", cfg.attribution);
    s.push_str("  },\n");
    s.push_str("  \"counters\": {\n");
    let counters: [(&str, u64); 18] = [
        ("cycles", stats.cycles),
        ("committed", stats.committed),
        ("issued", stats.issued),
        ("branches", stats.branches),
        ("mispredictions", stats.mispredictions),
        ("loads", stats.loads),
        ("stores", stats.stores),
        ("dcache_accesses", stats.dcache_accesses),
        ("dcache_misses", stats.dcache_misses),
        ("forwarded_loads", stats.forwarded_loads),
        ("intercluster_bypasses", stats.intercluster_bypasses),
        ("dispatch_stall_cycles", stats.dispatch_stall_cycles),
        ("scheduler_stalls", stats.scheduler_stalls),
        ("inflight_stalls", stats.inflight_stalls),
        ("preg_stalls", stats.preg_stalls),
        ("occupancy_sum", stats.occupancy_sum),
        ("wrong_path_fetched", stats.wrong_path_fetched),
        ("wrong_path_issued", stats.wrong_path_issued),
    ];
    for (i, (key, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{key}\": {value}{comma}");
    }
    s.push_str("  },\n");
    s.push_str("  \"derived\": {\n");
    let derived: [(&str, f64); 6] = [
        ("ipc", stats.ipc()),
        ("branch_accuracy", stats.branch_accuracy()),
        ("dcache_miss_rate", stats.dcache_miss_rate()),
        ("intercluster_bypass_frequency", stats.intercluster_bypass_frequency()),
        ("mean_occupancy", stats.mean_occupancy()),
        ("idle_issue_fraction", stats.idle_issue_fraction()),
    ];
    for (i, (key, value)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{key}\": {value:.6}{comma}");
    }
    s.push_str("  },\n");
    let hist = stats
        .issue_histogram
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(s, "  \"issue_histogram\": [{hist}],");
    if cfg.attribution {
        s.push_str("  \"stall_attribution\": {\n");
        let slots = cfg.issue_width as u64 * stats.cycles;
        let _ = writeln!(s, "    \"issue_slots\": {slots},");
        let _ = writeln!(s, "    \"issued\": {},", stats.issued);
        let _ = writeln!(s, "    \"unused\": {},", stats.stall_breakdown.total());
        s.push_str("    \"causes\": {\n");
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            let comma = if i + 1 < StallCause::COUNT { "," } else { "" };
            let _ = writeln!(
                s,
                "      \"{}\": {}{comma}",
                cause.key(),
                stats.stall_breakdown.get(*cause)
            );
        }
        s.push_str("    }\n");
        s.push_str("  }\n");
    } else {
        s.push_str("  \"stall_attribution\": null\n");
    }
    s.push('}');
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;

    #[test]
    fn document_has_the_versioned_schema_and_sections() {
        let cfg = machine::baseline_8way();
        let stats = SimStats { cycles: 10, committed: 25, issued: 25, ..Default::default() };
        let doc = metrics_json("baseline", "li", &cfg, &stats);
        assert!(doc.contains("\"schema\": \"ce-sim.metrics.v1\""));
        assert!(doc.contains("\"machine\": \"baseline\""));
        assert!(doc.contains("\"workload\": \"li\""));
        assert!(doc.contains("\"cycles\": 10"));
        assert!(doc.contains("\"ipc\": 2.500000"));
        assert!(doc.contains("\"scheduler\": \"central_window(64)\""));
        assert!(doc.contains("\"stall_attribution\": null"));
    }

    #[test]
    fn attribution_section_reports_every_cause() {
        let mut cfg = machine::dependence_8way();
        cfg.attribution = true;
        let mut stats = SimStats { cycles: 10, committed: 30, issued: 30, ..Default::default() };
        stats.stall_breakdown.charge(StallCause::FifoHeadNotReady, 50);
        let doc = metrics_json("fifos", "vortex", &cfg, &stats);
        assert!(doc.contains("\"issue_slots\": 80"), "{doc}");
        assert!(doc.contains("\"unused\": 50"), "{doc}");
        for cause in StallCause::ALL {
            assert!(doc.contains(&format!("\"{}\":", cause.key())), "{doc}");
        }
        assert!(doc.contains("\"fifo_head_not_ready\": 50"), "{doc}");
        assert!(doc.contains("\"scheduler\": \"fifos(8x8)\""), "{doc}");
    }

    #[test]
    fn strings_are_escaped() {
        let cfg = machine::baseline_8way();
        let stats = SimStats::default();
        let doc = metrics_json("a\"b\\c", "w\n", &cfg, &stats);
        assert!(doc.contains("\"machine\": \"a\\\"b\\\\c\""));
        assert!(doc.contains("\"workload\": \"w\\n\""));
    }
}
