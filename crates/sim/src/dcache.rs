//! Set-associative data cache timing model (Table 3: 32 KB, 2-way,
//! write-back, write-allocate, 32-byte lines, LRU).
//!
//! Only hit/miss timing matters to the simulator; data values come from
//! the functional trace. Write-backs of dirty victims are modeled for the
//! statistics but add no latency (an unbounded write buffer, as in the
//! SimpleScalar configuration the paper uses).

use crate::config::DcacheConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

const INVALID: Line = Line { tag: 0, valid: false, dirty: false, lru: 0 };

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was fetched; `writeback` reports whether a dirty victim
    /// was evicted.
    Miss {
        /// A dirty line was evicted.
        writeback: bool,
    },
}

/// The data cache.
///
/// ```
/// use ce_sim::config::DcacheConfig;
/// use ce_sim::dcache::{Access, Dcache};
///
/// let mut cache = Dcache::new(DcacheConfig::default());
/// assert!(matches!(cache.access(0x1000_0000, false), Access::Miss { .. }));
/// assert_eq!(cache.access(0x1000_0000, false), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Dcache {
    config: DcacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Dcache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics unless line size and set count are powers of two and the
    /// geometry divides evenly.
    pub fn new(config: DcacheConfig) -> Dcache {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0, "need at least one way");
        let lines = config.bytes / config.line_bytes;
        assert!(
            lines.is_multiple_of(config.ways),
            "geometry must divide evenly into sets"
        );
        let set_count = lines / config.ways;
        assert!(set_count.is_power_of_two(), "set count must be a power of two");
        Dcache {
            config,
            sets: vec![vec![INVALID; config.ways]; set_count],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> DcacheConfig {
        self.config
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    fn split(&self, addr: u32) -> (usize, u32) {
        let line = addr as usize / self.config.line_bytes;
        (line % self.sets.len(), (line / self.sets.len()) as u32)
    }

    /// Performs a load or store access, updating LRU and dirty state.
    pub fn access(&mut self, addr: u32, is_store: bool) -> Access {
        self.clock += 1;
        let (set_idx, tag) = self.split(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= is_store;
            self.hits += 1;
            return Access::Hit;
        }

        self.misses += 1;
        // Victim: invalid line if any, else least recently used.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("ways > 0");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.writebacks += 1;
        }
        *victim = Line { tag, valid: true, dirty: is_store, lru: self.clock };
        Access::Miss { writeback }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate in [0, 1]; 0 when no accesses have happened.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Dcache {
        Dcache::new(DcacheConfig::default())
    }

    #[test]
    fn geometry_matches_table3() {
        let c = cache();
        // 32 KB / 32 B lines / 2 ways = 512 sets.
        assert_eq!(c.set_count(), 512);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = cache();
        assert!(matches!(c.access(0x1000_0000, false), Access::Miss { writeback: false }));
        assert_eq!(c.access(0x1000_0000, false), Access::Hit);
        assert_eq!(c.access(0x1000_001F, false), Access::Hit, "same 32-byte line");
        assert!(matches!(c.access(0x1000_0020, false), Access::Miss { .. }), "next line");
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = cache();
        let set_stride = (512 * 32) as u32; // same set, different tag
        c.access(0x1000_0000, false);
        c.access(0x1000_0000 + set_stride, false);
        // Touch the first line so the second becomes LRU.
        c.access(0x1000_0000, false);
        // A third tag evicts the second line.
        c.access(0x1000_0000 + 2 * set_stride, false);
        assert_eq!(c.access(0x1000_0000, false), Access::Hit, "MRU line survived");
        assert!(matches!(
            c.access(0x1000_0000 + set_stride, false),
            Access::Miss { .. }
        ));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = cache();
        let set_stride = (512 * 32) as u32;
        c.access(0x2000_0000, true); // store: allocate dirty
        c.access(0x2000_0000 + set_stride, false);
        let third = c.access(0x2000_0000 + 2 * set_stride, false);
        assert_eq!(third, Access::Miss { writeback: true });
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn miss_rate_accounting() {
        let mut c = cache();
        c.access(0x3000_0000, false);
        c.access(0x3000_0000, false);
        c.access(0x3000_0000, false);
        c.access(0x3000_0000, false);
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = cache();
        // Stream over 64 KB twice: no reuse fits in 32 KB.
        for pass in 0..2 {
            for line in 0..2048u32 {
                c.access(0x4000_0000 + line * 32, false);
            }
            if pass == 0 {
                assert_eq!(c.misses(), 2048);
            }
        }
        assert!(c.miss_rate() > 0.99);
    }
}
