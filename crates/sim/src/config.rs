//! Machine configuration (paper Table 3 defaults).

use std::error::Error;
use std::fmt;

/// An invalid [`SimConfig`], as reported by [`SimConfig::validate`] —
/// carried as a proper error type so sweep drivers can report a bad grid
/// cell instead of aborting a whole parallel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulator configuration: {}", self.0)
    }
}

impl Error for ConfigError {}

/// How instructions are assigned to clusters/FIFOs at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringPolicy {
    /// The Section 5.1 dependence heuristic (SRC_FIFO table).
    Dependence,
    /// Uniformly random placement (Section 5.6.3), with the given seed.
    Random {
        /// PRNG seed so runs are repeatable.
        seed: u64,
    },
    /// Dependence-blind round-robin striping: balanced but chain-unaware
    /// (isolates load balance from dependence awareness).
    RoundRobin,
    /// Dependence-aware chaining with occupancy-balanced FIFO acquisition
    /// (trades bypass locality for issue bandwidth).
    LoadBalanced,
}

/// The issue structure being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// One flexible window shared by all clusters. With more than one
    /// cluster this is the Section 5.6.1 organization: instructions pick a
    /// cluster at *issue* time (execution-driven steering).
    CentralWindow {
        /// Total window entries.
        size: usize,
    },
    /// Per-cluster flexible windows filled by dispatch-driven steering
    /// (Section 5.6.2). The steering heuristic treats each window as
    /// `fifos_per_cluster` conceptual FIFOs of `fifo_depth` slots, but
    /// issue may select any waiting instruction.
    SteeredWindows {
        /// Conceptual FIFOs per cluster (the Section 5.6.2 evaluation
        /// uses 8).
        fifos_per_cluster: usize,
        /// Slots per conceptual FIFO (the paper uses 4, giving 32-entry
        /// windows).
        fifo_depth: usize,
    },
    /// Per-cluster real FIFOs: the dependence-based microarchitecture
    /// (Section 5). Only FIFO heads are eligible for issue.
    Fifos {
        /// FIFOs per cluster.
        fifos_per_cluster: usize,
        /// Entries per FIFO.
        depth: usize,
    },
}

impl SchedulerKind {
    /// Total scheduler capacity per cluster.
    pub fn capacity_per_cluster(&self, clusters: usize) -> usize {
        match *self {
            SchedulerKind::CentralWindow { size } => size / clusters,
            SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
                fifos_per_cluster * fifo_depth
            }
            SchedulerKind::Fifos { fifos_per_cluster, depth } => fifos_per_cluster * depth,
        }
    }
}

/// Which ready instruction the selection logic prefers (Section 4.3; the
/// paper cites Butler & Patt's finding that overall performance is largely
/// independent of this choice, and assumes position-based selection like
/// the HP PA-8000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionPolicy {
    /// Oldest ready instruction first (position-based with compaction).
    #[default]
    OldestFirst,
    /// Slot-position order without compaction (freed slots are reused, so
    /// position no longer tracks age).
    Position,
    /// Youngest first — a deliberately bad policy, for the ablation.
    YoungestFirst,
}

/// How operand values reach consumers (Section 4.5's discussion of
/// incomplete bypassing, after Ahuja et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BypassModel {
    /// Fully bypassed: a dependent may issue the cycle the result appears.
    #[default]
    Full,
    /// No bypass network: consumers wait until the result is readable from
    /// the register file (`regwrite_delay` extra cycles).
    None,
}

/// When loads may issue relative to older stores (Table 3: "loads may
/// execute when all prior store addresses are known").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemDisambiguation {
    /// Loads wait until every older store has computed its address (the
    /// paper's rule).
    #[default]
    AddressesKnown,
    /// Conservative: loads wait until every older store has *completed*.
    AllStoresComplete,
    /// Oracle: loads wait only for older stores to the same word (perfect
    /// disambiguation).
    Oracle,
}

/// Functional-unit latency model (Table 3 uses uniform single-cycle
/// units; `Weighted` is the realistic-latency ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyModel {
    /// Every operation executes in one cycle (the paper's Table 3).
    #[default]
    Uniform,
    /// Multiply takes 3 cycles, divide/remainder 12, everything else 1
    /// (fully pipelined units).
    Weighted,
}

/// Branch predictor configuration (McFarling gshare, as in Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpredConfig {
    /// Number of 2-bit counters (Table 3: 4K).
    pub counters: usize,
    /// Global history bits (Table 3: 12).
    pub history_bits: u32,
    /// Oracle mode: every conditional branch predicted correctly (an
    /// ablation bound, not a Table 3 configuration).
    pub perfect: bool,
}

impl Default for BpredConfig {
    fn default() -> BpredConfig {
        BpredConfig { counters: 4096, history_bits: 12, perfect: false }
    }
}

impl BpredConfig {
    /// Validates the predictor geometry.
    ///
    /// The history register is a `u32`, so masks are computable only for
    /// up to 31 history bits (`1u32 << 32` overflows); the counter table
    /// is indexed by masking, so its size must be a non-zero power of two.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.counters == 0 || !self.counters.is_power_of_two() {
            return Err(format!(
                "branch predictor needs a non-zero power-of-two counter table, got {}",
                self.counters
            ));
        }
        if self.history_bits > 31 {
            return Err(format!(
                "branch predictor history is limited to 31 bits, got {}",
                self.history_bits
            ));
        }
        Ok(())
    }
}

/// Data cache configuration (Table 3: 32 KB, 2-way, 32 B lines, 1-cycle
/// hit, 6-cycle miss, 4 ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DcacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Extra cycles a load pays on a miss.
    pub miss_penalty: u64,
    /// Load/store ports per cycle.
    pub ports: usize,
}

impl Default for DcacheConfig {
    fn default() -> DcacheConfig {
        DcacheConfig { bytes: 32 * 1024, ways: 2, line_bytes: 32, miss_penalty: 6, ports: 4 }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Instructions fetched per cycle ("any 8 instructions").
    pub fetch_width: usize,
    /// Maximum instructions issued per cycle, summed over clusters.
    pub issue_width: usize,
    /// Instructions retired per cycle (Table 3: 16).
    pub retire_width: usize,
    /// Maximum in-flight instructions (Table 3: 128).
    pub max_inflight: usize,
    /// Physical registers (Table 3: 120 integer).
    pub physical_regs: usize,
    /// Number of execution clusters.
    pub clusters: usize,
    /// Extra cycles an operand takes to cross clusters (Section 5.5
    /// evaluates 1, i.e. 2-cycle inter-cluster vs 1-cycle local bypass).
    pub intercluster_extra: u64,
    /// Cycles after a result is produced before it is readable from the
    /// register file copies in *all* clusters (bypass-free path).
    pub regwrite_delay: u64,
    /// Front-end depth in cycles between fetch and earliest dispatch
    /// (decode + rename).
    pub frontend_depth: u64,
    /// The issue structure.
    pub scheduler: SchedulerKind,
    /// Dispatch steering policy (ignored by `CentralWindow`).
    pub steering: SteeringPolicy,
    /// Selection priority among ready instructions.
    pub selection: SelectionPolicy,
    /// Operand delivery model.
    pub bypass_model: BypassModel,
    /// Model wakeup+select pipelined over two stages: dependent
    /// instructions can no longer issue in consecutive cycles (the
    /// Section 4.5 / Figure 10 atomicity argument, quantified).
    pub pipelined_wakeup_select: bool,
    /// Execution latency model.
    pub latency: LatencyModel,
    /// Load/store ordering rule.
    pub mem_disambiguation: MemDisambiguation,
    /// Split store issue: a store may issue once its *address* register is
    /// ready (data arriving later), instead of waiting for both operands
    /// as SimpleScalar — and therefore the paper — does. Off by default
    /// for fidelity; an ablation in `extensions`.
    pub split_store_issue: bool,
    /// Realistic fetch: stop fetching past a taken control transfer in
    /// the same cycle. Table 3's "any 8 instructions" fetch (the default,
    /// false) has no such break.
    pub fetch_breaks_on_taken: bool,
    /// Model wrong-path fetch after a misprediction: synthetic
    /// instructions (reading live registers, writing nothing) pollute the
    /// front end, scheduler, and functional units until the branch
    /// resolves, then are squashed. Pure trace-driven stall models (the
    /// default, and the paper's) underestimate this window pollution.
    pub model_wrong_path: bool,
    /// Run the per-cycle invariant checker alongside the simulation:
    /// issue-width/FU caps, operands-ready-at-issue, oldest-ready-first
    /// selection, FIFO head-only issue, store-forwarding consistency,
    /// occupancy bounds, and monotone commit order are re-verified from
    /// first principles every cycle, and any violation aborts the run with
    /// cycle/sequence context instead of producing garbage statistics.
    /// Never perturbs timing or statistics; costs simulation speed, so it
    /// defaults to off and is switched on by the test suites.
    pub check: bool,
    /// Run the stall-attribution accountant: charge every unused issue
    /// slot each cycle to one [`StallCause`], filling
    /// [`SimStats::stall_breakdown`] so `sum(causes) + issued ==
    /// issue_width × cycles` exactly. Observation only — never perturbs
    /// timing or the statistics fingerprint; costs a little simulation
    /// speed, so it defaults to off and is switched on by `cesim
    /// --metrics`, the `stallreport` sweep, and the reconciliation tests.
    ///
    /// [`StallCause`]: crate::attribution::StallCause
    /// [`SimStats::stall_breakdown`]: crate::stats::SimStats::stall_breakdown
    pub attribution: bool,
    /// Inject one transient scheduler fault (see [`FaultSpec`]) — the
    /// deliberate-sabotage gate the fault-injection campaign uses to
    /// prove the invariant checker catches what it claims to catch.
    /// `None` (the default everywhere) leaves the simulator
    /// bit-identical to a build without injection support.
    ///
    /// [`FaultSpec`]: crate::fault::FaultSpec
    pub fault: Option<crate::fault::FaultSpec>,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// Data cache.
    pub dcache: DcacheConfig,
}

impl SimConfig {
    /// Functional units per cluster (symmetric units, evenly split).
    pub fn fus_per_cluster(&self) -> usize {
        self.issue_width / self.clusters
    }

    /// Execution latency for an opcode (loads add their cache access on
    /// top of this; see the pipeline).
    pub fn op_latency(&self, op: ce_isa::Opcode) -> u64 {
        match self.latency {
            LatencyModel::Uniform => 1,
            LatencyModel::Weighted => match op {
                ce_isa::Opcode::Mul => 3,
                ce_isa::Opcode::Div | ce_isa::Opcode::Rem => 12,
                _ => 1,
            },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0
            || self.issue_width == 0
            || self.retire_width == 0
            || self.max_inflight == 0
            || self.physical_regs <= ce_isa::Reg::COUNT
            || self.clusters == 0
        {
            return Err("widths, in-flight limit, and cluster count must be positive; \
                        physical registers must exceed the 32 architectural registers"
                .into());
        }
        if self.issue_width > 16 {
            // The per-cycle issue histogram is fixed at 17 buckets (0..=16
            // issues); a wider machine would silently fold every wide cycle
            // into the top bucket, so reject it up front.
            return Err(format!(
                "issue width is limited to 16 (the issue histogram's top bucket), got {}",
                self.issue_width
            ));
        }
        if !self.issue_width.is_multiple_of(self.clusters) {
            return Err(format!(
                "{} clusters must evenly divide issue width {}",
                self.clusters, self.issue_width
            ));
        }
        if let SchedulerKind::CentralWindow { size } = self.scheduler {
            if size == 0 || size % self.clusters != 0 {
                return Err("central window must be positive and divisible by clusters".into());
            }
        }
        if self.scheduler.capacity_per_cluster(self.clusters) == 0 {
            return Err("scheduler capacity must be positive".into());
        }
        // The FIFO pool tracks occupancy in a u128 bitmap, so FIFO-based
        // schedulers are bounded at 128 queues machine-wide. Catching it
        // here keeps `FifoPool::new`'s panic unreachable from a
        // validated config.
        if let SchedulerKind::SteeredWindows { fifos_per_cluster, .. }
        | SchedulerKind::Fifos { fifos_per_cluster, .. } = self.scheduler
        {
            match fifos_per_cluster.checked_mul(self.clusters) {
                Some(total) if total <= 128 => {}
                _ => {
                    return Err(format!(
                        "{} FIFOs per cluster x {} clusters exceeds the supported \
                         maximum of 128 issue FIFOs",
                        fifos_per_cluster, self.clusters
                    ));
                }
            }
        }
        self.bpred.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine;

    #[test]
    fn defaults_match_table3() {
        let cfg = machine::baseline_8way();
        assert_eq!(cfg.fetch_width, 8);
        assert_eq!(cfg.issue_width, 8);
        assert_eq!(cfg.retire_width, 16);
        assert_eq!(cfg.max_inflight, 128);
        assert_eq!(cfg.physical_regs, 120);
        assert_eq!(cfg.bpred.counters, 4096);
        assert_eq!(cfg.bpred.history_bits, 12);
        assert_eq!(cfg.dcache.bytes, 32 * 1024);
        assert_eq!(cfg.dcache.ports, 4);
        assert_eq!(cfg.dcache.miss_penalty, 6);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn capacity_per_cluster() {
        assert_eq!(SchedulerKind::CentralWindow { size: 64 }.capacity_per_cluster(2), 32);
        assert_eq!(
            SchedulerKind::SteeredWindows { fifos_per_cluster: 8, fifo_depth: 4 }
                .capacity_per_cluster(2),
            32
        );
        assert_eq!(
            SchedulerKind::Fifos { fifos_per_cluster: 8, depth: 8 }.capacity_per_cluster(1),
            64
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = machine::baseline_8way();
        cfg.clusters = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = machine::baseline_8way();
        cfg.physical_regs = 32;
        assert!(cfg.validate().is_err());

        let mut cfg = machine::baseline_8way();
        cfg.scheduler = SchedulerKind::Fifos { fifos_per_cluster: 0, depth: 8 };
        assert!(cfg.validate().is_err());
    }

    /// Regression test: `history_bits >= 32` used to reach `Gshare::new`
    /// and overflow the `1u32 << history_bits` mask computation in debug
    /// builds; it must now be rejected up front with a descriptive error.
    #[test]
    fn validation_rejects_bad_bpred_geometry() {
        let mut cfg = machine::baseline_8way();
        cfg.bpred.history_bits = 32;
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("history"), "{msg}");

        let mut cfg = machine::baseline_8way();
        cfg.bpred.counters = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = machine::baseline_8way();
        cfg.bpred.counters = 1000;
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("power-of-two"), "{msg}");

        let mut cfg = machine::baseline_8way();
        cfg.bpred.history_bits = 31;
        assert!(cfg.validate().is_ok(), "31 history bits are representable");
    }

    /// Regression test: `issue_width > 16` used to sail through validation
    /// and silently clamp into `issue_histogram`'s top bucket
    /// (`issued.min(16)`), corrupting the histogram mass invariant the
    /// checker relies on. It must now be rejected up front.
    #[test]
    fn validation_rejects_issue_width_beyond_histogram() {
        let mut cfg = machine::baseline_8way();
        cfg.issue_width = 17;
        cfg.clusters = 1;
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("issue width"), "{msg}");

        let mut cfg = machine::baseline_8way();
        cfg.issue_width = 16;
        cfg.clusters = 1;
        assert!(cfg.validate().is_ok(), "the full histogram range stays usable");
    }

    #[test]
    fn config_error_displays_the_message() {
        let e = ConfigError("three clusters".into());
        assert_eq!(e.to_string(), "invalid simulator configuration: three clusters");
    }
}
