//! A deliberately naive reference implementation of the timing model —
//! the differential-testing oracle for [`Simulator`](crate::Simulator).
//!
//! The optimized pipeline earns its speed from redundant data structures:
//! a completion event heap instead of ROB scans, a dense `HotEntry` ring
//! instead of ROB reads on the wakeup path, a `StoreTracker` instead of
//! window scans for memory ordering, a placement ring, bitset window
//! occupancy, an intrusive age list, and a k-way FIFO merge. Every one of
//! those is a place where the model can silently diverge from the
//! architecture it claims to implement.
//!
//! This module implements the *same architectural contract* — the same
//! [`SimConfig`] in, the same [`SimStats`] fingerprint out, for all five
//! Figure 17 organizations — using none of those structures:
//!
//! * the ROB is a plain `Vec` committed with `remove(0)` and searched
//!   linearly;
//! * the complete phase is a full linear scan for `finish_at == cycle`
//!   (no event heap);
//! * issue candidates are collected into a fresh `Vec` every cycle and
//!   explicitly sorted for oldest-first selection (no age list, no merge);
//! * memory-ordering and forwarding predicates scan the ROB's stores
//!   directly (no `StoreTracker`);
//! * operand fields are read from the ROB entry itself (no hot ring).
//!
//! What it deliberately *shares* with the optimized simulator is the
//! stateful architectural machinery whose decisions are part of the
//! contract, not an optimization: the [`Gshare`] predictor, the
//! [`Dcache`], the [`RenameTable`], and the ce-core [`FifoPool`] +
//! steering heuristics (the Section 5.1 `SRC_FIFO` table, the free-list
//! rotation, the seeded random steerer). Reimplementing those would test
//! nothing — their observable behaviour *is* the specification.
//!
//! The differential harness (`tests/differential.rs`, `ce-bench`'s
//! `diffcheck`) asserts `Simulator::run(...).fingerprint() ==
//! OracleSimulator::run(...).fingerprint()` across organizations,
//! kernels, and randomized synthetic traces.

use crate::bpred::Gshare;
use crate::config::{ConfigError, SimConfig};
use crate::dcache::{Access, Dcache};
use crate::rename::{Preg, RenameTable};
use crate::stats::SimStats;
use ce_core::fifos::{FifoPool, PoolConfig};
use ce_core::steering::{DependenceSteerer, RandomSteerer, SteerOutcome};
use ce_core::steering_variants::{LoadBalancedSteerer, RoundRobinSteerer};
use ce_core::{FifoId, InstId};
use ce_isa::OperationKind;
use ce_workloads::{DynInst, Trace};
use std::collections::VecDeque;

/// State of one physical register's value (mirrors the pipeline's).
#[derive(Debug, Clone, Copy)]
struct PregInfo {
    ready: u64,
    cluster: Option<usize>,
}

/// One in-flight instruction — the oracle keeps everything in this one
/// record and re-reads it wherever the optimized pipeline consults a
/// mirror structure.
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    d: DynInst,
    srcs: [Option<Preg>; 2],
    dest: Option<Preg>,
    prev_dest: Option<Preg>,
    cluster: Option<usize>,
    issued_at: Option<u64>,
    finish_at: Option<u64>,
    done: bool,
    mispredicted: bool,
    used_intercluster: bool,
    wrong_path: bool,
}

/// An issue candidate (same meaning as the scheduler's).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    id: InstId,
    cluster: Option<usize>,
}

/// An instruction waiting in the front end.
#[derive(Debug, Clone, Copy)]
struct FrontEndSlot {
    payload: SlotPayload,
    ready_at: u64,
    mispredicted: bool,
}

#[derive(Debug, Clone, Copy)]
enum SlotPayload {
    Real(usize),
    WrongPath(DynInst),
}

impl SlotPayload {
    fn is_wrong_path(&self) -> bool {
        matches!(self, SlotPayload::WrongPath(_))
    }
}

/// The naive issue structure: a linearly scanned slot array for central
/// windows, or the shared [`FifoPool`] + steering heuristics with a plain
/// association list for placement.
// One window exists per simulation, so the size gap between the two
// variants (the steering tables live in `Pooled`) costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum NaiveWindow {
    Central {
        slots: Vec<Option<InstId>>,
    },
    Pooled {
        pool: FifoPool,
        head_only: bool,
        /// Resident instruction → FIFO index, searched linearly.
        placement: Vec<(InstId, usize)>,
        dependence: DependenceSteerer,
        random: Option<RandomSteerer>,
        round_robin: Option<RoundRobinSteerer>,
        load_balanced: Option<LoadBalancedSteerer>,
    },
}

impl NaiveWindow {
    fn new(cfg: &SimConfig) -> NaiveWindow {
        use crate::config::SchedulerKind;
        match cfg.scheduler {
            SchedulerKind::CentralWindow { size } => {
                NaiveWindow::Central { slots: vec![None; size] }
            }
            SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
                NaiveWindow::pooled(cfg, fifos_per_cluster, fifo_depth, false)
            }
            SchedulerKind::Fifos { fifos_per_cluster, depth } => {
                NaiveWindow::pooled(cfg, fifos_per_cluster, depth, true)
            }
        }
        .seeded(cfg.steering)
    }

    fn pooled(cfg: &SimConfig, fifos_per_cluster: usize, depth: usize, head_only: bool) -> NaiveWindow {
        NaiveWindow::Pooled {
            pool: FifoPool::new(PoolConfig {
                fifos: fifos_per_cluster * cfg.clusters,
                depth,
                clusters: cfg.clusters,
            }),
            head_only,
            placement: Vec::new(),
            dependence: DependenceSteerer::new(),
            random: None,
            round_robin: None,
            load_balanced: None,
        }
    }

    fn seeded(mut self, steering: crate::config::SteeringPolicy) -> NaiveWindow {
        use crate::config::SteeringPolicy;
        if let NaiveWindow::Pooled { random, round_robin, load_balanced, .. } = &mut self {
            match steering {
                SteeringPolicy::Random { seed } => *random = Some(RandomSteerer::new(seed)),
                SteeringPolicy::RoundRobin => *round_robin = Some(RoundRobinSteerer::new()),
                SteeringPolicy::LoadBalanced => *load_balanced = Some(LoadBalancedSteerer::new()),
                SteeringPolicy::Dependence => {}
            }
        }
        self
    }

    /// Inserts at dispatch; same outcome contract as the scheduler's
    /// `try_insert` (central: lowest free slot; pooled: the steering
    /// heuristic's choice).
    #[allow(clippy::result_unit_err)]
    fn try_insert(&mut self, id: InstId, inst: &ce_isa::Instruction) -> Result<Option<usize>, ()> {
        match self {
            NaiveWindow::Central { slots } => {
                let slot = slots.iter().position(Option::is_none).ok_or(())?;
                slots[slot] = Some(id);
                Ok(None)
            }
            NaiveWindow::Pooled {
                pool,
                placement,
                dependence,
                random,
                round_robin,
                load_balanced,
                ..
            } => {
                let outcome = if let Some(r) = random {
                    r.steer(id, pool)
                } else if let Some(r) = round_robin {
                    r.steer(id, pool)
                } else if let Some(l) = load_balanced {
                    l.steer(id, inst, pool)
                } else {
                    dependence.steer(id, inst, pool)
                };
                match outcome {
                    SteerOutcome::Fifo(fifo) => {
                        placement.push((id, fifo.0));
                        Ok(Some(pool.cluster_of(fifo)))
                    }
                    SteerOutcome::Stall => Err(()),
                }
            }
        }
    }

    /// This cycle's issue candidates, freshly collected: central windows
    /// in slot order, head-only pools as the FIFO heads, flexible pools as
    /// every buffered entry in FIFO-major order.
    fn candidates(&self) -> Vec<Candidate> {
        match self {
            NaiveWindow::Central { slots } => slots
                .iter()
                .flatten()
                .map(|&id| Candidate { id, cluster: None })
                .collect(),
            NaiveWindow::Pooled { pool, head_only: true, .. } => (0..pool.config().fifos)
                .filter_map(|f| {
                    let fifo = FifoId(f);
                    pool.head(fifo).map(|id| Candidate { id, cluster: Some(pool.cluster_of(fifo)) })
                })
                .collect(),
            NaiveWindow::Pooled { pool, head_only: false, .. } => pool
                .entries()
                .map(|(f, _, id)| Candidate { id, cluster: Some(pool.cluster_of(f)) })
                .collect(),
        }
    }

    fn fifo_of(placement: &mut Vec<(InstId, usize)>, id: InstId) -> FifoId {
        let at = placement
            .iter()
            .position(|&(i, _)| i == id)
            .expect("resident instruction has a placement");
        FifoId(placement.swap_remove(at).1)
    }

    /// Removes an issuing instruction (head-only pools pop their head).
    fn remove_issued(&mut self, id: InstId) {
        match self {
            NaiveWindow::Central { slots } => {
                let slot = slots
                    .iter()
                    .position(|&s| s == Some(id))
                    .expect("issued instruction is in the window");
                slots[slot] = None;
            }
            NaiveWindow::Pooled { pool, head_only, placement, .. } => {
                let fifo = NaiveWindow::fifo_of(placement, id);
                if *head_only {
                    assert_eq!(pool.pop_head(fifo), Some(id), "head-only issue pops the head");
                } else {
                    assert!(pool.remove(fifo, id), "instruction is in its FIFO");
                }
            }
        }
    }

    /// Removes a squashed, never-issued instruction from any position.
    fn remove_squashed(&mut self, id: InstId) {
        match self {
            NaiveWindow::Central { .. } => self.remove_issued(id),
            NaiveWindow::Pooled { pool, placement, .. } => {
                let fifo = NaiveWindow::fifo_of(placement, id);
                assert!(pool.remove(fifo, id), "squashed instruction is in its FIFO");
            }
        }
    }

    /// Instructions currently waiting, recounted from scratch.
    fn occupancy(&self) -> usize {
        match self {
            NaiveWindow::Central { slots } => slots.iter().flatten().count(),
            NaiveWindow::Pooled { pool, .. } => pool.entries().count(),
        }
    }
}

/// The reference simulator. Same constructor/run surface as
/// [`Simulator`](crate::Simulator), several times slower by design.
#[derive(Debug)]
pub struct OracleSimulator {
    cfg: SimConfig,
    bpred: Gshare,
    dcache: Dcache,
    rename: RenameTable,
    window: NaiveWindow,
    pregs: Vec<PregInfo>,
    stats: SimStats,
}

impl OracleSimulator {
    /// Creates a reference simulator, rejecting the same configurations
    /// [`Simulator::try_new`](crate::Simulator::try_new) rejects.
    ///
    /// # Errors
    ///
    /// Returns the first constraint [`SimConfig::validate`] rejects.
    pub fn try_new(cfg: SimConfig) -> Result<OracleSimulator, ConfigError> {
        cfg.validate().map_err(ConfigError)?;
        Ok(OracleSimulator {
            bpred: Gshare::new(cfg.bpred),
            dcache: Dcache::new(cfg.dcache),
            rename: RenameTable::new(cfg.physical_regs),
            window: NaiveWindow::new(&cfg),
            pregs: vec![PregInfo { ready: 0, cluster: None }; cfg.physical_regs],
            stats: SimStats::default(),
            cfg,
        })
    }

    /// Creates a reference simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> OracleSimulator {
        match OracleSimulator::try_new(cfg) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// First cycle the value in `preg` can feed an FU in `cluster` — the
    /// same arithmetic as the optimized pipeline's `avail_in`.
    fn avail_in(&self, preg: Preg, cluster: usize) -> u64 {
        let info = self.pregs[preg as usize];
        if info.ready == u64::MAX {
            return u64::MAX;
        }
        let Some(producer) = info.cluster else {
            return info.ready;
        };
        let cross_penalty = if producer != cluster { self.cfg.intercluster_extra } else { 0 };
        let mut avail = match self.cfg.bypass_model {
            crate::config::BypassModel::Full => info.ready + cross_penalty,
            crate::config::BypassModel::None => {
                info.ready + self.cfg.regwrite_delay + cross_penalty
            }
        };
        if self.cfg.pipelined_wakeup_select {
            avail += 1;
        }
        avail
    }

    fn bypass_source(&self, preg: Preg, consumer_cluster: usize, at: u64) -> Option<usize> {
        if self.cfg.bypass_model == crate::config::BypassModel::None {
            return None;
        }
        let info = self.pregs[preg as usize];
        let producer = info.cluster?;
        let regfile_at = info.ready
            + self.cfg.regwrite_delay
            + if producer != consumer_cluster { self.cfg.intercluster_extra } else { 0 };
        (at < regfile_at).then_some(producer)
    }

    fn pick_cluster(
        &self,
        srcs: &[Option<Preg>],
        cycle: u64,
        fu_used: &[usize],
        fus_per_cluster: usize,
    ) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (c, used) in fu_used.iter().enumerate().take(self.cfg.clusters) {
            if *used >= fus_per_cluster {
                continue;
            }
            let avail =
                srcs.iter().flatten().map(|&p| self.avail_in(p, c)).max().unwrap_or(0);
            if avail > cycle {
                continue;
            }
            if best.map(|(a, _)| avail < a).unwrap_or(true) {
                best = Some((avail, c));
            }
        }
        best.map(|(_, c)| c)
    }

    /// The memory-ordering predicate, as a full scan of the ROB's older
    /// stores (the optimized path consults the `StoreTracker` mirror).
    fn load_may_issue(rob: &[Entry], load_seq: u64, load_word: Option<u32>, cfg: &SimConfig) -> bool {
        use crate::config::MemDisambiguation as M;
        rob.iter()
            .filter(|e| e.seq < load_seq && e.d.inst.opcode.kind() == OperationKind::Store)
            .all(|s| match cfg.mem_disambiguation {
                M::AddressesKnown => s.issued_at.is_some(),
                M::AllStoresComplete => s.done,
                M::Oracle => s.d.mem_addr.map(|a| a & !3) != load_word || s.issued_at.is_some(),
            })
    }

    /// The youngest older store to the same word, by ROB scan.
    fn forwarding_store(rob: &[Entry], load_seq: u64, load_word: Option<u32>) -> Option<u64> {
        let addr = load_word?;
        rob.iter()
            .rev()
            .filter(|e| e.seq < load_seq)
            .find(|e| {
                e.d.inst.opcode.kind() == OperationKind::Store
                    && e.d.mem_addr.map(|a| a & !3) == Some(addr)
            })
            .map(|e| e.seq)
    }

    fn note_commit(&mut self, e: &Entry) {
        match e.d.inst.opcode.kind() {
            OperationKind::Branch => {
                self.stats.branches += 1;
                if e.mispredicted {
                    self.stats.mispredictions += 1;
                }
            }
            OperationKind::Load => self.stats.loads += 1,
            OperationKind::Store => self.stats.stores += 1,
            _ => {}
        }
        if e.used_intercluster {
            self.stats.intercluster_bypasses += 1;
        }
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks.
    pub fn run(mut self, trace: &Trace) -> SimStats {
        let insts = trace.as_slice();
        if insts.is_empty() {
            return self.stats;
        }

        // The ROB: a plain vector, committed from the front with the
        // full-shift `remove(0)` and searched linearly everywhere.
        let mut rob: Vec<Entry> = Vec::new();
        let mut frontq: VecDeque<FrontEndSlot> = VecDeque::new();
        let mut fetch_index = 0usize;
        let mut fetch_stalled_on: Option<u64> = None;
        let mut wrong_seq: u64 = 0;
        let mut wrong_pc: u32 = 0;
        let mut wrong_reg: u8 = 8;
        let mut recent_mem_addr: u32 = ce_isa::DATA_BASE;
        let mut wrong_mem_offset: u32 = 0;
        let mut cycle: u64 = 0;
        let mut committed = 0usize;
        let deadlock_limit = 1_000 + 60 * insts.len() as u64;

        while committed < insts.len() {
            cycle += 1;
            assert!(
                cycle < deadlock_limit,
                "oracle deadlock at cycle {cycle}: committed {committed}/{}",
                insts.len()
            );

            // ---- commit ------------------------------------------------
            for _ in 0..self.cfg.retire_width {
                match rob.first() {
                    Some(e) if e.done => {
                        let e = rob.remove(0);
                        if let Some(prev) = e.prev_dest {
                            self.rename.release(prev);
                        }
                        self.note_commit(&e);
                        committed += 1;
                    }
                    _ => break,
                }
            }

            // ---- complete: full linear scan, no event heap --------------
            let mut resolved_branch: Option<u64> = None;
            for e in rob.iter_mut() {
                if !e.done && e.finish_at == Some(cycle) {
                    e.done = true;
                    if e.mispredicted && fetch_stalled_on == Some(e.seq) {
                        fetch_stalled_on = None;
                        resolved_branch = Some(e.seq);
                    }
                }
            }
            if let Some(branch_seq) = resolved_branch {
                while rob.last().map(|e| e.seq > branch_seq).unwrap_or(false) {
                    let e = rob.pop().expect("checked");
                    if e.issued_at.is_none() {
                        self.window.remove_squashed(InstId(e.seq));
                    }
                }
                frontq.retain(|slot| !slot.payload.is_wrong_path());
            }

            // ---- wakeup + select + execute ------------------------------
            self.issue_cycle(cycle, &mut rob);

            // ---- dispatch (rename + steer) ------------------------------
            self.dispatch_cycle(cycle, insts, &mut frontq, &mut rob);

            // ---- fetch ---------------------------------------------------
            let cap = 2 * self.cfg.fetch_width;
            if fetch_stalled_on.is_none() {
                for _ in 0..self.cfg.fetch_width {
                    if fetch_index >= insts.len() || frontq.len() >= cap {
                        break;
                    }
                    let d = &insts[fetch_index];
                    if let Some(addr) = d.mem_addr {
                        recent_mem_addr = addr;
                    }
                    let mut mispredicted = false;
                    if d.is_conditional_branch() {
                        let predicted = self.bpred.predict_and_update(d.pc, d.taken);
                        mispredicted = !self.cfg.bpred.perfect && predicted != d.taken;
                    }
                    let taken_cti = d.is_control() && d.taken;
                    frontq.push_back(FrontEndSlot {
                        payload: SlotPayload::Real(fetch_index),
                        ready_at: cycle + self.cfg.frontend_depth,
                        mispredicted,
                    });
                    fetch_index += 1;
                    if self.cfg.fetch_breaks_on_taken && taken_cti && !mispredicted {
                        break;
                    }
                    if mispredicted {
                        fetch_stalled_on = Some(d.seq);
                        wrong_seq = d.seq + 1;
                        wrong_pc = d.pc.wrapping_add(8);
                        break;
                    }
                }
            } else if self.cfg.model_wrong_path {
                for _ in 0..self.cfg.fetch_width {
                    if frontq.len() >= cap {
                        break;
                    }
                    let a = ce_isa::Reg::new(wrong_reg);
                    let b = ce_isa::Reg::new(8 + (wrong_reg + 5) % 16);
                    wrong_reg = 8 + (wrong_reg + 1) % 16;
                    let (inst, mem_addr) = if wrong_seq.is_multiple_of(3) {
                        wrong_mem_offset = wrong_mem_offset
                            .wrapping_add(self.cfg.dcache.line_bytes as u32 * 2);
                        (
                            ce_isa::Instruction::mem(ce_isa::Opcode::Lw, ce_isa::Reg::ZERO, 0, a),
                            Some(recent_mem_addr.wrapping_add(wrong_mem_offset)),
                        )
                    } else {
                        (
                            ce_isa::Instruction::rrr(
                                ce_isa::Opcode::Addu,
                                ce_isa::Reg::ZERO,
                                a,
                                b,
                            ),
                            None,
                        )
                    };
                    let d = DynInst {
                        seq: wrong_seq,
                        pc: wrong_pc,
                        inst,
                        next_pc: wrong_pc.wrapping_add(4),
                        taken: false,
                        mem_addr,
                    };
                    wrong_seq += 1;
                    wrong_pc = wrong_pc.wrapping_add(4);
                    self.stats.wrong_path_fetched += 1;
                    frontq.push_back(FrontEndSlot {
                        payload: SlotPayload::WrongPath(d),
                        ready_at: cycle + self.cfg.frontend_depth,
                        mispredicted: false,
                    });
                }
            }

            self.stats.occupancy_sum += self.window.occupancy() as u64;
        }

        self.stats.cycles = cycle;
        self.stats.committed = committed as u64;
        self.stats.dcache_accesses = self.dcache.hits() + self.dcache.misses();
        self.stats.dcache_misses = self.dcache.misses();
        self.stats
    }

    fn issue_cycle(&mut self, cycle: u64, rob: &mut [Entry]) {
        // A fresh candidate vector every cycle, explicitly sorted when the
        // policy wants age order — the per-cycle sort the optimized
        // scheduler's age list and k-way merge exist to avoid.
        let mut candidates = self.window.candidates();
        match self.cfg.selection {
            crate::config::SelectionPolicy::OldestFirst => {
                candidates.sort_by_key(|c| c.id);
            }
            crate::config::SelectionPolicy::Position => {}
            crate::config::SelectionPolicy::YoungestFirst => {
                candidates.sort_by_key(|c| std::cmp::Reverse(c.id));
            }
        }
        if candidates.is_empty() {
            self.stats.issue_histogram[0] += 1;
            return;
        }
        let fus_per_cluster = self.cfg.fus_per_cluster();
        let mut fu_used = vec![0usize; self.cfg.clusters];
        let mut ports_used = 0usize;
        let mut issued = 0usize;

        for cand in candidates {
            if issued >= self.cfg.issue_width {
                break;
            }
            // Linear ROB search — where the optimized path indexes a ring.
            let idx = rob
                .iter()
                .position(|e| e.seq == cand.id.0)
                .expect("candidate is in the ROB");
            let kind = rob[idx].d.inst.opcode.kind();
            let srcs = rob[idx].srcs;
            let mem_addr = rob[idx].d.mem_addr;

            let is_store = kind == OperationKind::Store;
            let split_store = is_store && self.cfg.split_store_issue;
            let required_srcs: &[Option<Preg>] =
                if split_store { &srcs[..1] } else { &srcs[..] };
            if split_store {
                let data_unknown = srcs[1]
                    .map(|preg| self.pregs[preg as usize].ready == u64::MAX)
                    .unwrap_or(false);
                if data_unknown {
                    continue;
                }
            }

            let cluster = match cand.cluster {
                Some(c) => {
                    if fu_used[c] >= fus_per_cluster {
                        continue;
                    }
                    let ready =
                        required_srcs.iter().flatten().all(|&p| self.avail_in(p, c) <= cycle);
                    if !ready {
                        continue;
                    }
                    c
                }
                None => {
                    match self.pick_cluster(required_srcs, cycle, &fu_used, fus_per_cluster) {
                        Some(c) => c,
                        None => continue,
                    }
                }
            };

            let is_mem = matches!(kind, OperationKind::Load | OperationKind::Store);
            if is_mem && ports_used >= self.cfg.dcache.ports {
                continue;
            }
            if kind == OperationKind::Load {
                let load_word = mem_addr.map(|a| a & !3);
                if !OracleSimulator::load_may_issue(rob, cand.id.0, load_word, &self.cfg) {
                    continue;
                }
            }

            // The candidate issues; replicate the optimized mutation order
            // (D-cache access and forwarding stat before the ROB update).
            let latency = match kind {
                OperationKind::Load => {
                    let load_word = mem_addr.map(|a| a & !3);
                    if OracleSimulator::forwarding_store(rob, cand.id.0, load_word).is_some() {
                        self.stats.forwarded_loads += 1;
                        2
                    } else {
                        let addr = mem_addr.expect("loads carry addresses");
                        match self.dcache.access(addr, false) {
                            Access::Hit => 2,
                            Access::Miss { .. } => 2 + self.cfg.dcache.miss_penalty,
                        }
                    }
                }
                OperationKind::Store => {
                    let addr = mem_addr.expect("stores carry addresses");
                    let _ = self.dcache.access(addr, true);
                    let data_wait = srcs
                        .get(1)
                        .copied()
                        .flatten()
                        .map(|p| self.avail_in(p, cluster).saturating_sub(cycle))
                        .unwrap_or(0);
                    1 + data_wait
                }
                _ => self.cfg.op_latency(rob[idx].d.inst.opcode),
            };

            let mut used_intercluster = false;
            for &src in srcs.iter().flatten() {
                if let Some(producer) = self.bypass_source(src, cluster, cycle) {
                    if producer != cluster {
                        used_intercluster = true;
                    }
                }
            }
            let entry = &mut rob[idx];
            entry.used_intercluster = used_intercluster;
            entry.cluster = Some(cluster);
            entry.issued_at = Some(cycle);
            entry.finish_at = Some(cycle + latency);
            let entry_wrong_path = entry.wrong_path;
            if let Some(dest) = entry.dest {
                self.pregs[dest as usize] =
                    PregInfo { ready: cycle + latency, cluster: Some(cluster) };
            }

            if entry_wrong_path {
                self.stats.wrong_path_issued += 1;
            }
            self.stats.issued += 1;
            self.window.remove_issued(cand.id);
            fu_used[cluster] += 1;
            if is_mem {
                ports_used += 1;
            }
            issued += 1;
        }
        self.stats.issue_histogram[issued.min(16)] += 1;
    }

    fn dispatch_cycle(
        &mut self,
        cycle: u64,
        insts: &[DynInst],
        frontq: &mut VecDeque<FrontEndSlot>,
        rob: &mut Vec<Entry>,
    ) {
        let mut dispatched = 0usize;
        let mut had_candidate = false;
        while dispatched < self.cfg.fetch_width {
            let Some(&slot) = frontq.front() else { break };
            if slot.ready_at > cycle {
                break;
            }
            had_candidate = true;
            let wrong_path = slot.payload.is_wrong_path();
            let synthesized;
            let d = match slot.payload {
                SlotPayload::Real(index) => &insts[index],
                SlotPayload::WrongPath(d) => {
                    synthesized = d;
                    &synthesized
                }
            };

            if rob.len() >= self.cfg.max_inflight {
                self.stats.inflight_stalls += 1;
                break;
            }
            if d.inst.defs().is_some() && !self.rename.has_free() {
                self.stats.preg_stalls += 1;
                break;
            }
            let cluster = match self.window.try_insert(InstId(d.seq), &d.inst) {
                Ok(c) => c,
                Err(()) => {
                    self.stats.scheduler_stalls += 1;
                    break;
                }
            };

            let srcs = d.inst.uses().map(|u| u.map(|r| self.rename.lookup(r)));
            let (dest, prev_dest) = match d.inst.defs() {
                Some(r) => {
                    let (new, prev) = self.rename.rename_dest(r).expect("checked has_free");
                    self.pregs[new as usize] = PregInfo { ready: u64::MAX, cluster: None };
                    (Some(new), Some(prev))
                }
                None => (None, None),
            };

            rob.push(Entry {
                seq: d.seq,
                d: *d,
                srcs,
                dest,
                prev_dest,
                cluster,
                issued_at: None,
                finish_at: None,
                done: false,
                mispredicted: slot.mispredicted,
                used_intercluster: false,
                wrong_path,
            });
            frontq.pop_front();
            dispatched += 1;
        }
        if dispatched == 0 && had_candidate {
            self.stats.dispatch_stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{machine, Simulator};
    use ce_isa::asm::assemble;
    use ce_workloads::Emulator;

    fn trace_of(src: &str) -> Trace {
        let program = assemble(src).expect("assembles");
        Emulator::new(&program).run_to_completion(1_000_000).expect("halts")
    }

    /// A kernel mixing loads, stores, a data-dependent branch, and ALU
    /// chains — enough to exercise forwarding, memory ordering, steering,
    /// and mispredictions.
    fn mixed_kernel() -> Trace {
        trace_of(
            "
            li s0, 0x1000
            li s1, 40
            li s2, 7
        loop:
            sw s2, 0(s0)
            lw t0, 0(s0)
            addu t1, t0, s2
            mul t2, t1, t1
            andi t3, t2, 1
            beqz t3, skip
            addu s3, s3, t3
        skip:
            addiu s0, s0, 4
            addiu s1, s1, -1
            bnez s1, loop
            halt
        ",
        )
    }

    #[test]
    fn oracle_matches_optimized_on_all_figure17_machines() {
        let trace = mixed_kernel();
        for (name, mut cfg) in machine::figure17_machines() {
            let oracle = OracleSimulator::new(cfg).run(&trace);
            cfg.check = true; // checker on the optimized side only
            let optimized = Simulator::new(cfg).run(&trace);
            assert_eq!(
                optimized.fingerprint(),
                oracle.fingerprint(),
                "fingerprint divergence on {name}"
            );
        }
    }

    #[test]
    fn oracle_matches_with_wrong_path_modeling() {
        let trace = mixed_kernel();
        for (name, mut cfg) in machine::figure17_machines() {
            cfg.model_wrong_path = true;
            let oracle = OracleSimulator::new(cfg).run(&trace);
            cfg.check = true;
            let optimized = Simulator::new(cfg).run(&trace);
            assert_eq!(
                optimized.fingerprint(),
                oracle.fingerprint(),
                "wrong-path fingerprint divergence on {name}"
            );
        }
    }

    #[test]
    fn oracle_rejects_what_the_simulator_rejects() {
        let mut cfg = machine::baseline_8way();
        cfg.bpred.history_bits = 40;
        let a = Simulator::try_new(cfg).map(|_| ()).unwrap_err();
        let b = OracleSimulator::try_new(cfg).map(|_| ()).unwrap_err();
        assert_eq!(a, b, "identical validation surface");
    }
}
