//! Differential tests: the optimized [`Simulator`] against the deliberately
//! naive [`OracleSimulator`].
//!
//! The two implement the same architectural contract with disjoint data
//! structures (event heap / hot ring / store tracker / bitmasks vs. plain
//! `Vec` scans), so a *bit-identical* statistics fingerprint across many
//! workloads and configurations is strong evidence that neither the
//! optimizations nor the reference model drifted from the paper's
//! semantics. The invariant checker runs on the optimized side of every
//! comparison, so each case also re-verifies the per-cycle issue rules from
//! first principles.
//!
//! On a mismatch the failing trace is minimized with
//! [`ce_workloads::shrink::shrink_trace`] before being reported, so the
//! panic message carries a reproducer small enough to step through.

use ce_sim::{machine, MemDisambiguation, OracleSimulator, SelectionPolicy, SimConfig, Simulator};
use ce_workloads::synthetic::{generate, SyntheticConfig};
use ce_workloads::{shrink::shrink_trace, trace_cached, Benchmark, Trace};
use proptest::prelude::*;

/// Runs both simulators (checker enabled on the optimized one) and panics
/// with a shrunk reproducer if their fingerprints differ.
fn assert_agree(label: &str, cfg: SimConfig, trace: &Trace) {
    let mut checked = cfg;
    checked.check = true;
    let optimized = Simulator::new(checked).run(trace).fingerprint();
    let oracle = OracleSimulator::new(cfg).run(trace).fingerprint();
    if optimized == oracle {
        return;
    }
    // Minimize with the checker off, so a checker panic cannot mask the
    // divergence being reduced.
    let small = shrink_trace(trace, |t| {
        Simulator::new(cfg).run(t).fingerprint() != OracleSimulator::new(cfg).run(t).fingerprint()
    });
    panic!(
        "{label}: optimized and oracle simulators diverge\n\
         \x20 optimized: {optimized}\n\
         \x20 oracle:    {oracle}\n\
         minimal reproducer ({} instructions):\n{}",
        small.len(),
        ce_workloads::trace_io::format_trace(&small),
    );
}

/// The acceptance grid: every Figure 17 organization on every benchmark
/// kernel must match the oracle exactly.
#[test]
fn all_organizations_match_oracle_on_all_kernels() {
    for (name, cfg) in machine::figure17_machines() {
        for bench in Benchmark::all() {
            let trace = trace_cached(bench, 20_000).expect("kernel runs");
            assert_agree(&format!("{name} x {bench}"), cfg, &trace);
        }
    }
}

/// Synthetic-trace mixes chosen to stress distinct mechanisms: the default
/// SPEC-ish mix, a memory-heavy small-working-set mix (store-to-load
/// forwarding and cache misses), an unpredictable-branch mix (squash
/// paths), and a tight-dependence mix (serialized wakeup chains).
fn mix(sel: usize, seed: u64) -> SyntheticConfig {
    let base = match sel {
        0 => SyntheticConfig::default(),
        1 => SyntheticConfig {
            load_frac: 0.40,
            store_frac: 0.25,
            branch_frac: 0.05,
            working_set_words: 64,
            ..SyntheticConfig::default()
        },
        2 => SyntheticConfig {
            branch_frac: 0.30,
            predictability: 0.0,
            taken_prob: 0.5,
            ..SyntheticConfig::default()
        },
        _ => SyntheticConfig { dep_locality: 0.95, ..SyntheticConfig::default() },
    };
    SyntheticConfig { seed, ..base }
}

proptest! {
    /// Random synthetic traces across all five organizations.
    #[test]
    fn organizations_match_oracle_on_synthetic_traces(
        seed in 0u64..1_000_000,
        org_sel in 0usize..5,
        mix_sel in 0usize..4,
    ) {
        let (name, cfg) = machine::figure17_machines()[org_sel];
        let config = mix(mix_sel, seed);
        let trace = generate(&config, 3_000);
        assert_agree(&format!("{name} x synthetic(mix {mix_sel}, seed {seed})"), cfg, &trace);
    }

    /// Random synthetic traces across the non-default configuration knobs:
    /// split store issue, selection policies, disambiguation rules, bypass
    /// and latency models, pipelined wakeup/select, wrong-path modeling,
    /// fetch breaks, and the alternative steering policies.
    #[test]
    fn config_knobs_match_oracle_on_synthetic_traces(
        seed in 0u64..1_000_000,
        knob in 0usize..12,
    ) {
        use ce_sim::{BypassModel, LatencyModel, SteeringPolicy};
        let (label, cfg) = match knob {
            0 => ("baseline+split_store", SimConfig {
                split_store_issue: true, ..machine::baseline_8way() }),
            1 => ("fifos+split_store", SimConfig {
                split_store_issue: true, ..machine::dependence_8way() }),
            2 => ("baseline+position_select", SimConfig {
                selection: SelectionPolicy::Position, ..machine::baseline_8way() }),
            3 => ("baseline+youngest_first", SimConfig {
                selection: SelectionPolicy::YoungestFirst, ..machine::baseline_8way() }),
            4 => ("baseline+all_stores_complete", SimConfig {
                mem_disambiguation: MemDisambiguation::AllStoresComplete,
                ..machine::baseline_8way() }),
            5 => ("baseline+oracle_disambiguation", SimConfig {
                mem_disambiguation: MemDisambiguation::Oracle, ..machine::baseline_8way() }),
            6 => ("baseline+no_bypass", SimConfig {
                bypass_model: BypassModel::None, ..machine::baseline_8way() }),
            7 => ("baseline+pipelined_wakeup", SimConfig {
                pipelined_wakeup_select: true, ..machine::baseline_8way() }),
            8 => ("baseline+weighted_latency", SimConfig {
                latency: LatencyModel::Weighted, ..machine::baseline_8way() }),
            9 => ("clustered_fifos+wrong_path", SimConfig {
                model_wrong_path: true, ..machine::clustered_fifos_8way() }),
            10 => ("windows+round_robin+fetch_breaks", SimConfig {
                steering: SteeringPolicy::RoundRobin,
                fetch_breaks_on_taken: true,
                ..machine::clustered_windows_dispatch_8way() }),
            _ => ("clustered_fifos+load_balanced+perfect_bpred", {
                let mut c = machine::clustered_fifos_8way();
                c.steering = SteeringPolicy::LoadBalanced;
                c.bpred.perfect = true;
                c
            }),
        };
        let config = mix(seed as usize % 4, seed);
        let trace = generate(&config, 2_000);
        assert_agree(&format!("{label} (seed {seed})"), cfg, &trace);
    }
}
