//! Integration tests for the stall-attribution accountant.
//!
//! The load-bearing property is the reconciliation identity: every issue
//! slot of every cycle is either used or charged to exactly one cause,
//! so `sum(causes) + issued == issue_width × cycles` — exactly, not
//! approximately. The tests pin that identity on all five Figure 17
//! organizations over real kernels, and under randomized configurations
//! and synthetic traces; they also pin that attribution is
//! observation-only (fingerprints are bit-identical with it on or off)
//! and that each cause fires where — and only where — its mechanism
//! exists.

use ce_sim::{machine, SimConfig, Simulator, StallCause};
use ce_workloads::synthetic::{generate, SyntheticConfig};
use ce_workloads::{trace_cached, Benchmark, Trace};
use proptest::prelude::*;

/// Runs with attribution + the invariant checker on, panicking (via the
/// checker) if accounting breaks, and returns the stats.
fn run_attributed(label: &str, cfg: SimConfig, trace: &Trace) -> ce_sim::SimStats {
    let mut on = cfg;
    on.attribution = true;
    on.check = true;
    let stats = Simulator::new(on).run(trace);
    assert!(
        stats.stall_breakdown.reconciles(cfg.issue_width, stats.cycles, stats.issued),
        "{label}: {} charged + {} issued != {} x {}",
        stats.stall_breakdown.total(),
        stats.issued,
        cfg.issue_width,
        stats.cycles
    );
    stats
}

/// The acceptance grid: the identity holds exactly on every Figure 17
/// organization for every kernel, and turning the accountant on does not
/// change a single architectural statistic.
#[test]
fn reconciles_and_stays_invisible_on_all_organizations() {
    for (name, cfg) in machine::figure17_machines() {
        for bench in Benchmark::all() {
            let trace = trace_cached(bench, 20_000).expect("kernel runs");
            let label = format!("{name} x {bench}");
            let attributed = run_attributed(&label, cfg, &trace);
            let plain = Simulator::new(cfg).run(&trace);
            assert_eq!(
                attributed.fingerprint(),
                plain.fingerprint(),
                "{label}: attribution perturbed the simulation"
            );
            assert!(plain.stall_breakdown.is_empty(), "{label}: charged without opt-in");
        }
    }
}

/// Single-cluster machines have no inter-cluster bypass, so that cause
/// must never be charged there; clustered machines with a bypass penalty
/// do pay it on real code.
#[test]
fn intercluster_wait_fires_only_on_clustered_machines() {
    let trace = trace_cached(Benchmark::Li, 20_000).expect("kernel runs");
    let single = run_attributed("window", machine::baseline_8way(), &trace);
    assert_eq!(single.stall_breakdown.get(StallCause::InterclusterWait), 0);
    let fifos = run_attributed("fifos", machine::dependence_8way(), &trace);
    assert_eq!(fifos.stall_breakdown.get(StallCause::InterclusterWait), 0);
    let clustered = run_attributed("2c-fifos", machine::clustered_fifos_8way(), &trace);
    assert!(
        clustered.stall_breakdown.get(StallCause::InterclusterWait) > 0,
        "li on the clustered FIFO machine waits on cross-cluster bypasses"
    );
}

/// Head-only wakeup is what FIFO scheduling costs; a flexible window has
/// no FIFO heads to be not-ready.
#[test]
fn fifo_head_shadowing_fires_only_on_fifo_machines() {
    let trace = trace_cached(Benchmark::Li, 20_000).expect("kernel runs");
    let window = run_attributed("window", machine::baseline_8way(), &trace);
    assert_eq!(window.stall_breakdown.get(StallCause::FifoHeadNotReady), 0);
    let fifos = run_attributed("fifos", machine::dependence_8way(), &trace);
    assert!(
        fifos.stall_breakdown.get(StallCause::FifoHeadNotReady) > 0,
        "li serializes behind unready FIFO heads"
    );
}

/// Unpredictable branches leave the front end refilling after squashes;
/// those empty-window slots are charged to mispredict recovery.
#[test]
fn mispredict_recovery_charged_under_unpredictable_branches() {
    let config = SyntheticConfig {
        branch_frac: 0.30,
        predictability: 0.0,
        taken_prob: 0.5,
        ..SyntheticConfig::default()
    };
    let trace = generate(&config, 5_000);
    let stats = run_attributed("baseline x branchy", machine::baseline_8way(), &trace);
    assert!(stats.mispredictions > 0, "the mix must actually mispredict");
    assert!(
        stats.stall_breakdown.get(StallCause::MispredictRecovery) > 0,
        "post-squash refill slots must be charged to recovery"
    );
    // A perfectly-predicted run of the same trace charges none.
    let mut perfect = machine::baseline_8way();
    perfect.bpred.perfect = true;
    let stats = run_attributed("perfect bpred x branchy", perfect, &trace);
    assert_eq!(stats.stall_breakdown.get(StallCause::MispredictRecovery), 0);
}

/// The steered-windows machine rejects ready instructions when their
/// bound cluster's issue ports are taken — FU/port contention.
#[test]
fn fu_port_contention_appears_on_steered_windows() {
    let trace = trace_cached(Benchmark::Compress, 20_000).expect("kernel runs");
    let stats = run_attributed(
        "2c-windows x compress",
        machine::clustered_windows_dispatch_8way(),
        &trace,
    );
    assert!(
        stats.stall_breakdown.get(StallCause::FuPortContention) > 0,
        "compress has enough ILP to oversubscribe a cluster's ports"
    );
}

/// An empty trace: no cycles, nothing charged, identity trivially holds.
#[test]
fn empty_trace_reconciles_trivially() {
    let trace = Trace::default();
    let stats = run_attributed("empty", machine::baseline_8way(), &trace);
    assert_eq!(stats.cycles, 0);
    assert!(stats.stall_breakdown.is_empty());
}

/// Synthetic mixes matching `differential.rs`, for the randomized sweep.
fn mix(sel: usize, seed: u64) -> SyntheticConfig {
    let base = match sel {
        0 => SyntheticConfig::default(),
        1 => SyntheticConfig {
            load_frac: 0.40,
            store_frac: 0.25,
            branch_frac: 0.05,
            working_set_words: 64,
            ..SyntheticConfig::default()
        },
        2 => SyntheticConfig {
            branch_frac: 0.30,
            predictability: 0.0,
            taken_prob: 0.5,
            ..SyntheticConfig::default()
        },
        _ => SyntheticConfig { dep_locality: 0.95, ..SyntheticConfig::default() },
    };
    SyntheticConfig { seed, ..base }
}

proptest! {
    /// The identity holds under randomized organizations, configuration
    /// knobs, and synthetic traces — the same space the differential
    /// oracle sweeps.
    #[test]
    fn reconciles_on_randomized_configs(
        seed in 0u64..1_000_000,
        org_sel in 0usize..5,
        mix_sel in 0usize..4,
        knob in 0usize..4,
    ) {
        use ce_sim::{BypassModel, SteeringPolicy};
        let (name, mut cfg) = machine::figure17_machines()[org_sel];
        match knob {
            0 => {}
            1 => cfg.split_store_issue = true,
            2 => cfg.model_wrong_path = true,
            _ => {
                if cfg.clusters > 1 {
                    cfg.steering = SteeringPolicy::LoadBalanced;
                } else {
                    cfg.bypass_model = BypassModel::None;
                }
            }
        }
        let trace = generate(&mix(mix_sel, seed), 3_000);
        run_attributed(&format!("{name} knob {knob} seed {seed}"), cfg, &trace);
    }
}
