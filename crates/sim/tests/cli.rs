//! End-to-end tests of the `cesim` command-line driver.

use std::process::Command;

fn cesim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cesim"))
}

#[test]
fn runs_a_benchmark_and_reports_ipc() {
    let out = cesim()
        .args(["--machine", "fifos", "--bench", "compress", "--max-insts", "20000"])
        .output()
        .expect("cesim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("machine: fifos"), "{stdout}");
    assert!(stdout.contains("IPC:"), "{stdout}");
    assert!(stdout.contains("instructions: 20000"), "{stdout}");
}

#[test]
fn clustered_machine_reports_intercluster_traffic() {
    let out = cesim()
        .args(["--machine", "clustered-fifos", "--bench", "li", "--max-insts", "20000"])
        .output()
        .expect("cesim runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inter-cluster bypasses"), "{stdout}");
}

#[test]
fn schedule_flag_prints_records_and_diagram() {
    let out = cesim()
        .args(["--bench", "go", "--max-insts", "200", "--schedule"])
        .output()
        .expect("cesim runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dispatch"), "{stdout}");
    assert!(stdout.contains("pipeline diagram"), "{stdout}");
}

#[test]
fn trace_save_and_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!("cesim-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("t.trace");

    let save = cesim()
        .args(["--bench", "m88ksim", "--max-insts", "5000"])
        .arg("--save-trace")
        .arg(&trace_path)
        .output()
        .expect("save runs");
    assert!(save.status.success());
    assert!(trace_path.exists());

    let replay = cesim()
        .args(["--machine", "window"])
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("replay runs");
    assert!(replay.status.success());
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(stdout.contains("instructions: 5000"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assembles_and_runs_a_user_program() {
    let dir = std::env::temp_dir().join(format!("cesim-asm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let asm_path = dir.join("p.s");
    std::fs::write(&asm_path, "li t0, 64\nloop: addiu t0, t0, -1\nbnez t0, loop\nhalt\n")
        .expect("write asm");

    let out = cesim().arg("--asm").arg(&asm_path).output().expect("cesim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("instructions: 130"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt trace file must produce a clean line-numbered error and a
/// failure exit code — not a mid-simulation panic (loads without
/// addresses used to survive parsing and blow up inside the issue path).
#[test]
fn corrupt_trace_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("cesim-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A load with its memory-address field missing.
    let lw = ce_isa::encode(&ce_isa::Instruction::mem(
        ce_isa::Opcode::Lw,
        ce_isa::Reg::new(4),
        0,
        ce_isa::Reg::new(29),
    ));
    let no_addr = dir.join("no-addr.trace");
    std::fs::write(&no_addr, format!("ce-trace v1 completed=true\n400000 {lw:x} 400004 0\n"))
        .expect("write trace");
    let out = cesim().arg("--trace").arg(&no_addr).output().expect("cesim runs");
    assert!(!out.status.success(), "missing address must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace line 2"), "{stderr}");
    assert!(stderr.contains("memory address"), "{stderr}");

    // Garbage header.
    let bad_header = dir.join("bad-header.trace");
    std::fs::write(&bad_header, "not a trace\n").expect("write trace");
    let out = cesim().arg("--trace").arg(&bad_header).output().expect("cesim runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad header"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `--metrics` writes a schema-tagged JSON document whose attribution
/// section reconciles, and prints the stall table; `--pipeview` writes a
/// Kanata log a pipeline viewer can open. One run exercises both.
#[test]
fn metrics_and_pipeview_outputs() {
    let dir = std::env::temp_dir().join(format!("cesim-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("m.json");
    let pipeview_path = dir.join("p.log");

    let out = cesim()
        .args(["--machine", "clustered-fifos", "--bench", "li", "--max-insts", "20000"])
        .arg("--metrics")
        .arg(&metrics_path)
        .arg("--pipeview")
        .arg(&pipeview_path)
        .output()
        .expect("cesim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stall attribution"), "{stdout}");
    assert!(stdout.contains("fifo_head_not_ready"), "{stdout}");

    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
    assert!(metrics.contains("\"schema\": \"ce-sim.metrics.v1\""), "{metrics}");
    assert!(metrics.contains("\"machine\": \"clustered-fifos\""), "{metrics}");
    assert!(metrics.contains("\"workload\": \"li\""), "{metrics}");
    assert!(metrics.contains("\"issue_slots\""), "{metrics}");

    let pipeview = std::fs::read_to_string(&pipeview_path).expect("pipeview written");
    assert!(pipeview.starts_with("Kanata\t0004\n"), "bad header");
    // Stage opens, retires, and cycle advances are all present.
    for needle in ["\nC=\t", "\nS\t", "\nE\t", "\nR\t", "\nC\t"] {
        assert!(pipeview.contains(needle), "missing {needle:?}");
    }

    // Without --metrics, no attribution table and no charged slots.
    let out = cesim()
        .args(["--machine", "clustered-fifos", "--bench", "li", "--max-insts", "20000"])
        .output()
        .expect("cesim runs");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("stall attribution"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = cesim().args(["--machine", "bogus"]).output().expect("cesim runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = cesim().args(["--max-insts", "not-a-number"]).output().expect("cesim runs");
    assert_eq!(out.status.code(), Some(2));

    // A malformed fault spec is a usage error too, with the kind list.
    let out = cesim().args(["--inject", "bogus@5"]).output().expect("cesim runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --inject"), "{stderr}");
    assert!(stderr.contains("early-select"), "{stderr}");
}

/// A checker violation must surface as exit code 3 with a structured
/// one-line `error[checker-violation]` on stderr — not a panic with a
/// backtrace. `stats-corrupt` is always caught by the end-of-run
/// reconciliation, so the outcome is deterministic.
#[test]
fn injected_fault_aborts_with_structured_error() {
    let out = cesim()
        .args(["--bench", "compress", "--max-insts", "5000", "--check"])
        .args(["--inject", "stats-corrupt@0"])
        .output()
        .expect("cesim runs");
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[checker-violation]:"), "{stderr}");
    assert!(stderr.contains("invariant checker"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "one line expected: {stderr}");

    // The same fault with the checker off corrupts only the `issued`
    // counter — the run itself completes (exit 0). This is exactly the
    // silent-skew scenario --check exists to rule out.
    let out = cesim()
        .args(["--bench", "compress", "--max-insts", "5000"])
        .args(["--inject", "stats-corrupt@0"])
        .output()
        .expect("cesim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

/// The checker rides along cleanly on a healthy run: same stats, exit 0.
#[test]
fn check_flag_passes_on_a_clean_run() {
    let out = cesim()
        .args(["--bench", "compress", "--max-insts", "5000", "--check"])
        .output()
        .expect("cesim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("IPC:"));
}

/// A missing trace file is an input error (exit 1) with a one-line
/// `error:` message naming the path.
#[test]
fn unreadable_trace_file_fails_with_exit_1() {
    let out = cesim()
        .args(["--trace", "/nonexistent/no-such.trace"])
        .output()
        .expect("cesim runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: reading /nonexistent/no-such.trace"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "one line expected: {stderr}");
}
