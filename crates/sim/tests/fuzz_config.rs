//! Seeded fuzz-style corpus for configuration validation: randomized
//! `SimConfig` values must never panic `validate()` or
//! `Simulator::try_new`, and the two must agree — every config that
//! validates builds, every config that fails validation is refused.
//!
//! The fault-injection campaign (`ce-bench::fault`) perturbs configs
//! toward the validation boundary from curated directions; this corpus
//! sprays the whole space with a deterministic seed.

use ce_sim::{machine, SchedulerKind, SimConfig, Simulator};
use rand::{Rng, SeedableRng, StdRng};

/// Draws a value from a small adversarial palette: mostly boundary
/// values (0, 1) and small numbers, occasionally something larger —
/// bounded so a *valid* draw never allocates more than a few MB.
fn wild(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..6usize) {
        0 => 0,
        1 => 1,
        2 => rng.gen_range(2..9usize),
        3 => rng.gen_range(9..33usize),
        4 => rng.gen_range(33..200usize),
        _ => rng.gen_range(200..4096usize),
    }
}

fn random_scheduler(rng: &mut StdRng) -> SchedulerKind {
    match rng.gen_range(0..3usize) {
        0 => SchedulerKind::CentralWindow { size: wild(rng) },
        1 => SchedulerKind::SteeredWindows {
            fifos_per_cluster: wild(rng),
            fifo_depth: wild(rng),
        },
        _ => SchedulerKind::Fifos { fifos_per_cluster: wild(rng), depth: wild(rng) },
    }
}

fn random_config(rng: &mut StdRng) -> SimConfig {
    let bases = [
        machine::baseline_8way(),
        machine::dependence_8way(),
        machine::clustered_fifos_8way(),
        machine::clustered_windows_dispatch_8way(),
    ];
    let mut cfg = bases[rng.gen_range(0..bases.len())];
    // Scramble a handful of fields per case so most configs stay near
    // the validation boundary instead of being invalid five ways over.
    for _ in 0..rng.gen_range(1..5usize) {
        match rng.gen_range(0..10usize) {
            0 => cfg.fetch_width = wild(rng),
            1 => cfg.issue_width = wild(rng),
            2 => cfg.retire_width = wild(rng),
            3 => cfg.max_inflight = wild(rng),
            4 => cfg.physical_regs = wild(rng),
            5 => cfg.clusters = wild(rng).min(64),
            6 => cfg.scheduler = random_scheduler(rng),
            7 => cfg.bpred.counters = wild(rng),
            8 => cfg.bpred.history_bits = wild(rng) as u32,
            _ => {
                cfg.intercluster_extra = wild(rng) as u64;
                cfg.regwrite_delay = wild(rng) as u64;
            }
        }
    }
    cfg
}

#[test]
fn randomized_configs_never_panic_and_validate_agrees_with_try_new() {
    let mut rng = StdRng::seed_from_u64(0xc0f6);
    let (mut accepted, mut rejected) = (0usize, 0usize);
    for case in 0..300 {
        let cfg = random_config(&mut rng);
        match cfg.validate() {
            Ok(()) => {
                accepted += 1;
                assert!(
                    Simulator::try_new(cfg).is_ok(),
                    "case {case}: validate passed but try_new refused: {cfg:?}"
                );
            }
            Err(msg) => {
                rejected += 1;
                assert!(!msg.is_empty(), "case {case}: empty rejection message");
                let err = Simulator::try_new(cfg)
                    .err()
                    .unwrap_or_else(|| panic!("case {case}: validate rejected but try_new built: {cfg:?}"));
                assert!(!err.to_string().is_empty(), "case {case}");
            }
        }
    }
    // The corpus must straddle the boundary, not sit on one side.
    assert!(accepted > 10, "only {accepted} of 300 configs validated");
    assert!(rejected > 10, "only {rejected} of 300 configs were rejected");
}
