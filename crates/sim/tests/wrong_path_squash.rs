//! Wrong-path squash edge cases.
//!
//! Wrong-path modeling synthesizes instructions with sequence numbers that
//! restart at `branch_seq + 1` — deliberately aliasing the sequence numbers
//! of real instructions fetched after the squash. The optimized simulator
//! keeps completion events in a heap and scheduler entries in a hot ring
//! keyed by those aliased numbers, so squashes are where stale state can
//! leak: a dead event completing a live instruction early, or a squashed
//! FIFO entry blocking a head. Each test here drives one such scenario
//! deterministically, with the invariant checker on, and cross-checks the
//! full statistics fingerprint against the naive oracle (which has no heap
//! or ring to get stale).

use ce_isa::asm::assemble;
use ce_sim::{machine, OracleSimulator, SimConfig, SimStats, Simulator};
use ce_workloads::{Emulator, Trace};

fn trace_of(src: &str) -> Trace {
    let program = assemble(src).expect("assembles");
    Emulator::new(&program).run_to_completion(1_000_000).expect("halts")
}

/// Runs optimized (checker on) and oracle, asserting bit-identical stats.
fn run_agreeing(cfg: SimConfig, trace: &Trace) -> SimStats {
    let mut checked = cfg;
    checked.check = true;
    let optimized = Simulator::new(checked).run(trace);
    let oracle = OracleSimulator::new(cfg).run(trace);
    assert_eq!(
        optimized.fingerprint(),
        oracle.fingerprint(),
        "optimized and oracle must agree under squashes"
    );
    optimized
}

/// A loop whose branch direction is an LCG bit — effectively random to the
/// gshare predictor — with memory traffic so wrong-path fetch synthesizes
/// loads (every third wrong-path instruction reuses a recent address).
fn unpredictable_loop(iters: u32) -> String {
    format!(
        "
        li s0, 12345
        li s1, {iters}
        sw s0, 0(gp)
    loop:
        li t1, 1103515245
        mul s0, s0, t1
        addiu s0, s0, 12345
        srl t2, s0, 16
        andi t2, t2, 1
        lw t3, 0(gp)
        beqz t2, skip
        sw t3, 4(gp)
        lw t4, 4(gp)
        addu t3, t3, t4
    skip:
        sw t3, 8(gp)
        addiu s1, s1, -1
        bnez s1, loop
        halt
    "
    )
}

/// Squash while the FIFO pool still holds wrong-path entries queued behind
/// (and ahead of) real work. Head-only issue makes stale entries fatal: a
/// squashed instruction left at a FIFO head would block the queue forever,
/// and one left mid-FIFO would corrupt the steering tail-match. The
/// checker's head-only and occupancy audits run every cycle.
#[test]
fn squash_clears_wrong_path_from_fifo_pool() {
    let trace = trace_of(&unpredictable_loop(300));
    let mut cfg = machine::clustered_fifos_8way();
    cfg.model_wrong_path = true;
    let stats = run_agreeing(cfg, &trace);
    assert!(stats.mispredictions > 10, "loop must mispredict: {}", stats.mispredictions);
    assert!(stats.wrong_path_fetched > 0, "wrong path must be fetched");
    assert!(
        stats.wrong_path_issued > 0,
        "some wrong-path work must reach execution before its squash"
    );
    // Reconciliation the checker also enforces: every issue either
    // committed or was squashed wrong-path work.
    assert_eq!(stats.issued, stats.committed + stats.wrong_path_issued);
}

/// A mispredicted branch that resolves in the same cycle other instructions
/// complete: the squash must kill exactly the wrong-path entries while the
/// same-cycle completions survive and commit. The load feeding each branch
/// gives the branch multi-cycle latency, so its resolution cycle routinely
/// coincides with completions of the independent store/ALU stream.
#[test]
fn same_cycle_resolution_and_completion_agree() {
    let src = "
        li s0, 12345
        li s1, 200
        sw s0, 0(gp)
    loop:
        li t1, 1103515245
        mul s0, s0, t1
        addiu s0, s0, 12345
        srl t2, s0, 16
        andi t2, t2, 1
        sw t2, 0(gp)
        lw t3, 0(gp)
        beqz t3, skip
        addu t5, t2, t1
    skip:
        addiu s1, s1, -1
        bnez s1, loop
        halt
    ";
    let trace = trace_of(src);
    let mut cfg = machine::baseline_8way();
    cfg.model_wrong_path = true;
    let stats = run_agreeing(cfg, &trace);
    assert!(stats.mispredictions > 10, "{} mispredictions", stats.mispredictions);

    // Confirm the scenario actually occurs: some conditional branch
    // completes on a cycle where another instruction also completes.
    let branch_pcs: std::collections::HashSet<u32> =
        trace.iter().filter(|d| d.is_conditional_branch()).map(|d| d.pc).collect();
    let (_, schedule) = Simulator::new(cfg).run_traced(&trace);
    let mut completions = std::collections::HashMap::new();
    for rec in &schedule {
        *completions.entry(rec.completed_at).or_insert(0usize) += 1;
    }
    let overlap = schedule.iter().any(|rec| {
        branch_pcs.contains(&rec.pc) && completions[&rec.completed_at] > 1
    });
    assert!(overlap, "test must exercise same-cycle branch resolution + completion");
}

/// Sequence-number aliasing: wrong-path instructions are numbered from
/// `branch_seq + 1`, the same numbers the real post-squash instructions
/// carry. A stale completion event surviving the squash could then fire on
/// the *real* instruction with the aliased number — completing a load that
/// never issued, which the checker's commit-timeline audit
/// (`dispatch < issue < finish < commit`) would catch even if the
/// fingerprints happened to collide. The real instruction at
/// `branch_seq + 1` is made a load so the alias window (its multi-cycle
/// execution) is as wide as possible.
#[test]
fn stale_events_do_not_fire_on_aliased_sequence_numbers() {
    let src = "
        li s0, 12345
        li s1, 250
        sw s0, 0(gp)
    loop:
        li t1, 1103515245
        mul s0, s0, t1
        addiu s0, s0, 12345
        srl t2, s0, 16
        andi t2, t2, 1
        beqz t2, skip
        lw t3, 0(gp)
        lw t4, 4(gp)
        sw t3, 8(gp)
    skip:
        lw t5, 0(gp)
        lw t6, 4(gp)
        addiu s1, s1, -1
        bnez s1, loop
        halt
    ";
    let trace = trace_of(src);
    for base in [machine::baseline_8way(), machine::clustered_windows_dispatch_8way()] {
        let mut cfg = base;
        cfg.model_wrong_path = true;
        let stats = run_agreeing(cfg, &trace);
        assert!(stats.mispredictions > 10);
        assert!(stats.wrong_path_issued > 0);
        assert_eq!(stats.issued, stats.committed + stats.wrong_path_issued);
    }
}
