//! Integration tests for the probe API: the event stream must agree with
//! the statistics the simulator reports and with the schedule
//! `run_traced` returns, and attaching probes must not perturb timing.

use std::collections::HashMap;

use ce_sim::{machine, EventLog, IssueRecord, ProbeEvent, ScheduleRecorder, SimConfig, Simulator};
use ce_workloads::{trace_cached, Benchmark, Trace};

fn logged_run(cfg: SimConfig, trace: &Trace) -> (ce_sim::SimStats, Vec<ProbeEvent>) {
    let mut sim = Simulator::new(cfg);
    let (log, events) = EventLog::new();
    sim.attach_probe(Box::new(log));
    let stats = sim.run(trace);
    let events = std::rc::Rc::try_unwrap(events).expect("sim dropped").into_inner();
    (stats, events)
}

/// Event counts must equal the counters the simulator reports: one Issue
/// per issued instruction, one Commit per committed, one Fetch per
/// real-path instruction entering the machine.
#[test]
fn event_counts_match_statistics() {
    for (label, cfg) in
        [("window", machine::baseline_8way()), ("2c-fifos", machine::clustered_fifos_8way())]
    {
        let trace = trace_cached(Benchmark::Compress, 20_000).expect("kernel runs");
        let (stats, events) = logged_run(cfg, &trace);
        let count = |f: fn(&ProbeEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
        // `issued` counts both paths (`issued == committed + wrong_path_issued`).
        assert_eq!(count(|e| matches!(e, ProbeEvent::Issue { .. })), stats.issued, "{label}");
        assert_eq!(count(|e| matches!(e, ProbeEvent::Commit { .. })), stats.committed, "{label}");
        assert_eq!(
            count(|e| matches!(e, ProbeEvent::Fetch { wrong_path: false, .. })),
            trace.len() as u64,
            "{label}"
        );
        // Every committed instruction was dispatched exactly once on the
        // real path; dispatches can exceed commits only via wrong path.
        assert!(count(|e| matches!(e, ProbeEvent::Dispatch { .. })) >= stats.committed, "{label}");
    }
}

/// Events arrive in nondecreasing cycle order, and each instruction's
/// lifecycle is internally ordered: fetch ≤ dispatch ≤ issue < complete
/// ≤ commit.
#[test]
fn event_stream_is_cycle_ordered() {
    let trace = trace_cached(Benchmark::Li, 10_000).expect("kernel runs");
    let (_, events) = logged_run(machine::dependence_8way(), &trace);
    let mut last = 0;
    let mut dispatched: HashMap<u64, u64> = HashMap::new();
    let mut issued: HashMap<u64, u64> = HashMap::new();
    for ev in &events {
        assert!(ev.cycle() >= last, "cycle went backwards at {ev:?}");
        last = ev.cycle();
        match *ev {
            ProbeEvent::Dispatch { cycle, seq, .. } => {
                dispatched.insert(seq, cycle);
            }
            ProbeEvent::Issue { cycle, seq, .. } => {
                issued.insert(seq, cycle);
                assert!(cycle >= dispatched[&seq], "issue before dispatch: {ev:?}");
            }
            ProbeEvent::Commit { seq, dispatched_at, issued_at, completed_at, cycle, .. } => {
                assert_eq!(dispatched_at, dispatched[&seq], "{ev:?}");
                assert_eq!(issued_at, issued[&seq], "{ev:?}");
                assert!(issued_at < completed_at && completed_at <= cycle, "{ev:?}");
            }
            _ => {}
        }
    }
}

/// `run_traced`'s schedule is now derived from the probe stream; an
/// independently attached [`ScheduleRecorder`] and a by-hand
/// reconstruction from Commit events must both reproduce it exactly.
#[test]
fn run_traced_schedule_matches_commit_events() {
    let cfg = machine::clustered_fifos_8way();
    let trace = trace_cached(Benchmark::Compress, 10_000).expect("kernel runs");
    let (stats, schedule) = Simulator::new(cfg).run_traced(&trace);

    let mut sim = Simulator::new(cfg);
    let (rec, handle) = ScheduleRecorder::new(trace.len());
    sim.attach_probe(Box::new(rec));
    let stats2 = sim.run(&trace);
    let recorded = std::rc::Rc::try_unwrap(handle).expect("sim dropped").into_inner();
    assert_eq!(stats.fingerprint(), stats2.fingerprint(), "probes perturbed timing");
    assert_eq!(schedule, recorded);

    let (_, events) = logged_run(cfg, &trace);
    let rebuilt: Vec<IssueRecord> = events
        .iter()
        .filter_map(|e| match *e {
            ProbeEvent::Commit { seq, pc, dispatched_at, issued_at, completed_at, cluster, .. } => {
                Some(IssueRecord { seq, pc, dispatched_at, issued_at, completed_at, cluster })
            }
            _ => None,
        })
        .collect();
    assert_eq!(schedule, rebuilt);
}

/// Golden check tying the renderer to the probe stream: the diagram
/// drawn from probe-derived records equals the one drawn from
/// `run_traced`, and its markers appear at the cycles the events name.
#[test]
fn schedule_diagram_agrees_with_probe_events() {
    let cfg = machine::clustered_fifos_8way();
    let trace = trace_cached(Benchmark::Compress, 5_000).expect("kernel runs");
    let (_, schedule) = Simulator::new(cfg).run_traced(&trace);
    let head: Vec<IssueRecord> = schedule.iter().take(16).copied().collect();
    let diagram = ce_sim::viz::render_schedule(&head, cfg.clusters);

    let (_, events) = logged_run(cfg, &trace);
    let from_events: Vec<IssueRecord> = events
        .iter()
        .filter_map(|e| match *e {
            ProbeEvent::Commit { seq, pc, dispatched_at, issued_at, completed_at, cluster, .. } => {
                Some(IssueRecord { seq, pc, dispatched_at, issued_at, completed_at, cluster })
            }
            _ => None,
        })
        .take(16)
        .collect();
    assert_eq!(diagram, ce_sim::viz::render_schedule(&from_events, cfg.clusters));

    // Spot-check the first record against its row: D lands on the
    // dispatch cycle's column.
    let origin = head.iter().map(|r| r.dispatched_at).min().expect("nonempty");
    let first = &head[0];
    let row = diagram
        .lines()
        .find(|l| l.starts_with(&format!("{:>4} ", format!("i{}", first.seq))))
        .expect("row for first record");
    let label_width = 4.max(format!("i{}", head.iter().map(|r| r.seq).max().unwrap()).len());
    let d_col = label_width + 1 + (first.dispatched_at - origin) as usize;
    assert_eq!(row.chars().nth(d_col), Some('D'), "{row:?}");
}

/// Multiple sinks attached at once each see the full stream.
#[test]
fn multiple_probes_see_the_same_stream() {
    let trace = trace_cached(Benchmark::Compress, 5_000).expect("kernel runs");
    let mut sim = Simulator::new(machine::baseline_8way());
    let (a, ha) = EventLog::new();
    let (b, hb) = EventLog::new();
    sim.attach_probe(Box::new(a));
    sim.attach_probe(Box::new(b));
    sim.run(&trace);
    let ea = std::rc::Rc::try_unwrap(ha).expect("sim dropped").into_inner();
    let eb = std::rc::Rc::try_unwrap(hb).expect("sim dropped").into_inner();
    assert!(!ea.is_empty());
    assert_eq!(ea, eb);
}
