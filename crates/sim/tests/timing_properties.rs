//! Timing-model invariants exercised through full simulations: port
//! limits, load/store ordering, front-end depth, and schedule-record
//! consistency.

use ce_isa::asm::assemble;
use ce_sim::{machine, SimConfig, Simulator};
use ce_workloads::synthetic::{generate, SyntheticConfig};
use ce_workloads::{Emulator, Trace};
use proptest::prelude::*;

fn trace_of(src: &str) -> Trace {
    let program = assemble(src).expect("assembles");
    Emulator::new(&program).run_to_completion(1_000_000).expect("halts")
}

/// Every simulation in this suite runs with the per-cycle invariant
/// checker enabled — it never perturbs timing, and these workloads are
/// exactly the stress patterns it is meant to audit.
fn checked(mut cfg: SimConfig) -> SimConfig {
    cfg.check = true;
    cfg
}

#[test]
fn dcache_ports_throttle_parallel_loads() {
    // 8 independent loads per iteration; 4 ports mean ≥ 2 cycles of memory
    // issue per iteration.
    let mut body = String::from("li s0, 200\nloop:\n");
    for i in 0..8 {
        body.push_str(&format!("lw t{i}, {}(gp)\n", i * 4));
    }
    body.push_str("addiu s0, s0, -1\nbnez s0, loop\nhalt\n");
    let t = trace_of(&body);

    let four_ports = Simulator::new(checked(machine::baseline_8way())).run(&t);
    let mut cfg = machine::baseline_8way();
    cfg.dcache.ports = 8;
    let eight_ports = Simulator::new(checked(cfg)).run(&t);
    let mut cfg = machine::baseline_8way();
    cfg.dcache.ports = 1;
    let one_port = Simulator::new(checked(cfg)).run(&t);

    assert!(eight_ports.cycles < four_ports.cycles);
    assert!(four_ports.cycles < one_port.cycles);
    // With one port, ≥ 8 cycles per iteration are forced by loads alone.
    assert!(one_port.ipc() < 11.0 / 8.0 + 0.1, "one-port IPC {}", one_port.ipc());
}

#[test]
fn loads_wait_for_prior_store_addresses() {
    // A store followed by many independent loads: the loads cannot issue
    // before the store's address is known (Table 3's ordering rule), so
    // delaying the store's operands delays everything.
    let quick_store = "
        li t0, 1
        sw t0, 0(gp)
        lw t1, 64(gp)
        lw t2, 128(gp)
        halt
    ";
    let slow_store = "
        li t0, 1
        mul t0, t0, t0
        mul t0, t0, t0
        mul t0, t0, t0
        mul t0, t0, t0
        sw t0, 0(gp)
        lw t1, 64(gp)
        lw t2, 128(gp)
        halt
    ";
    let quick = Simulator::new(checked(machine::baseline_8way())).run(&trace_of(quick_store));
    let slow = Simulator::new(checked(machine::baseline_8way())).run(&trace_of(slow_store));
    // The four dependent muls add 4 cycles to the store, and the loads
    // must trail it: total cycle growth exceeds the 4 added instructions'
    // own cost on an 8-wide machine.
    assert!(slow.cycles >= quick.cycles + 4, "{} vs {}", slow.cycles, quick.cycles);
}

#[test]
fn deeper_frontend_costs_cycles_on_mispredictions() {
    // Unpredictable branches make the front-end depth visible in the
    // misprediction penalty.
    let src = "
        li s0, 12345
        li s1, 500
    loop:
        li t1, 1103515245
        mul s0, s0, t1
        addiu s0, s0, 12345
        srl t2, s0, 16
        andi t2, t2, 1
        beqz t2, skip
        nop
    skip:
        addiu s1, s1, -1
        bnez s1, loop
        halt
    ";
    let t = trace_of(src);
    let mut shallow_cfg = machine::baseline_8way();
    shallow_cfg.frontend_depth = 1;
    let mut deep_cfg = machine::baseline_8way();
    deep_cfg.frontend_depth = 6;
    let shallow = Simulator::new(checked(shallow_cfg)).run(&t);
    let deep = Simulator::new(checked(deep_cfg)).run(&t);
    assert!(deep.cycles > shallow.cycles);
    assert_eq!(deep.mispredictions, shallow.mispredictions, "same predictor behaviour");
}

#[test]
fn schedule_records_are_causally_ordered() {
    let t = trace_of(
        "li t0, 40\nloop: lw t1, 0(gp)\naddu t2, t1, t0\naddiu t0, t0, -1\nbnez t0, loop\nhalt\n",
    );
    for cfg in [machine::baseline_8way(), machine::clustered_fifos_8way()] {
        let (stats, schedule) = Simulator::new(checked(cfg)).run_traced(&t);
        assert_eq!(schedule.len() as u64, stats.committed);
        for (i, rec) in schedule.iter().enumerate() {
            assert_eq!(rec.seq, i as u64, "commit order is program order");
            assert!(rec.dispatched_at < rec.issued_at, "dispatch strictly precedes issue");
            assert!(rec.issued_at < rec.completed_at);
            assert!(rec.cluster < cfg.clusters);
        }
    }
}

proptest! {
    /// Per-cycle issue never exceeds the configured width, reconstructed
    /// from the schedule records of random synthetic workloads.
    #[test]
    fn issue_width_is_respected(seed in 0u64..200, width_sel in 0usize..3) {
        let widths = [2usize, 4, 8];
        let width = widths[width_sel];
        let config = SyntheticConfig { seed, ..SyntheticConfig::default() };
        let trace = generate(&config, 2_000);
        let mut cfg = machine::baseline_8way();
        cfg.issue_width = width;
        cfg.fetch_width = width;
        let (_, schedule) = Simulator::new(checked(cfg)).run_traced(&trace);
        let mut per_cycle = std::collections::HashMap::new();
        for rec in &schedule {
            *per_cycle.entry(rec.issued_at).or_insert(0usize) += 1;
        }
        for (cycle, n) in per_cycle {
            prop_assert!(n <= width, "cycle {cycle} issued {n} > width {width}");
        }
    }

    /// Per-cluster FU limits hold for the clustered machines.
    #[test]
    fn cluster_fu_limits_are_respected(seed in 0u64..200) {
        let config = SyntheticConfig { seed, ..SyntheticConfig::default() };
        let trace = generate(&config, 2_000);
        let cfg = machine::clustered_fifos_8way();
        let per_cluster = cfg.fus_per_cluster();
        let (_, schedule) = Simulator::new(checked(cfg)).run_traced(&trace);
        let mut use_map = std::collections::HashMap::new();
        for rec in &schedule {
            *use_map.entry((rec.issued_at, rec.cluster)).or_insert(0usize) += 1;
        }
        for ((cycle, cluster), n) in use_map {
            prop_assert!(
                n <= per_cluster,
                "cycle {cycle} cluster {cluster} ran {n} > {per_cluster}"
            );
        }
    }
}
