//! The detected-or-masked contract for scheduler fault injection: with
//! the invariant checker on, every planted fault either aborts the run
//! loudly (a `SimError`, or the deliberate `panic-cell` unwind) or
//! provably changed nothing (statistics fingerprint bit-identical to a
//! clean run). A fault that completes with a *different* fingerprint is
//! silent corruption — a checker hole — and fails this test.
//!
//! The seeded campaign in `ce-bench` (`faultcampaign`) sweeps this same
//! contract over randomized fault plans; this test pins the fixed grid
//! every CI run.

use ce_sim::{FaultKind, FaultSpec, SimError, SimStats, Simulator};
use ce_workloads::{trace_cached, Benchmark, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const INSTS: u64 = 3_000;

fn checked_config() -> ce_sim::SimConfig {
    let mut cfg = ce_sim::machine::baseline_8way();
    cfg.check = true;
    cfg
}

fn clean_run(trace: &Trace) -> SimStats {
    Simulator::new(checked_config()).run(trace)
}

enum Outcome {
    Aborted(SimError),
    Panicked,
    Completed(Box<SimStats>),
}

fn injected_run(trace: &Trace, fault: FaultSpec) -> Outcome {
    let mut cfg = checked_config();
    cfg.fault = Some(fault);
    // `panic-cell` deliberately unwinds; catch it so the test can
    // classify the outcome instead of dying.
    match catch_unwind(AssertUnwindSafe(|| Simulator::new(cfg).try_run(trace))) {
        Ok(Ok(stats)) => Outcome::Completed(Box::new(stats)),
        Ok(Err(e)) => Outcome::Aborted(e),
        Err(_) => Outcome::Panicked,
    }
}

#[test]
fn every_fault_kind_is_detected_or_masked_under_the_checker() {
    let trace: Arc<Trace> = trace_cached(Benchmark::Compress, INSTS).expect("trace");
    let clean = clean_run(&trace);
    let horizon = clean.cycles;

    let mut detected = 0usize;
    let mut masked = 0usize;
    for kind in FaultKind::ALL {
        for at_cycle in [0, horizon / 4, horizon / 2, horizon - 1, horizon + 1_000] {
            let fault = FaultSpec { kind, at_cycle };
            match injected_run(&trace, fault) {
                Outcome::Aborted(SimError::Checker { .. }) => detected += 1,
                // Any loud abort counts as detection — the run did not
                // produce corrupted statistics.
                Outcome::Aborted(_) => detected += 1,
                Outcome::Panicked => {
                    assert_eq!(
                        kind,
                        FaultKind::PanicCell,
                        "{fault}: only panic-cell may unwind"
                    );
                    detected += 1;
                }
                Outcome::Completed(stats) => {
                    assert_eq!(
                        stats.fingerprint(),
                        clean.fingerprint(),
                        "{fault}: run completed with a different fingerprint — \
                         the fault was silent"
                    );
                    masked += 1;
                }
            }
        }
    }

    // The grid must exercise both arms: in-range faults that strike and
    // past-horizon faults that never fire.
    assert!(detected >= FaultKind::ALL.len(), "only {detected} faults detected");
    assert!(masked >= FaultKind::ALL.len(), "only {masked} faults masked");
}

/// `stats-corrupt` ignores its trigger cycle and strikes at end of run;
/// the end-of-run reconciliation must always catch it.
#[test]
fn stats_corruption_is_always_caught() {
    let trace = trace_cached(Benchmark::Compress, INSTS).expect("trace");
    for at_cycle in [0u64, 7, 1 << 40] {
        let fault = FaultSpec { kind: FaultKind::StatsCorrupt, at_cycle };
        match injected_run(&trace, fault) {
            Outcome::Aborted(SimError::Checker { .. }) => {}
            _ => panic!("{fault}: reconciliation failed to catch the corrupt counter"),
        }
    }
}

/// The checker itself is observation-only: a clean checked run must be
/// bit-identical to a clean unchecked run.
#[test]
fn checker_and_disabled_injection_do_not_perturb_timing() {
    let trace = trace_cached(Benchmark::Compress, INSTS).expect("trace");
    let unchecked = Simulator::new(ce_sim::machine::baseline_8way()).run(&trace);
    let checked = clean_run(&trace);
    assert_eq!(unchecked.fingerprint(), checked.fingerprint());
}
