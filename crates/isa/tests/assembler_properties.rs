//! Property-based tests of the assembler: generated programs always
//! assemble, labels resolve to the right places, and the encoder survives
//! arbitrary bit patterns.

use ce_isa::asm::assemble;
use ce_isa::{decode, encode, Opcode, TEXT_BASE};
use proptest::prelude::*;

proptest! {
    /// Randomly generated label-and-branch programs assemble, and every
    /// branch displacement points exactly at its label.
    #[test]
    fn branches_resolve_to_their_labels(
        blocks in proptest::collection::vec(1usize..6, 2..12),
    ) {
        // Build: L0: nops... b L1; L1: nops... b L2; ...; Ln: halt
        let mut src = String::new();
        for (i, nops) in blocks.iter().enumerate() {
            src.push_str(&format!("L{i}:\n"));
            for _ in 0..*nops {
                src.push_str("    nop\n");
            }
            src.push_str(&format!("    b L{}\n", i + 1));
        }
        src.push_str(&format!("L{}:\n    halt\n", blocks.len()));

        let program = assemble(&src).expect("generated program assembles");
        // Walk the program: each `beq r0,r0` (the expansion of `b`) must
        // land on the next label.
        let mut word = 0usize;
        for (i, nops) in blocks.iter().enumerate() {
            prop_assert_eq!(
                program.symbols[&format!("L{i}")],
                TEXT_BASE + (word as u32) * 4
            );
            word += nops; // the nops
            let branch = program.text[word];
            prop_assert_eq!(branch.opcode, Opcode::Beq);
            let target_word = (word as i64 + 1) + branch.imm as i64;
            prop_assert_eq!(
                TEXT_BASE + (target_word as u32) * 4,
                program.symbols[&format!("L{}", i + 1)]
            );
            word += 1; // the branch itself
        }
    }

    /// The decoder never panics on arbitrary 32-bit words, and whatever it
    /// accepts re-encodes to a word that decodes to the same instruction.
    #[test]
    fn decoder_total_and_stable(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let again = decode(encode(&inst)).expect("round trip");
            prop_assert_eq!(again, inst);
        }
    }

    /// Data layout: `.space` and `.word` place later labels at exactly the
    /// accumulated offset.
    #[test]
    fn data_offsets_accumulate(sizes in proptest::collection::vec(1usize..40, 1..10)) {
        let mut src = String::from(".data\n");
        for (i, size) in sizes.iter().enumerate() {
            src.push_str(&format!("v{i}: .space {size}\n"));
        }
        src.push_str("end: .byte 1\n.text\nhalt\n");
        let program = assemble(&src).expect("assembles");
        let mut offset = 0u32;
        for (i, size) in sizes.iter().enumerate() {
            prop_assert_eq!(program.symbols[&format!("v{i}")], program.data_base + offset);
            offset += *size as u32;
        }
        prop_assert_eq!(program.symbols["end"], program.data_base + offset);
        prop_assert_eq!(program.data.len() as u32, offset + 1);
    }

    /// `li` of any 32-bit value followed by a store produces a program
    /// whose data equals the value (full assembler+emulator agreement is
    /// covered in ce-workloads; here we check the expansion sizes).
    #[test]
    fn li_expansion_sizes(value in any::<i32>()) {
        let src = format!("li t0, {value}\nhalt\n");
        let program = assemble(&src).expect("assembles");
        let expected = if i16::try_from(value).is_ok() || value as u32 & 0xFFFF == 0 {
            2 // one instruction + halt
        } else {
            3 // lui+ori + halt
        };
        prop_assert_eq!(program.text.len(), expected);
    }
}
