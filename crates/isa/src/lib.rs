//! # ce-isa — the substrate instruction set
//!
//! A small MIPS-like 32-bit RISC instruction set used by the
//! complexity-effective superscalar reproduction. The crate provides:
//!
//! * [`Reg`] — architectural register designators (32 integer registers),
//! * [`Opcode`] and [`Instruction`] — the instruction set with dependence
//!   accessors ([`Instruction::defs`], [`Instruction::uses`]) that the rename
//!   and steering logic consume,
//! * [`encode()`](encode())/[`decode()`](decode()) — a fixed 32-bit binary
//!   encoding with full round-trip guarantees,
//! * [`asm`] — a two-pass text assembler (labels, directives,
//!   pseudo-instructions) used to build the benchmark kernels,
//! * [`disasm`] — textual disassembly.
//!
//! The ISA deliberately mirrors the MIPS subset that appears in the paper's
//! Figure 12 steering example (`addu`, `addiu`, `sllv`, `xor`, `lw`, `sw`,
//! `beq`, …) so the paper's examples can be written down verbatim.
//!
//! ## Example
//!
//! ```
//! use ce_isa::asm::assemble;
//!
//! let program = assemble(
//!     "        addi r1, r0, 5
//!      loop:   addi r1, r1, -1
//!              bne  r1, r0, loop
//!              halt",
//! )?;
//! assert_eq!(program.text.len(), 4);
//! # Ok::<(), ce_isa::asm::AsmError>(())
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
mod inst;
mod opcode;
mod reg;

pub use encode::{decode, encode, DecodeError};
pub use inst::Instruction;
pub use opcode::{Opcode, OperandClass, OperationKind};
pub use reg::Reg;

/// Base address at which assembled text (code) is placed.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base address at which assembled data is placed.
pub const DATA_BASE: u32 = 0x1001_0000;
/// Initial stack pointer value used by the emulator.
pub const STACK_TOP: u32 = 0x7fff_fffc;
