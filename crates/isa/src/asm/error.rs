//! Assembler error type.

use std::error::Error;
use std::fmt;

/// Error produced while assembling source text.
///
/// Carries the 1-based source line and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let err = AsmError::new(7, "unknown mnemonic `bogus`");
        assert_eq!(err.to_string(), "line 7: unknown mnemonic `bogus`");
    }
}
