//! The two-pass assembler driver.

use super::error::AsmError;
use super::operand::{self, MemOffset, Operand};
use super::Program;
use crate::{Instruction, Opcode, Reg, DATA_BASE, TEXT_BASE};
use std::collections::HashMap;

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, undefined or duplicate labels, and out-of-range
/// immediates.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let statements = parse_lines(source)?;
    let (items, symbols, data) = first_pass(statements)?;
    let text = second_pass(&items, &symbols)?;
    Ok(Program { text, data, text_base: TEXT_BASE, data_base: DATA_BASE, symbols })
}

/// One source statement carrying its original line number.
#[derive(Debug)]
enum Statement {
    Label(usize, String),
    Directive(usize, String, String),
    Instruction(usize, String, String),
}

/// A text-segment instruction statement after pass 1: operands parsed, word
/// position fixed.
#[derive(Debug)]
struct TextItem {
    line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
    /// Index of the first emitted word within the text segment.
    word: u32,
    /// Number of words this statement expands to.
    len: u32,
}

fn parse_lines(source: &str) -> Result<Vec<Statement>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = strip_comment(raw);
        // Peel off any leading labels.
        loop {
            let trimmed = text.trim_start();
            match label_prefix(trimmed) {
                Some((label, rest)) => {
                    if !operand::is_symbol(label) {
                        return Err(AsmError::new(line, format!("invalid label `{label}`")));
                    }
                    out.push(Statement::Label(line, label.to_owned()));
                    text = rest;
                }
                None => break,
            }
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        let (head, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        if head.starts_with('.') {
            out.push(Statement::Directive(line, head.to_owned(), rest.to_owned()));
        } else {
            out.push(Statement::Instruction(line, head.to_lowercase(), rest.to_owned()));
        }
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => escape = true,
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            '#' | ';' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a leading `label:` off `s`, if present.
fn label_prefix(s: &str) -> Option<(&str, &str)> {
    let colon = s.find(':')?;
    let label = &s[..colon];
    // Reject things like `lw r1, 4(r2) : junk` — labels contain no spaces,
    // and string/char operands never precede a colon in valid code.
    if label.contains(char::is_whitespace) || label.is_empty() {
        return None;
    }
    Some((label, &s[colon + 1..]))
}

#[derive(PartialEq)]
enum Segment {
    Text,
    Data,
}

type Pass1 = (Vec<TextItem>, HashMap<String, u32>, Vec<u8>);

fn first_pass(statements: Vec<Statement>) -> Result<Pass1, AsmError> {
    let mut items = Vec::new();
    let mut symbols = HashMap::new();
    let mut data = Vec::new();
    let mut segment = Segment::Text;
    let mut word: u32 = 0;

    let define = |symbols: &mut HashMap<String, u32>, line, name: &str, addr| {
        if symbols.insert(name.to_owned(), addr).is_some() {
            return Err(AsmError::new(line, format!("duplicate label `{name}`")));
        }
        Ok(())
    };

    for stmt in statements {
        match stmt {
            Statement::Label(line, name) => {
                let addr = match segment {
                    Segment::Text => TEXT_BASE + word * 4,
                    Segment::Data => DATA_BASE + data.len() as u32,
                };
                define(&mut symbols, line, &name, addr)?;
            }
            Statement::Directive(line, name, args) => match name.as_str() {
                ".text" => segment = Segment::Text,
                ".data" => segment = Segment::Data,
                ".globl" | ".global" | ".ent" | ".end" => {}
                ".word" | ".half" | ".byte" | ".space" | ".asciiz" | ".ascii" | ".align" => {
                    if segment != Segment::Data {
                        return Err(AsmError::new(line, format!("`{name}` outside .data")));
                    }
                    emit_data(&mut data, line, &name, &args, &mut symbols)?;
                }
                other => {
                    return Err(AsmError::new(line, format!("unknown directive `{other}`")))
                }
            },
            Statement::Instruction(line, mnemonic, rest) => {
                if segment != Segment::Text {
                    return Err(AsmError::new(line, "instruction outside .text"));
                }
                let operands = operand::split_operands(&rest)
                    .iter()
                    .map(|s| operand::parse_operand(s, line))
                    .collect::<Result<Vec<_>, _>>()?;
                let len = expansion_len(&mnemonic, &operands, line)?;
                items.push(TextItem { line, mnemonic, operands, word, len });
                word += len;
            }
        }
    }
    Ok((items, symbols, data))
}

fn emit_data(
    data: &mut Vec<u8>,
    line: usize,
    directive: &str,
    args: &str,
    symbols: &mut HashMap<String, u32>,
) -> Result<(), AsmError> {
    match directive {
        ".word" | ".half" | ".byte" => {
            // No implicit alignment: padding here would land *after* any
            // label already recorded for this address. Use `.align` instead.
            let size = match directive {
                ".word" => 4usize,
                ".half" => 2,
                _ => 1,
            };
            for part in operand::split_operands(args) {
                let value = match operand::parse_literal(&part) {
                    Some(v) => v,
                    None if operand::is_symbol(&part) => {
                        // Address constant: only already-defined symbols are
                        // supported (forward data references are rare in the
                        // kernels and easy to reorder around).
                        *symbols.get(&part).ok_or_else(|| {
                            AsmError::new(
                                line,
                                format!("symbol `{part}` must be defined before use in data"),
                            )
                        })? as i64
                    }
                    None => {
                        return Err(AsmError::new(line, format!("bad data value `{part}`")))
                    }
                };
                let bytes = (value as u64).to_le_bytes();
                data.extend_from_slice(&bytes[..size]);
            }
        }
        ".space" => {
            let n = operand::parse_literal(args)
                .filter(|&n| n >= 0)
                .ok_or_else(|| AsmError::new(line, format!("bad .space size `{args}`")))?;
            data.extend(std::iter::repeat_n(0, n as usize));
        }
        ".asciiz" | ".ascii" => {
            let mut bytes = operand::parse_string(args, line)?;
            if directive == ".asciiz" {
                bytes.push(0);
            }
            data.extend_from_slice(&bytes);
        }
        ".align" => {
            let n = operand::parse_literal(args)
                .filter(|&n| (0..=12).contains(&n))
                .ok_or_else(|| AsmError::new(line, format!("bad .align argument `{args}`")))?;
            let align = 1usize << n;
            while !data.len().is_multiple_of(align) {
                data.push(0);
            }
        }
        _ => unreachable!("caller filters directives"),
    }
    Ok(())
}

/// Number of machine instructions a statement expands to.
fn expansion_len(mnemonic: &str, operands: &[Operand], line: usize) -> Result<u32, AsmError> {
    Ok(match mnemonic {
        "li" => match operands.get(1) {
            Some(&Operand::Imm(v)) => li_len(v),
            _ => return Err(AsmError::new(line, "li needs a register and a literal")),
        },
        "la" => 2,
        "blt" | "bgt" | "ble" | "bge" | "bltu" | "bgeu" => 2,
        "move" | "not" | "neg" | "b" | "beqz" | "bnez" | "clear" => 1,
        other => {
            let canonical = alias(other).unwrap_or(other);
            if Opcode::from_mnemonic(canonical).is_none() {
                return Err(AsmError::new(line, format!("unknown mnemonic `{other}`")));
            }
            1
        }
    })
}

fn li_len(v: i64) -> u32 {
    // One instruction when a single addiu (sign-extended 16-bit) or a bare
    // lui (low halfword zero) suffices; otherwise lui + ori.
    if i16::try_from(v).is_ok() || v & 0xFFFF == 0 {
        1
    } else {
        2
    }
}

/// Convenience aliases for real opcodes.
fn alias(mnemonic: &str) -> Option<&'static str> {
    Some(match mnemonic {
        "add" => "addu",
        "sub" => "subu",
        "addi" => "addiu",
        _ => return None,
    })
}

fn second_pass(
    items: &[TextItem],
    symbols: &HashMap<String, u32>,
) -> Result<Vec<Instruction>, AsmError> {
    let mut text = Vec::new();
    for item in items {
        let before = text.len();
        emit_item(item, symbols, &mut text)?;
        debug_assert_eq!(text.len() - before, item.len as usize, "pass-1 size mismatch");
    }
    Ok(text)
}

struct Ctx<'a> {
    line: usize,
    symbols: &'a HashMap<String, u32>,
}

impl Ctx<'_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn resolve(&self, name: &str) -> Result<u32, AsmError> {
        self.symbols
            .get(name)
            .copied()
            .ok_or_else(|| self.err(format!("undefined label `{name}`")))
    }

    fn reg(&self, op: Option<&Operand>) -> Result<Reg, AsmError> {
        match op {
            Some(&Operand::Reg(r)) => Ok(r),
            other => Err(self.err(format!("expected register, got {other:?}"))),
        }
    }

    fn imm16(&self, op: Option<&Operand>) -> Result<i32, AsmError> {
        match op {
            Some(&Operand::Imm(v)) => {
                if i16::try_from(v).is_ok() || u16::try_from(v).is_ok() {
                    Ok(v as i32)
                } else {
                    Err(self.err(format!("immediate {v} does not fit in 16 bits")))
                }
            }
            other => Err(self.err(format!("expected immediate, got {other:?}"))),
        }
    }

    fn shamt(&self, op: Option<&Operand>) -> Result<u8, AsmError> {
        match op {
            Some(&Operand::Imm(v)) if (0..32).contains(&v) => Ok(v as u8),
            other => Err(self.err(format!("expected shift amount 0–31, got {other:?}"))),
        }
    }

    /// Branch displacement (in words, relative to the slot after the branch)
    /// from the branch's own word index to a label or literal displacement.
    fn branch_disp(&self, op: Option<&Operand>, branch_word: u32) -> Result<i32, AsmError> {
        match op {
            Some(Operand::Symbol(name)) => {
                let target = self.resolve(name)?;
                if target < TEXT_BASE || target % 4 != 0 {
                    return Err(self.err(format!("branch target `{name}` is not code")));
                }
                let target_word = (target - TEXT_BASE) / 4;
                let disp = target_word as i64 - (branch_word as i64 + 1);
                i32::try_from(disp).map_err(|_| self.err("branch displacement overflow"))
            }
            Some(&Operand::Imm(v)) => Ok(v as i32),
            other => Err(self.err(format!("expected branch target, got {other:?}"))),
        }
    }

    fn jump_target(&self, op: Option<&Operand>) -> Result<u32, AsmError> {
        match op {
            Some(Operand::Symbol(name)) => Ok(self.resolve(name)? / 4),
            Some(&Operand::Imm(v)) if v >= 0 => Ok((v as u32) / 4),
            other => Err(self.err(format!("expected jump target, got {other:?}"))),
        }
    }

    fn mem_operand(&self, op: Option<&Operand>) -> Result<(i32, Reg), AsmError> {
        match op {
            Some(Operand::Mem { offset, base }) => {
                let value = match offset {
                    MemOffset::Literal(v) => *v,
                    // Data-relative: symbolic offsets are resolved relative to
                    // the data base so they pair with the `gp` register, which
                    // the emulator initializes to DATA_BASE (the paper's own
                    // example uses exactly this `lw $3, -32676($28)` idiom).
                    MemOffset::Symbol(name) => i64::from(self.resolve(name)?) - i64::from(DATA_BASE),
                };
                let value = i32::try_from(value)
                    .ok()
                    .filter(|v| i16::try_from(*v).is_ok())
                    .ok_or_else(|| self.err(format!("memory offset {value} out of range")))?;
                Ok((value, *base))
            }
            other => Err(self.err(format!("expected memory operand, got {other:?}"))),
        }
    }
}

fn emit_item(
    item: &TextItem,
    symbols: &HashMap<String, u32>,
    out: &mut Vec<Instruction>,
) -> Result<(), AsmError> {
    use Opcode::*;
    let ctx = Ctx { line: item.line, symbols };
    let ops = &item.operands;
    let get = |i: usize| ops.get(i);
    let mnemonic = alias(&item.mnemonic).unwrap_or(&item.mnemonic);

    match mnemonic {
        // ---- pseudo-instructions ----
        "li" => {
            let rt = ctx.reg(get(0))?;
            let v = match get(1) {
                Some(&Operand::Imm(v)) => v,
                _ => return Err(ctx.err("li needs a literal")),
            };
            if i16::try_from(v).is_ok() {
                out.push(Instruction::imm(Addiu, rt, Reg::ZERO, v as i32));
            } else if v & 0xFFFF == 0 {
                out.push(Instruction::lui(rt, ((v >> 16) & 0xFFFF) as i32));
            } else {
                out.push(Instruction::lui(rt, ((v >> 16) & 0xFFFF) as i32));
                out.push(Instruction::imm(Ori, rt, rt, (v & 0xFFFF) as i32));
            }
        }
        "la" => {
            let rt = ctx.reg(get(0))?;
            let addr = match get(1) {
                Some(Operand::Symbol(name)) => ctx.resolve(name)?,
                Some(&Operand::Imm(v)) if v >= 0 => v as u32,
                other => return Err(ctx.err(format!("la needs a label, got {other:?}"))),
            };
            out.push(Instruction::lui(rt, ((addr >> 16) & 0xFFFF) as i32));
            out.push(Instruction::imm(Ori, rt, rt, (addr & 0xFFFF) as i32));
        }
        "move" => {
            let rd = ctx.reg(get(0))?;
            let rs = ctx.reg(get(1))?;
            out.push(Instruction::rrr(Addu, rd, rs, Reg::ZERO));
        }
        "clear" => {
            let rd = ctx.reg(get(0))?;
            out.push(Instruction::rrr(Addu, rd, Reg::ZERO, Reg::ZERO));
        }
        "not" => {
            let rd = ctx.reg(get(0))?;
            let rs = ctx.reg(get(1))?;
            out.push(Instruction::rrr(Nor, rd, rs, Reg::ZERO));
        }
        "neg" => {
            let rd = ctx.reg(get(0))?;
            let rs = ctx.reg(get(1))?;
            out.push(Instruction::rrr(Subu, rd, Reg::ZERO, rs));
        }
        "b" => {
            let disp = ctx.branch_disp(get(0), item.word)?;
            out.push(Instruction::branch2(Beq, Reg::ZERO, Reg::ZERO, disp));
        }
        "beqz" => {
            let rs = ctx.reg(get(0))?;
            let disp = ctx.branch_disp(get(1), item.word)?;
            out.push(Instruction::branch2(Beq, rs, Reg::ZERO, disp));
        }
        "bnez" => {
            let rs = ctx.reg(get(0))?;
            let disp = ctx.branch_disp(get(1), item.word)?;
            out.push(Instruction::branch2(Bne, rs, Reg::ZERO, disp));
        }
        "blt" | "bgt" | "ble" | "bge" | "bltu" | "bgeu" => {
            let rs = ctx.reg(get(0))?;
            let rt = ctx.reg(get(1))?;
            // The branch itself is the second emitted instruction.
            let disp = ctx.branch_disp(get(2), item.word + 1)?;
            let (cmp_a, cmp_b, branch_op) = match mnemonic {
                "blt" => (rs, rt, Bne),
                "bgt" => (rt, rs, Bne),
                "ble" => (rt, rs, Beq),
                "bge" => (rs, rt, Beq),
                "bltu" => (rs, rt, Bne),
                _ => (rs, rt, Beq), // bgeu
            };
            let slt_op = if mnemonic.ends_with('u') { Sltu } else { Slt };
            out.push(Instruction::rrr(slt_op, Reg::AT, cmp_a, cmp_b));
            out.push(Instruction::branch2(branch_op, Reg::AT, Reg::ZERO, disp));
        }

        // ---- real instructions ----
        other => {
            let opcode = Opcode::from_mnemonic(other)
                .ok_or_else(|| ctx.err(format!("unknown mnemonic `{other}`")))?;
            let inst = match opcode.operand_class() {
                crate::OperandClass::RdRsRt => {
                    Instruction::rrr(opcode, ctx.reg(get(0))?, ctx.reg(get(1))?, ctx.reg(get(2))?)
                }
                crate::OperandClass::RdRtShamt => {
                    Instruction::shift(opcode, ctx.reg(get(0))?, ctx.reg(get(1))?, ctx.shamt(get(2))?)
                }
                crate::OperandClass::RdRtRs => Instruction::shift_var(
                    opcode,
                    ctx.reg(get(0))?,
                    ctx.reg(get(1))?,
                    ctx.reg(get(2))?,
                ),
                crate::OperandClass::RtRsImm => {
                    Instruction::imm(opcode, ctx.reg(get(0))?, ctx.reg(get(1))?, ctx.imm16(get(2))?)
                }
                crate::OperandClass::RtImm => {
                    Instruction::lui(ctx.reg(get(0))?, ctx.imm16(get(1))?)
                }
                crate::OperandClass::Mem => {
                    let rt = ctx.reg(get(0))?;
                    let (imm, base) = ctx.mem_operand(get(1))?;
                    Instruction::mem(opcode, rt, imm, base)
                }
                crate::OperandClass::BranchRsRt => {
                    let rs = ctx.reg(get(0))?;
                    let rt = ctx.reg(get(1))?;
                    let disp = ctx.branch_disp(get(2), item.word)?;
                    Instruction::branch2(opcode, rs, rt, disp)
                }
                crate::OperandClass::BranchRs => {
                    let rs = ctx.reg(get(0))?;
                    let disp = ctx.branch_disp(get(1), item.word)?;
                    Instruction::branch1(opcode, rs, disp)
                }
                crate::OperandClass::JumpTarget => {
                    Instruction::jump(opcode, ctx.jump_target(get(0))?)
                }
                crate::OperandClass::JumpReg => Instruction::jr(ctx.reg(get(0))?),
                crate::OperandClass::JumpRegLink => {
                    if ops.len() == 1 {
                        Instruction::jalr(Reg::RA, ctx.reg(get(0))?)
                    } else {
                        Instruction::jalr(ctx.reg(get(0))?, ctx.reg(get(1))?)
                    }
                }
                crate::OperandClass::None => Instruction {
                    opcode,
                    ..Instruction::NOP
                },
            };
            out.push(inst);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    #[test]
    fn minimal_program() {
        let p = asm("main: addiu r1, r0, 5\n halt\n");
        assert_eq!(p.text.len(), 2);
        assert_eq!(p.entry(), TEXT_BASE);
        assert_eq!(p.text[0], Instruction::imm(Opcode::Addiu, Reg::new(1), Reg::ZERO, 5));
        assert_eq!(p.text[1], Instruction::HALT);
    }

    #[test]
    fn backward_branch_displacement() {
        let p = asm("loop: addiu r1, r1, -1\n bne r1, r0, loop\n halt\n");
        // bne at word 1, target word 0: disp = 0 - 2 = -2.
        assert_eq!(p.text[1], Instruction::branch2(Opcode::Bne, Reg::new(1), Reg::ZERO, -2));
    }

    #[test]
    fn forward_branch_displacement() {
        let p = asm("beq r1, r2, done\n nop\n nop\ndone: halt\n");
        assert_eq!(p.text[0].imm, 2);
    }

    #[test]
    fn li_expansions() {
        let p = asm("li r1, 5\nli r2, -3\nli r3, 0x10000\nli r4, 0x12345\nhalt\n");
        assert_eq!(p.text.len(), 6);
        assert_eq!(p.text[0], Instruction::imm(Opcode::Addiu, Reg::new(1), Reg::ZERO, 5));
        assert_eq!(p.text[2], Instruction::lui(Reg::new(3), 1));
        assert_eq!(p.text[3], Instruction::lui(Reg::new(4), 1));
        assert_eq!(p.text[4], Instruction::imm(Opcode::Ori, Reg::new(4), Reg::new(4), 0x2345));
    }

    #[test]
    fn la_resolves_data_labels() {
        let p = asm(".data\nbuf: .space 16\n.text\nla t0, buf\nhalt\n");
        assert_eq!(p.symbols["buf"], DATA_BASE);
        assert_eq!(p.text[0], Instruction::lui(Reg::T0, (DATA_BASE >> 16) as i32));
        assert_eq!(
            p.text[1],
            Instruction::imm(Opcode::Ori, Reg::T0, Reg::T0, (DATA_BASE & 0xFFFF) as i32)
        );
    }

    #[test]
    fn symbolic_mem_offset_is_gp_relative() {
        let p = asm(".data\nx: .word 7\n.text\nlw t0, x(gp)\nhalt\n");
        assert_eq!(p.text[0], Instruction::mem(Opcode::Lw, Reg::T0, 0, Reg::GP));
    }

    #[test]
    fn data_layout_and_alignment() {
        let p = asm(".data\na: .byte 1, 2\n.align 2\nb: .word 0x11223344\nc: .asciiz \"ok\"\n.align 2\nd: .word 5\n.text\nhalt\n");
        assert_eq!(p.symbols["a"], DATA_BASE);
        assert_eq!(p.symbols["b"], DATA_BASE + 4); // explicitly aligned up from 2
        assert_eq!(&p.data[4..8], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(p.symbols["c"], DATA_BASE + 8);
        assert_eq!(&p.data[8..11], b"ok\0");
        assert_eq!(p.symbols["d"], DATA_BASE + 12);
    }

    #[test]
    fn compound_branch_pseudos() {
        let p = asm("start: blt r4, r5, start\n halt\n");
        assert_eq!(p.text.len(), 3);
        assert_eq!(p.text[0], Instruction::rrr(Opcode::Slt, Reg::AT, Reg::A0, Reg::A1));
        // The bne is at word 1, target word 0: disp = -2.
        assert_eq!(p.text[1], Instruction::branch2(Opcode::Bne, Reg::AT, Reg::ZERO, -2));
    }

    #[test]
    fn jal_and_jr() {
        let p = asm("main: jal f\n halt\nf: jr ra\n");
        assert_eq!(p.text[0], Instruction::jump(Opcode::Jal, (TEXT_BASE / 4) + 2));
        assert_eq!(p.text[2], Instruction::jr(Reg::RA));
    }

    #[test]
    fn errors_report_line_numbers() {
        let err = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = assemble("beq r1, r2, nowhere\n").unwrap_err();
        assert!(err.message.contains("undefined label"));

        let err = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(err.message.contains("duplicate"));

        let err = assemble("addiu r1, r0, 99999\n").unwrap_err();
        assert!(err.message.contains("16 bits"));

        let err = assemble(".text\n.word 1\n").unwrap_err();
        assert!(err.message.contains("outside .data"));

        let err = assemble(".data\nnop\n").unwrap_err();
        assert!(err.message.contains("outside .text"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = asm("# leading comment\n\n  nop # trailing\n ; alt comment\n halt\n");
        assert_eq!(p.text.len(), 2);
    }

    #[test]
    fn entry_prefers_main() {
        let p = asm("helper: nop\nmain: halt\n");
        assert_eq!(p.entry(), TEXT_BASE + 4);
    }

    #[test]
    fn instruction_at_bounds() {
        let p = asm("nop\nhalt\n");
        assert!(p.instruction_at(TEXT_BASE).is_some());
        assert!(p.instruction_at(TEXT_BASE + 4).is_some());
        assert!(p.instruction_at(TEXT_BASE + 8).is_none());
        assert!(p.instruction_at(TEXT_BASE + 1).is_none());
        assert!(p.instruction_at(0).is_none());
    }
}
