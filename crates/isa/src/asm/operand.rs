//! Operand tokenization and parsing helpers.

use super::error::AsmError;
use crate::Reg;

/// A parsed operand token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Operand {
    /// A register.
    Reg(Reg),
    /// A literal immediate.
    Imm(i64),
    /// A symbolic reference (label).
    Symbol(String),
    /// A memory reference `offset(base)`; the offset may be literal or symbolic.
    Mem { offset: MemOffset, base: Reg },
}

/// The displacement part of a memory operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MemOffset {
    Literal(i64),
    Symbol(String),
}

/// Splits the operand field of an instruction line on commas that are not
/// inside quotes, trimming whitespace.
pub(crate) fn split_operands(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_char = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => {
                cur.push(c);
                escape = true;
            }
            '"' if !in_char => {
                in_str = !in_str;
                cur.push(c);
            }
            '\'' if !in_str => {
                in_char = !in_char;
                cur.push(c);
            }
            ',' if !in_str && !in_char => {
                parts.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let last = cur.trim();
    if !last.is_empty() {
        parts.push(last.to_owned());
    }
    parts
}

/// Parses a literal integer: decimal, `0x…` hex, `0b…` binary, optional
/// leading `-`, or a character literal.
pub(crate) fn parse_literal(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        return parse_char_body(body).map(|c| c as i64);
    }
    let (neg, mag) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = mag.strip_prefix("0x").or_else(|| mag.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = mag.strip_prefix("0b").or_else(|| mag.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        mag.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

fn parse_char_body(body: &str) -> Option<u8> {
    let mut chars = body.chars();
    let first = chars.next()?;
    let c = if first == '\\' {
        match chars.next()? {
            'n' => b'\n',
            't' => b'\t',
            '0' => 0,
            'r' => b'\r',
            '\\' => b'\\',
            '\'' => b'\'',
            _ => return None,
        }
    } else {
        u8::try_from(first as u32).ok()?
    };
    chars.next().is_none().then_some(c)
}

/// Parses one operand token into an [`Operand`].
pub(crate) fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    // Character literals first — `'('` must not be mistaken for a memory
    // operand.
    if s.starts_with('\'') {
        return parse_literal(s)
            .map(Operand::Imm)
            .ok_or_else(|| AsmError::new(line, format!("bad character literal `{s}`")));
    }
    // Memory operand: `offset(base)` where offset may be empty, literal, or symbolic.
    if let Some(open) = s.find('(') {
        if let Some(stripped) = s.strip_suffix(')') {
            let (off_str, base_str) = stripped.split_at(open);
            let base_str = &base_str[1..];
            let base = Reg::parse(base_str.trim()).ok_or_else(|| {
                AsmError::new(line, format!("invalid base register `{base_str}`"))
            })?;
            let off_str = off_str.trim();
            let offset = if off_str.is_empty() {
                MemOffset::Literal(0)
            } else if let Some(v) = parse_literal(off_str) {
                MemOffset::Literal(v)
            } else if is_symbol(off_str) {
                MemOffset::Symbol(off_str.to_owned())
            } else {
                return Err(AsmError::new(line, format!("invalid offset `{off_str}`")));
            };
            return Ok(Operand::Mem { offset, base });
        }
        return Err(AsmError::new(line, format!("unbalanced parentheses in `{s}`")));
    }
    if let Some(reg) = Reg::parse(s) {
        return Ok(Operand::Reg(reg));
    }
    if let Some(v) = parse_literal(s) {
        return Ok(Operand::Imm(v));
    }
    if is_symbol(s) {
        return Ok(Operand::Symbol(s.to_owned()));
    }
    Err(AsmError::new(line, format!("unrecognized operand `{s}`")))
}

/// Whether `s` is a valid label/symbol name.
pub(crate) fn is_symbol(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Parses a quoted string literal (for `.asciiz`), handling escapes.
pub(crate) fn parse_string(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let body = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, format!("expected quoted string, got `{s}`")))?;
    let mut out = Vec::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let esc = chars
                .next()
                .ok_or_else(|| AsmError::new(line, "dangling escape in string"))?;
            out.push(match esc {
                'n' => b'\n',
                't' => b'\t',
                '0' => 0,
                'r' => b'\r',
                '\\' => b'\\',
                '"' => b'"',
                other => {
                    return Err(AsmError::new(line, format!("unknown escape `\\{other}`")))
                }
            });
        } else {
            let byte = u8::try_from(c as u32)
                .map_err(|_| AsmError::new(line, format!("non-ASCII character `{c}`")))?;
            out.push(byte);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_quotes_and_spacing() {
        assert_eq!(split_operands("r1, r2 ,r3"), vec!["r1", "r2", "r3"]);
        assert_eq!(split_operands(r#""a,b", 'x'"#), vec![r#""a,b""#, "'x'"]);
        assert_eq!(split_operands(""), Vec::<String>::new());
    }

    #[test]
    fn literals() {
        assert_eq!(parse_literal("42"), Some(42));
        assert_eq!(parse_literal("-17"), Some(-17));
        assert_eq!(parse_literal("0x10"), Some(16));
        assert_eq!(parse_literal("-0x10"), Some(-16));
        assert_eq!(parse_literal("0b101"), Some(5));
        assert_eq!(parse_literal("'a'"), Some(97));
        assert_eq!(parse_literal("'\\n'"), Some(10));
        assert_eq!(parse_literal("xyz"), None);
    }

    #[test]
    fn operands() {
        assert_eq!(parse_operand("t0", 1).unwrap(), Operand::Reg(Reg::T0));
        assert_eq!(parse_operand("-4", 1).unwrap(), Operand::Imm(-4));
        assert_eq!(parse_operand("loop", 1).unwrap(), Operand::Symbol("loop".into()));
        assert_eq!(
            parse_operand("8(sp)", 1).unwrap(),
            Operand::Mem { offset: MemOffset::Literal(8), base: Reg::SP }
        );
        assert_eq!(
            parse_operand("buf(t1)", 1).unwrap(),
            Operand::Mem { offset: MemOffset::Symbol("buf".into()), base: Reg::new(9) }
        );
        assert_eq!(
            parse_operand("(a0)", 1).unwrap(),
            Operand::Mem { offset: MemOffset::Literal(0), base: Reg::A0 }
        );
        assert!(parse_operand("8(nonreg)", 1).is_err());
        assert!(parse_operand("", 1).is_err());
        assert!(parse_operand("8(sp", 1).is_err());
    }

    #[test]
    fn strings() {
        assert_eq!(parse_string(r#""hi""#, 1).unwrap(), b"hi".to_vec());
        assert_eq!(parse_string(r#""a\nb\0""#, 1).unwrap(), vec![b'a', b'\n', b'b', 0]);
        assert!(parse_string("hi", 1).is_err());
        assert!(parse_string(r#""bad\q""#, 1).is_err());
    }

    #[test]
    fn symbols() {
        assert!(is_symbol("loop"));
        assert!(is_symbol("_x.y1"));
        assert!(!is_symbol("1abc"));
        assert!(!is_symbol("a-b"));
    }
}
