//! Two-pass text assembler.
//!
//! The accepted syntax is the familiar MIPS-lite dialect used throughout the
//! benchmark kernels:
//!
//! ```text
//!         .data
//! buf:    .space 256
//! tab:    .word 1, 2, 3
//! msg:    .asciiz "hi"
//!         .text
//! main:   la   t0, tab          # pseudo: lui+ori
//!         lw   t1, 0(t0)
//!         li   t2, 42           # pseudo: addiu / lui+ori
//! loop:   addiu t1, t1, -1
//!         bne  t1, zero, loop
//!         halt
//! ```
//!
//! * Comments start with `#` or `;` and run to end of line.
//! * Labels end with `:` and may share a line with an instruction.
//! * Registers accept numeric (`r4`, `$4`) and ABI (`a0`, `$a0`) names.
//! * Immediates may be decimal, hexadecimal (`0x…`), negative, or character
//!   literals (`'a'`).
//! * Pseudo-instructions `li`, `la`, `move`, `not`, `neg`, `b`, `blt`,
//!   `bgt`, `ble`, `bge`, `beqz`, `bnez` expand to real instructions (the
//!   multi-instruction expansions use the assembler temporary `at`).

mod assembler;
mod error;
mod operand;

pub use assembler::assemble;
pub use error::AsmError;

use crate::Instruction;
use std::collections::HashMap;

/// An assembled program: text (decoded instructions), initialized data, and
/// the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instructions, in order, starting at [`text_base`](Self::text_base).
    pub text: Vec<Instruction>,
    /// Byte image of the data segment, starting at [`data_base`](Self::data_base).
    pub data: Vec<u8>,
    /// Address of the first instruction.
    pub text_base: u32,
    /// Address of the first data byte.
    pub data_base: u32,
    /// Label name → absolute address.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Address of the entry point: the `main` label if present, else the
    /// first instruction.
    pub fn entry(&self) -> u32 {
        self.symbols.get("main").copied().unwrap_or(self.text_base)
    }

    /// The instruction at an absolute address, if it lies in the text segment.
    pub fn instruction_at(&self, addr: u32) -> Option<&Instruction> {
        if addr < self.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        self.text.get(((addr - self.text_base) / 4) as usize)
    }

    /// Total static instruction count.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}
