//! The [`Instruction`] type and its dependence accessors.

use crate::{disasm, Opcode, OperandClass, Reg};
use std::fmt;

/// A decoded instruction: an [`Opcode`] plus register and immediate fields.
///
/// The fields follow MIPS conventions: `rd` is the R-type destination, `rs`
/// and `rt` the sources (with `rt` doubling as the I-type destination and the
/// store data source), `imm` the 16-bit immediate or 26-bit jump target, and
/// `shamt` the constant shift amount.
///
/// Rather than exposing raw fields, the dependence accessors [`defs`] and
/// [`uses`] answer the questions the rename/steering/issue logic actually
/// asks: which architectural register (if any) does this instruction write,
/// and which (up to two) does it read. `r0` never appears in either set.
///
/// [`defs`]: Instruction::defs
/// [`uses`]: Instruction::uses
///
/// ```
/// use ce_isa::{Instruction, Opcode, Reg};
///
/// let add = Instruction::rrr(Opcode::Addu, Reg::new(10), Reg::new(1), Reg::new(2));
/// assert_eq!(add.defs(), Some(Reg::new(10)));
/// assert_eq!(add.uses(), [Some(Reg::new(1)), Some(Reg::new(2))]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// R-type destination register.
    pub rd: Reg,
    /// First source register.
    pub rs: Reg,
    /// Second source / I-type destination register.
    pub rt: Reg,
    /// Sign-extended immediate, branch displacement (in instructions), or
    /// jump target word index.
    pub imm: i32,
    /// Constant shift amount for `sll`/`srl`/`sra`.
    pub shamt: u8,
}

impl Instruction {
    /// A canonical `nop`.
    pub const NOP: Instruction = Instruction {
        opcode: Opcode::Nop,
        rd: Reg::ZERO,
        rs: Reg::ZERO,
        rt: Reg::ZERO,
        imm: 0,
        shamt: 0,
    };

    /// A `halt` marker.
    pub const HALT: Instruction = Instruction {
        opcode: Opcode::Halt,
        rd: Reg::ZERO,
        rs: Reg::ZERO,
        rt: Reg::ZERO,
        imm: 0,
        shamt: 0,
    };

    /// Builds a three-register instruction `op rd, rs, rt`.
    pub fn rrr(opcode: Opcode, rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::RdRsRt);
        Instruction { opcode, rd, rs, rt, imm: 0, shamt: 0 }
    }

    /// Builds a constant shift `op rd, rt, shamt`.
    pub fn shift(opcode: Opcode, rd: Reg, rt: Reg, shamt: u8) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::RdRtShamt);
        debug_assert!(shamt < 32);
        Instruction { opcode, rd, rs: Reg::ZERO, rt, imm: 0, shamt }
    }

    /// Builds a variable shift `op rd, rt, rs`.
    pub fn shift_var(opcode: Opcode, rd: Reg, rt: Reg, rs: Reg) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::RdRtRs);
        Instruction { opcode, rd, rs, rt, imm: 0, shamt: 0 }
    }

    /// Builds an immediate ALU instruction `op rt, rs, imm`.
    pub fn imm(opcode: Opcode, rt: Reg, rs: Reg, imm: i32) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::RtRsImm);
        Instruction { opcode, rd: Reg::ZERO, rs, rt, imm, shamt: 0 }
    }

    /// Builds a `lui rt, imm`.
    pub fn lui(rt: Reg, imm: i32) -> Instruction {
        Instruction { opcode: Opcode::Lui, rd: Reg::ZERO, rs: Reg::ZERO, rt, imm, shamt: 0 }
    }

    /// Builds a load or store `op rt, imm(rs)`.
    pub fn mem(opcode: Opcode, rt: Reg, imm: i32, rs: Reg) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::Mem);
        Instruction { opcode, rd: Reg::ZERO, rs, rt, imm, shamt: 0 }
    }

    /// Builds a two-register branch `op rs, rt, disp` (displacement in
    /// instruction words relative to the next instruction).
    pub fn branch2(opcode: Opcode, rs: Reg, rt: Reg, disp: i32) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::BranchRsRt);
        Instruction { opcode, rd: Reg::ZERO, rs, rt, imm: disp, shamt: 0 }
    }

    /// Builds a one-register branch `op rs, disp`.
    pub fn branch1(opcode: Opcode, rs: Reg, disp: i32) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::BranchRs);
        Instruction { opcode, rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: disp, shamt: 0 }
    }

    /// Builds an absolute jump `j`/`jal` to an instruction word index.
    pub fn jump(opcode: Opcode, target_word: u32) -> Instruction {
        debug_assert_eq!(opcode.operand_class(), OperandClass::JumpTarget);
        Instruction {
            opcode,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: target_word as i32,
            shamt: 0,
        }
    }

    /// Builds a `jr rs`.
    pub fn jr(rs: Reg) -> Instruction {
        Instruction { opcode: Opcode::Jr, rd: Reg::ZERO, rs, rt: Reg::ZERO, imm: 0, shamt: 0 }
    }

    /// Builds a `jalr rd, rs`.
    pub fn jalr(rd: Reg, rs: Reg) -> Instruction {
        Instruction { opcode: Opcode::Jalr, rd, rs, rt: Reg::ZERO, imm: 0, shamt: 0 }
    }

    /// The architectural register written by this instruction, if any.
    ///
    /// Writes to `r0` are reported as `None` (they create no dependence).
    pub fn defs(&self) -> Option<Reg> {
        use OperandClass as C;
        let dst = match self.opcode.operand_class() {
            C::RdRsRt | C::RdRtShamt | C::RdRtRs | C::JumpRegLink => self.rd,
            C::RtRsImm | C::RtImm => self.rt,
            C::Mem if self.opcode.is_load() => self.rt,
            C::JumpTarget if self.opcode == Opcode::Jal => Reg::RA,
            _ => return None,
        };
        (!dst.is_zero()).then_some(dst)
    }

    /// The up-to-two architectural source registers of this instruction.
    ///
    /// Slot 0 is the "left" operand and slot 1 the "right" operand in the
    /// paper's terminology (Section 5.1). `r0` sources are reported as
    /// `None` because they are always ready.
    pub fn uses(&self) -> [Option<Reg>; 2] {
        use OperandClass as C;
        let keep = |r: Reg| (!r.is_zero()).then_some(r);
        match self.opcode.operand_class() {
            C::RdRsRt | C::BranchRsRt => [keep(self.rs), keep(self.rt)],
            C::RdRtShamt => [keep(self.rt), None],
            C::RdRtRs => [keep(self.rt), keep(self.rs)],
            C::RtRsImm | C::BranchRs | C::JumpReg | C::JumpRegLink => [keep(self.rs), None],
            C::RtImm | C::JumpTarget | C::None => [None, None],
            C::Mem => {
                if self.opcode.is_store() {
                    // Address register, then store data.
                    [keep(self.rs), keep(self.rt)]
                } else {
                    [keep(self.rs), None]
                }
            }
        }
    }

    /// Number of non-`r0` source registers.
    pub fn source_count(&self) -> usize {
        self.uses().iter().flatten().count()
    }

    /// Whether this instruction writes any architectural register.
    #[inline]
    pub fn writes_register(&self) -> bool {
        self.defs().is_some()
    }
}

impl Default for Instruction {
    fn default() -> Instruction {
        Instruction::NOP
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&disasm::format_instruction(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_defs_uses() {
        let i = Instruction::rrr(Opcode::Xor, Reg::new(16), Reg::new(2), Reg::new(19));
        assert_eq!(i.defs(), Some(Reg::new(16)));
        assert_eq!(i.uses(), [Some(Reg::new(2)), Some(Reg::new(19))]);
        assert_eq!(i.source_count(), 2);
    }

    #[test]
    fn zero_register_never_a_dependence() {
        let i = Instruction::rrr(Opcode::Addu, Reg::ZERO, Reg::ZERO, Reg::new(3));
        assert_eq!(i.defs(), None);
        assert_eq!(i.uses(), [None, Some(Reg::new(3))]);
    }

    #[test]
    fn load_defines_rt_uses_base() {
        let i = Instruction::mem(Opcode::Lw, Reg::new(3), -32676, Reg::new(28));
        assert_eq!(i.defs(), Some(Reg::new(3)));
        assert_eq!(i.uses(), [Some(Reg::new(28)), None]);
    }

    #[test]
    fn store_defines_nothing_uses_base_and_data() {
        let i = Instruction::mem(Opcode::Sw, Reg::new(3), -32676, Reg::new(28));
        assert_eq!(i.defs(), None);
        assert_eq!(i.uses(), [Some(Reg::new(28)), Some(Reg::new(3))]);
    }

    #[test]
    fn jal_writes_ra() {
        let i = Instruction::jump(Opcode::Jal, 0x100);
        assert_eq!(i.defs(), Some(Reg::RA));
        assert_eq!(i.uses(), [None, None]);
    }

    #[test]
    fn jalr_writes_rd_uses_rs() {
        let i = Instruction::jalr(Reg::new(31), Reg::new(25));
        assert_eq!(i.defs(), Some(Reg::new(31)));
        assert_eq!(i.uses(), [Some(Reg::new(25)), None]);
    }

    #[test]
    fn variable_shift_operand_order() {
        // sllv rd, rt, rs: rt is the value (left), rs the amount (right).
        let i = Instruction::shift_var(Opcode::Sllv, Reg::new(2), Reg::new(18), Reg::new(20));
        assert_eq!(i.uses(), [Some(Reg::new(18)), Some(Reg::new(20))]);
    }

    #[test]
    fn branch_uses_no_defs() {
        let i = Instruction::branch2(Opcode::Beq, Reg::new(18), Reg::new(2), -4);
        assert_eq!(i.defs(), None);
        assert_eq!(i.source_count(), 2);
    }

    #[test]
    fn lui_has_no_sources() {
        let i = Instruction::lui(Reg::new(5), 0x1001);
        assert_eq!(i.defs(), Some(Reg::new(5)));
        assert_eq!(i.uses(), [None, None]);
    }
}
