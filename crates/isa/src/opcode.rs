//! Opcode definitions and classification.

use std::fmt;

/// The operation performed by an [`Instruction`](crate::Instruction).
///
/// The set mirrors the MIPS-I integer subset that the paper's workloads
/// exercise: three-register ALU ops, immediate ALU ops, shifts (constant and
/// variable), multiply/divide, byte/half/word loads and stores, conditional
/// branches, jumps, and a `Halt` marker that ends emulation.
// Deliberately NOT #[non_exhaustive]: downstream emulators and simulators
// must be forced by the compiler to handle any opcode added to the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // Three-register ALU.
    /// `addu rd, rs, rt` — rd = rs + rt (wrapping).
    Addu,
    /// `subu rd, rs, rt` — rd = rs - rt (wrapping).
    Subu,
    /// `and rd, rs, rt`.
    And,
    /// `or rd, rs, rt`.
    Or,
    /// `xor rd, rs, rt`.
    Xor,
    /// `nor rd, rs, rt`.
    Nor,
    /// `slt rd, rs, rt` — signed set-less-than.
    Slt,
    /// `sltu rd, rs, rt` — unsigned set-less-than.
    Sltu,
    /// `mul rd, rs, rt` — low 32 bits of the product.
    Mul,
    /// `div rd, rs, rt` — signed quotient (0 when rt = 0).
    Div,
    /// `rem rd, rs, rt` — signed remainder (0 when rt = 0).
    Rem,

    // Shifts.
    /// `sll rd, rt, shamt` — shift left by a constant.
    Sll,
    /// `srl rd, rt, shamt` — logical shift right by a constant.
    Srl,
    /// `sra rd, rt, shamt` — arithmetic shift right by a constant.
    Sra,
    /// `sllv rd, rt, rs` — shift left by the low 5 bits of rs.
    Sllv,
    /// `srlv rd, rt, rs` — logical shift right by rs.
    Srlv,
    /// `srav rd, rt, rs` — arithmetic shift right by rs.
    Srav,

    // Immediate ALU.
    /// `addiu rt, rs, imm` — rt = rs + sign-extended imm (wrapping).
    Addiu,
    /// `andi rt, rs, imm` — zero-extended immediate AND.
    Andi,
    /// `ori rt, rs, imm` — zero-extended immediate OR.
    Ori,
    /// `xori rt, rs, imm` — zero-extended immediate XOR.
    Xori,
    /// `slti rt, rs, imm` — signed compare against sign-extended imm.
    Slti,
    /// `sltiu rt, rs, imm` — unsigned compare against sign-extended imm.
    Sltiu,
    /// `lui rt, imm` — load immediate into the upper halfword.
    Lui,

    // Loads.
    /// `lb rt, imm(rs)` — sign-extending byte load.
    Lb,
    /// `lbu rt, imm(rs)` — zero-extending byte load.
    Lbu,
    /// `lh rt, imm(rs)` — sign-extending halfword load.
    Lh,
    /// `lhu rt, imm(rs)` — zero-extending halfword load.
    Lhu,
    /// `lw rt, imm(rs)` — word load.
    Lw,

    // Stores.
    /// `sb rt, imm(rs)` — byte store.
    Sb,
    /// `sh rt, imm(rs)` — halfword store.
    Sh,
    /// `sw rt, imm(rs)` — word store.
    Sw,

    // Conditional branches (PC-relative).
    /// `beq rs, rt, label`.
    Beq,
    /// `bne rs, rt, label`.
    Bne,
    /// `blez rs, label` — branch if rs <= 0 (signed).
    Blez,
    /// `bgtz rs, label` — branch if rs > 0 (signed).
    Bgtz,
    /// `bltz rs, label` — branch if rs < 0 (signed).
    Bltz,
    /// `bgez rs, label` — branch if rs >= 0 (signed).
    Bgez,

    // Unconditional control transfer.
    /// `j target` — absolute jump.
    J,
    /// `jal target` — jump and link (writes `ra`).
    Jal,
    /// `jr rs` — jump to register.
    Jr,
    /// `jalr rd, rs` — jump to register and link into rd.
    Jalr,

    // Administrative.
    /// `nop` — no operation.
    Nop,
    /// `halt` — stop emulation; never appears in real hardware streams.
    Halt,
}

/// How an instruction's operand fields are laid out in assembly and encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandClass {
    /// `op rd, rs, rt` — three-register ALU.
    RdRsRt,
    /// `op rd, rt, shamt` — constant shift.
    RdRtShamt,
    /// `op rd, rt, rs` — variable shift (MIPS operand order).
    RdRtRs,
    /// `op rt, rs, imm` — immediate ALU.
    RtRsImm,
    /// `op rt, imm` — `lui`.
    RtImm,
    /// `op rt, imm(rs)` — load or store.
    Mem,
    /// `op rs, rt, label` — two-register compare-and-branch.
    BranchRsRt,
    /// `op rs, label` — one-register compare-and-branch.
    BranchRs,
    /// `op target` — absolute jump.
    JumpTarget,
    /// `op rs` — `jr`.
    JumpReg,
    /// `op rd, rs` — `jalr`.
    JumpRegLink,
    /// No operands (`nop`, `halt`).
    None,
}

/// Broad functional classification, used by the timing simulator to pick
/// functional units and model latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationKind {
    /// Integer ALU operation (including shifts and multiply/divide — the
    /// paper's machine has 8 symmetrical single-cycle units).
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump, call, or return.
    Jump,
    /// `nop`/`halt` administrative operations.
    Other,
}

impl Opcode {
    /// The assembler mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Addu => "addu",
            Subu => "subu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Slt => "slt",
            Sltu => "sltu",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Sllv => "sllv",
            Srlv => "srlv",
            Srav => "srav",
            Addiu => "addiu",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slti => "slti",
            Sltiu => "sltiu",
            Lui => "lui",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Beq => "beq",
            Bne => "bne",
            Blez => "blez",
            Bgtz => "bgtz",
            Bltz => "bltz",
            Bgez => "bgez",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// Looks up an opcode by mnemonic (pseudo-instructions are handled by the
    /// assembler, not here).
    pub fn from_mnemonic(name: &str) -> Option<Opcode> {
        use Opcode::*;
        Some(match name {
            "addu" => Addu,
            "subu" => Subu,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "nor" => Nor,
            "slt" => Slt,
            "sltu" => Sltu,
            "mul" => Mul,
            "div" => Div,
            "rem" => Rem,
            "sll" => Sll,
            "srl" => Srl,
            "sra" => Sra,
            "sllv" => Sllv,
            "srlv" => Srlv,
            "srav" => Srav,
            "addiu" => Addiu,
            "andi" => Andi,
            "ori" => Ori,
            "xori" => Xori,
            "slti" => Slti,
            "sltiu" => Sltiu,
            "lui" => Lui,
            "lb" => Lb,
            "lbu" => Lbu,
            "lh" => Lh,
            "lhu" => Lhu,
            "lw" => Lw,
            "sb" => Sb,
            "sh" => Sh,
            "sw" => Sw,
            "beq" => Beq,
            "bne" => Bne,
            "blez" => Blez,
            "bgtz" => Bgtz,
            "bltz" => Bltz,
            "bgez" => Bgez,
            "j" => J,
            "jal" => Jal,
            "jr" => Jr,
            "jalr" => Jalr,
            "nop" => Nop,
            "halt" => Halt,
            _ => return None,
        })
    }

    /// The operand layout for this opcode.
    pub fn operand_class(self) -> OperandClass {
        use Opcode::*;
        match self {
            Addu | Subu | And | Or | Xor | Nor | Slt | Sltu | Mul | Div | Rem => {
                OperandClass::RdRsRt
            }
            Sll | Srl | Sra => OperandClass::RdRtShamt,
            Sllv | Srlv | Srav => OperandClass::RdRtRs,
            Addiu | Andi | Ori | Xori | Slti | Sltiu => OperandClass::RtRsImm,
            Lui => OperandClass::RtImm,
            Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw => OperandClass::Mem,
            Beq | Bne => OperandClass::BranchRsRt,
            Blez | Bgtz | Bltz | Bgez => OperandClass::BranchRs,
            J | Jal => OperandClass::JumpTarget,
            Jr => OperandClass::JumpReg,
            Jalr => OperandClass::JumpRegLink,
            Nop | Halt => OperandClass::None,
        }
    }

    /// The broad functional classification of this opcode.
    pub fn kind(self) -> OperationKind {
        use Opcode::*;
        match self {
            Lb | Lbu | Lh | Lhu | Lw => OperationKind::Load,
            Sb | Sh | Sw => OperationKind::Store,
            Beq | Bne | Blez | Bgtz | Bltz | Bgez => OperationKind::Branch,
            J | Jal | Jr | Jalr => OperationKind::Jump,
            Nop | Halt => OperationKind::Other,
            _ => OperationKind::Alu,
        }
    }

    /// Whether this is a load.
    #[inline]
    pub fn is_load(self) -> bool {
        self.kind() == OperationKind::Load
    }

    /// Whether this is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        self.kind() == OperationKind::Store
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_conditional_branch(self) -> bool {
        self.kind() == OperationKind::Branch
    }

    /// Whether this is any control-transfer instruction (conditional or not).
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self.kind(), OperationKind::Branch | OperationKind::Jump)
    }

    /// Memory access width in bytes for loads/stores, `None` otherwise.
    pub fn access_bytes(self) -> Option<u32> {
        use Opcode::*;
        match self {
            Lb | Lbu | Sb => Some(1),
            Lh | Lhu | Sh => Some(2),
            Lw | Sw => Some(4),
            _ => None,
        }
    }

    /// All opcodes, in a fixed order (useful for exhaustive tests).
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Addu, Subu, And, Or, Xor, Nor, Slt, Sltu, Mul, Div, Rem, Sll, Srl, Sra, Sllv, Srlv,
            Srav, Addiu, Andi, Ori, Xori, Slti, Sltiu, Lui, Lb, Lbu, Lh, Lhu, Lw, Sb, Sh, Sw,
            Beq, Bne, Blez, Bgtz, Bltz, Bgez, J, Jal, Jr, Jalr, Nop, Halt,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip_all() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn unknown_mnemonic_is_none() {
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn kinds_are_consistent() {
        assert!(Opcode::Lw.is_load());
        assert!(Opcode::Sb.is_store());
        assert!(Opcode::Beq.is_conditional_branch());
        assert!(Opcode::J.is_control());
        assert!(!Opcode::Addu.is_control());
        assert_eq!(Opcode::Mul.kind(), OperationKind::Alu);
    }

    #[test]
    fn access_widths() {
        assert_eq!(Opcode::Lw.access_bytes(), Some(4));
        assert_eq!(Opcode::Lh.access_bytes(), Some(2));
        assert_eq!(Opcode::Sb.access_bytes(), Some(1));
        assert_eq!(Opcode::Addu.access_bytes(), None);
    }

    #[test]
    fn all_is_unique() {
        let ops = Opcode::all();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
