//! Fixed 32-bit binary instruction encoding.
//!
//! The layout follows MIPS-I conventions:
//!
//! * **R-type** (`primary = 0`): `| 0:6 | rs:5 | rt:5 | rd:5 | shamt:5 | funct:6 |`
//! * **I-type**: `| primary:6 | rs:5 | rt:5 | imm:16 |`
//! * **J-type**: `| primary:6 | target:26 |` (target is an instruction word
//!   index, as in MIPS)
//!
//! `bltz`/`bgez` share the REGIMM primary (1) and are distinguished by the
//! `rt` field. `halt` uses primary 0x3F, which MIPS leaves unused.

use crate::{Instruction, Opcode, OperandClass, Reg};
use std::error::Error;
use std::fmt;

/// Error returned by [`decode`] for words that do not correspond to any
/// instruction in the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

const PRIMARY_SPECIAL: u32 = 0x00;
const PRIMARY_REGIMM: u32 = 0x01;
const PRIMARY_HALT: u32 = 0x3F;

fn r_funct(op: Opcode) -> Option<u32> {
    use Opcode::*;
    Some(match op {
        Sll => 0x00,
        Srl => 0x02,
        Sra => 0x03,
        Sllv => 0x04,
        Srlv => 0x06,
        Srav => 0x07,
        Jr => 0x08,
        Jalr => 0x09,
        Mul => 0x18,
        Div => 0x1A,
        Rem => 0x1B,
        Addu => 0x21,
        Subu => 0x23,
        And => 0x24,
        Or => 0x25,
        Xor => 0x26,
        Nor => 0x27,
        Slt => 0x2A,
        Sltu => 0x2B,
        Nop => 0x3F,
        _ => return None,
    })
}

fn funct_opcode(funct: u32) -> Option<Opcode> {
    use Opcode::*;
    Some(match funct {
        0x00 => Sll,
        0x02 => Srl,
        0x03 => Sra,
        0x04 => Sllv,
        0x06 => Srlv,
        0x07 => Srav,
        0x08 => Jr,
        0x09 => Jalr,
        0x18 => Mul,
        0x1A => Div,
        0x1B => Rem,
        0x21 => Addu,
        0x23 => Subu,
        0x24 => And,
        0x25 => Or,
        0x26 => Xor,
        0x27 => Nor,
        0x2A => Slt,
        0x2B => Sltu,
        0x3F => Nop,
        _ => return None,
    })
}

fn i_primary(op: Opcode) -> Option<u32> {
    use Opcode::*;
    Some(match op {
        J => 0x02,
        Jal => 0x03,
        Beq => 0x04,
        Bne => 0x05,
        Blez => 0x06,
        Bgtz => 0x07,
        Addiu => 0x09,
        Slti => 0x0A,
        Sltiu => 0x0B,
        Andi => 0x0C,
        Ori => 0x0D,
        Xori => 0x0E,
        Lui => 0x0F,
        Lb => 0x20,
        Lh => 0x21,
        Lw => 0x23,
        Lbu => 0x24,
        Lhu => 0x25,
        Sb => 0x28,
        Sh => 0x29,
        Sw => 0x2B,
        _ => return None,
    })
}

fn primary_opcode(primary: u32) -> Option<Opcode> {
    use Opcode::*;
    Some(match primary {
        0x02 => J,
        0x03 => Jal,
        0x04 => Beq,
        0x05 => Bne,
        0x06 => Blez,
        0x07 => Bgtz,
        0x09 => Addiu,
        0x0A => Slti,
        0x0B => Sltiu,
        0x0C => Andi,
        0x0D => Ori,
        0x0E => Xori,
        0x0F => Lui,
        0x20 => Lb,
        0x21 => Lh,
        0x23 => Lw,
        0x24 => Lbu,
        0x25 => Lhu,
        0x28 => Sb,
        0x29 => Sh,
        0x2B => Sw,
        _ => return None,
    })
}

/// Encodes an instruction into its 32-bit binary form.
///
/// Immediates are truncated to their field width (16 bits for I-type, 26 for
/// J-type); [`decode`] sign-extends them back, so round-tripping is exact for
/// in-range values.
pub fn encode(inst: &Instruction) -> u32 {
    let rs = (inst.rs.index() as u32) << 21;
    let rt = (inst.rt.index() as u32) << 16;
    let rd = (inst.rd.index() as u32) << 11;
    let shamt = (inst.shamt as u32) << 6;
    let imm16 = (inst.imm as u32) & 0xFFFF;

    if inst.opcode == Opcode::Halt {
        return PRIMARY_HALT << 26;
    }
    if inst.opcode == Opcode::Bltz {
        return (PRIMARY_REGIMM << 26) | rs | imm16;
    }
    if inst.opcode == Opcode::Bgez {
        return (PRIMARY_REGIMM << 26) | rs | (1 << 16) | imm16;
    }
    if let Some(funct) = r_funct(inst.opcode) {
        return (PRIMARY_SPECIAL << 26) | rs | rt | rd | shamt | funct;
    }
    let primary = i_primary(inst.opcode)
        .expect("every opcode is either R-type, REGIMM, HALT, or has a primary code");
    if inst.opcode.operand_class() == OperandClass::JumpTarget {
        return (primary << 26) | ((inst.imm as u32) & 0x03FF_FFFF);
    }
    (primary << 26) | rs | rt | imm16
}

/// Decodes a 32-bit word into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeError`] when the word's primary opcode or function field
/// does not correspond to any instruction in the ISA.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let primary = word >> 26;
    let rs = Reg::new(((word >> 21) & 0x1F) as u8);
    let rt = Reg::new(((word >> 16) & 0x1F) as u8);
    let rd = Reg::new(((word >> 11) & 0x1F) as u8);
    let shamt = ((word >> 6) & 0x1F) as u8;
    let imm16 = (word & 0xFFFF) as u16 as i16 as i32;

    match primary {
        PRIMARY_SPECIAL => {
            let opcode = funct_opcode(word & 0x3F).ok_or(DecodeError { word })?;
            let inst = match opcode {
                Opcode::Nop => Instruction::NOP,
                Opcode::Jr => Instruction::jr(rs),
                Opcode::Jalr => Instruction::jalr(rd, rs),
                _ => Instruction { opcode, rd, rs, rt, imm: 0, shamt },
            };
            Ok(inst)
        }
        PRIMARY_REGIMM => {
            let opcode = match rt.index() {
                0 => Opcode::Bltz,
                1 => Opcode::Bgez,
                _ => return Err(DecodeError { word }),
            };
            Ok(Instruction::branch1(opcode, rs, imm16))
        }
        PRIMARY_HALT => Ok(Instruction::HALT),
        _ => {
            let opcode = primary_opcode(primary).ok_or(DecodeError { word })?;
            let inst = match opcode.operand_class() {
                OperandClass::JumpTarget => {
                    Instruction::jump(opcode, word & 0x03FF_FFFF)
                }
                _ => Instruction { opcode, rd: Reg::ZERO, rs, rt, imm: imm16, shamt: 0 },
            };
            Ok(inst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Instruction) {
        let word = encode(&inst);
        let back = decode(word).expect("decodes");
        assert_eq!(back, inst, "word {word:#010x}");
    }

    #[test]
    fn roundtrip_alu() {
        roundtrip(Instruction::rrr(Opcode::Addu, Reg::new(18), Reg::ZERO, Reg::new(2)));
        roundtrip(Instruction::rrr(Opcode::Xor, Reg::new(16), Reg::new(2), Reg::new(19)));
        roundtrip(Instruction::rrr(Opcode::Mul, Reg::new(7), Reg::new(8), Reg::new(9)));
    }

    #[test]
    fn roundtrip_shifts() {
        roundtrip(Instruction::shift(Opcode::Sll, Reg::new(2), Reg::new(16), 2));
        roundtrip(Instruction::shift(Opcode::Sra, Reg::new(2), Reg::new(16), 31));
        roundtrip(Instruction::shift_var(Opcode::Sllv, Reg::new(2), Reg::new(18), Reg::new(20)));
    }

    #[test]
    fn roundtrip_imm() {
        roundtrip(Instruction::imm(Opcode::Addiu, Reg::new(2), Reg::ZERO, -1));
        roundtrip(Instruction::imm(Opcode::Slti, Reg::new(3), Reg::new(4), 1000));
        roundtrip(Instruction::imm(Opcode::Andi, Reg::new(3), Reg::new(4), 0x7fff));
        roundtrip(Instruction::lui(Reg::new(5), 0x1001));
    }

    #[test]
    fn roundtrip_mem() {
        roundtrip(Instruction::mem(Opcode::Lw, Reg::new(3), -32676, Reg::new(28)));
        roundtrip(Instruction::mem(Opcode::Sw, Reg::new(3), -32676, Reg::new(28)));
        roundtrip(Instruction::mem(Opcode::Lbu, Reg::new(9), 0, Reg::new(10)));
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip(Instruction::branch2(Opcode::Beq, Reg::new(18), Reg::new(2), 12));
        roundtrip(Instruction::branch2(Opcode::Bne, Reg::new(1), Reg::ZERO, -3));
        roundtrip(Instruction::branch1(Opcode::Bltz, Reg::new(4), 8));
        roundtrip(Instruction::branch1(Opcode::Bgez, Reg::new(4), -8));
        roundtrip(Instruction::branch1(Opcode::Blez, Reg::new(4), 5));
        roundtrip(Instruction::branch1(Opcode::Bgtz, Reg::new(4), 5));
    }

    #[test]
    fn roundtrip_jumps() {
        roundtrip(Instruction::jump(Opcode::J, 0x10_0040));
        roundtrip(Instruction::jump(Opcode::Jal, 0x1234));
        roundtrip(Instruction::jr(Reg::RA));
        roundtrip(Instruction::jalr(Reg::RA, Reg::new(25)));
    }

    #[test]
    fn roundtrip_admin() {
        roundtrip(Instruction::NOP);
        roundtrip(Instruction::HALT);
    }

    #[test]
    fn invalid_words_error() {
        // SPECIAL with an unassigned funct.
        assert!(decode(0x0000_0001).is_err());
        // Unassigned primary opcode 0x3E.
        assert!(decode(0x3E << 26 | 0x123).is_err());
        // REGIMM with rt = 5.
        assert!(decode((1 << 26) | (5 << 16)).is_err());
    }

    #[test]
    fn decode_error_display_mentions_word() {
        let err = decode(0x0000_0001).unwrap_err();
        assert!(err.to_string().contains("0x00000001"));
    }
}
