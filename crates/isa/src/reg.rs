//! Architectural register designators.

use std::fmt;

/// An architectural (logical) register designator, `r0`–`r31`.
///
/// `r0` is hard-wired to zero, as in MIPS: writes to it are discarded and it
/// never creates a dependence. The conventional MIPS ABI aliases (`sp`, `ra`,
/// `t0`, …) are accepted by the assembler and produced by the disassembler.
///
/// ```
/// use ce_isa::Reg;
///
/// let sp = Reg::parse("sp").unwrap();
/// assert_eq!(sp, Reg::SP);
/// assert_eq!(sp.index(), 29);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// ABI names for the 32 registers, indexed by register number.
const ABI_NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
    "fp", "ra",
];

impl Reg {
    /// The hard-wired zero register, `r0`.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary, `r1`.
    pub const AT: Reg = Reg(1);
    /// First return-value register, `r2`.
    pub const V0: Reg = Reg(2);
    /// First argument register, `r4`.
    pub const A0: Reg = Reg(4);
    /// Second argument register, `r5`.
    pub const A1: Reg = Reg(5);
    /// Third argument register, `r6`.
    pub const A2: Reg = Reg(6);
    /// First caller-saved temporary, `r8`.
    pub const T0: Reg = Reg(8);
    /// First callee-saved register, `r16`.
    pub const S0: Reg = Reg(16);
    /// Global pointer, `r28`.
    pub const GP: Reg = Reg(28);
    /// Stack pointer, `r29`.
    pub const SP: Reg = Reg(29);
    /// Frame pointer, `r30`.
    pub const FP: Reg = Reg(30);
    /// Return-address register, `r31`.
    pub const RA: Reg = Reg(31);

    /// Number of architectural integer registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// Creates a register from its number, returning `None` when out of range.
    #[inline]
    pub fn try_new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register number, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ABI alias for this register (`"sp"`, `"t0"`, …).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.index()]
    }

    /// Parses a register name: `r<n>`, `$<n>`, `$r<n>`, or any ABI alias
    /// with an optional leading `$`. Bare numerals (`5`) are *not* registers
    /// — they would be ambiguous with immediates in assembly source.
    pub fn parse(name: &str) -> Option<Reg> {
        let (had_sigil, name) = match name.strip_prefix('$') {
            Some(rest) => (true, rest),
            None => (false, name),
        };
        if let Some(rest) = name.strip_prefix('r') {
            if let Ok(n) = rest.parse::<u8>() {
                return Reg::try_new(n);
            }
        }
        if had_sigil {
            if let Ok(n) = name.parse::<u8>() {
                return Reg::try_new(n);
            }
        }
        ABI_NAMES
            .iter()
            .position(|&abi| abi == name)
            .map(|i| Reg(i as u8))
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_numeric_forms() {
        assert_eq!(Reg::parse("r7"), Some(Reg::new(7)));
        assert_eq!(Reg::parse("$r7"), Some(Reg::new(7)));
        assert_eq!(Reg::parse("$7"), Some(Reg::new(7)));
        // Bare numerals are immediates, not registers.
        assert_eq!(Reg::parse("7"), None);
    }

    #[test]
    fn parse_abi_aliases() {
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("$sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("t9"), Some(Reg::new(25)));
    }

    #[test]
    fn parse_rejects_out_of_range() {
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("bogus"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn display_is_numeric() {
        assert_eq!(Reg::new(13).to_string(), "r13");
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }

    #[test]
    fn all_covers_every_register() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[31], Reg::RA);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }
}
