//! Textual disassembly.
//!
//! The output format is accepted back by the assembler whenever the
//! instruction does not reference a label (branch displacements are printed
//! as raw numeric offsets, which the assembler also accepts).

use crate::{Instruction, OperandClass};

/// Formats one instruction as assembly text.
///
/// ```
/// use ce_isa::{disasm, Instruction, Opcode, Reg};
///
/// let i = Instruction::mem(Opcode::Lw, Reg::new(3), -32676, Reg::new(28));
/// assert_eq!(disasm::format_instruction(&i), "lw r3, -32676(r28)");
/// ```
pub fn format_instruction(inst: &Instruction) -> String {
    let m = inst.opcode.mnemonic();
    match inst.opcode.operand_class() {
        OperandClass::RdRsRt => format!("{m} {}, {}, {}", inst.rd, inst.rs, inst.rt),
        OperandClass::RdRtShamt => format!("{m} {}, {}, {}", inst.rd, inst.rt, inst.shamt),
        OperandClass::RdRtRs => format!("{m} {}, {}, {}", inst.rd, inst.rt, inst.rs),
        OperandClass::RtRsImm => format!("{m} {}, {}, {}", inst.rt, inst.rs, inst.imm),
        OperandClass::RtImm => format!("{m} {}, {}", inst.rt, inst.imm),
        OperandClass::Mem => format!("{m} {}, {}({})", inst.rt, inst.imm, inst.rs),
        OperandClass::BranchRsRt => format!("{m} {}, {}, {}", inst.rs, inst.rt, inst.imm),
        OperandClass::BranchRs => format!("{m} {}, {}", inst.rs, inst.imm),
        OperandClass::JumpTarget => format!("{m} {:#x}", (inst.imm as u32) << 2),
        OperandClass::JumpReg => format!("{m} {}", inst.rs),
        OperandClass::JumpRegLink => format!("{m} {}, {}", inst.rd, inst.rs),
        OperandClass::None => m.to_owned(),
    }
}

/// Disassembles a sequence of encoded words, one line per instruction.
/// Words that fail to decode are rendered as `.word 0x…`.
pub fn disassemble(words: &[u32]) -> String {
    let mut out = String::new();
    for &w in words {
        match crate::decode(w) {
            Ok(inst) => out.push_str(&format_instruction(&inst)),
            Err(_) => out.push_str(&format!(".word {w:#010x}")),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    #[test]
    fn formats_match_expected_syntax() {
        let add = Instruction::rrr(Opcode::Addu, Reg::new(18), Reg::ZERO, Reg::new(2));
        assert_eq!(format_instruction(&add), "addu r18, r0, r2");

        let sllv = Instruction::shift_var(Opcode::Sllv, Reg::new(2), Reg::new(18), Reg::new(20));
        assert_eq!(format_instruction(&sllv), "sllv r2, r18, r20");

        let addiu = Instruction::imm(Opcode::Addiu, Reg::new(2), Reg::ZERO, -1);
        assert_eq!(format_instruction(&addiu), "addiu r2, r0, -1");

        let beq = Instruction::branch2(Opcode::Beq, Reg::new(2), Reg::new(17), 7);
        assert_eq!(format_instruction(&beq), "beq r2, r17, 7");

        let jr = Instruction::jr(Reg::RA);
        assert_eq!(format_instruction(&jr), "jr r31");

        assert_eq!(format_instruction(&Instruction::NOP), "nop");
    }

    #[test]
    fn disassemble_marks_invalid_words() {
        let text = disassemble(&[crate::encode(&Instruction::NOP), 0x0000_0001]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["nop", ".word 0x00000001"]);
    }
}
