//! Prints the dynamic characteristics of the seven benchmark kernels —
//! trace length, operation mix, branch behaviour, and mean dependence
//! distance — the quick way to see that each kernel behaves like its
//! SPEC'95 namesake.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p ce-workloads --example kernel_stats
//! ```

fn main() {
    for b in ce_workloads::Benchmark::all() {
        let t = ce_workloads::trace_benchmark(b, 10_000_000).unwrap();
        let s = ce_workloads::stats::TraceStats::compute(&t);
        println!("{:10} {:>8} insts  loads {:.1}% stores {:.1}% branches {:.1}% taken {:.1}% jumps {:.1}% depdist {:.2}",
            b.name(), t.len(), s.load_fraction()*100.0, s.store_fraction()*100.0,
            s.branch_fraction()*100.0, s.taken_rate()*100.0,
            (s.jumps as f64/s.total as f64)*100.0, s.mean_dep_distance);
    }
}
