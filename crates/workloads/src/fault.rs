//! Deterministic trace-file corruption — the injection half of the
//! `trace_io` robustness story.
//!
//! [`corrupt_trace_text`] applies one seeded, reproducible mutation to a
//! serialized trace: a flipped bit in a random byte, a truncation
//! mid-file, a dropped line, or a duplicated line — the classic ways a
//! trace on disk goes bad (torn writes, bad sectors, buggy producers).
//! The fault campaign in `ce-bench` feeds the mutated text back through
//! [`parse_trace`](crate::trace_io::parse_trace) and asserts every
//! corruption is either *rejected* with a line-numbered error, *visible*
//! (it parses into a different, self-consistently valid trace — the file
//! still means exactly what it says), or *harmless* (the bytes changed
//! but the parsed trace did not, e.g. whitespace).

use rand::{Rng, SeedableRng, StdRng};
use std::fmt;

/// One kind of file-level trace corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCorruption {
    /// Flip one bit of one byte.
    BitFlip,
    /// Cut the file off at a random byte offset (a torn write).
    Truncate,
    /// Delete one whole line (a dropped op).
    DropLine,
    /// Repeat one whole line (a duplicated op).
    DuplicateLine,
}

impl TraceCorruption {
    /// Every corruption kind, for campaign generators.
    pub const ALL: [TraceCorruption; 4] = [
        TraceCorruption::BitFlip,
        TraceCorruption::Truncate,
        TraceCorruption::DropLine,
        TraceCorruption::DuplicateLine,
    ];

    /// Short stable name (campaign reports).
    pub fn name(self) -> &'static str {
        match self {
            TraceCorruption::BitFlip => "bit-flip",
            TraceCorruption::Truncate => "truncate",
            TraceCorruption::DropLine => "drop-line",
            TraceCorruption::DuplicateLine => "duplicate-line",
        }
    }
}

impl fmt::Display for TraceCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies one seeded corruption to a serialized trace, returning the
/// mutated text. Deterministic: the same `(text, kind, seed)` always
/// produces the same bytes. The result is *not* guaranteed to be
/// invalid — proving the parser classifies each outcome correctly is
/// the campaign's job, not this function's.
///
/// Byte-level mutations land on ASCII, so the result is always valid
/// UTF-8 (the trace format is pure ASCII to begin with).
pub fn corrupt_trace_text(text: &str, kind: TraceCorruption, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        TraceCorruption::BitFlip => {
            let mut bytes = text.as_bytes().to_vec();
            if bytes.is_empty() {
                return text.to_string();
            }
            let pos = rng.gen_range(0..bytes.len());
            // Flip within the low 7 bits so the byte stays ASCII and the
            // result stays valid UTF-8.
            let bit = rng.gen_range(0u32..7);
            bytes[pos] ^= 1 << bit;
            String::from_utf8(bytes).expect("ASCII in, ASCII out")
        }
        TraceCorruption::Truncate => {
            if text.is_empty() {
                return String::new();
            }
            let mut cut = rng.gen_range(0..text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1; // trace text is ASCII; this guards odd inputs
            }
            text[..cut].to_string()
        }
        TraceCorruption::DropLine => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text.to_string();
            }
            let victim = rng.gen_range(0..lines.len());
            let mut out = String::with_capacity(text.len());
            for (i, l) in lines.iter().enumerate() {
                if i != victim {
                    out.push_str(l);
                    out.push('\n');
                }
            }
            out
        }
        TraceCorruption::DuplicateLine => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text.to_string();
            }
            let victim = rng.gen_range(0..lines.len());
            let mut out = String::with_capacity(text.len() + lines[victim].len() + 1);
            for (i, l) in lines.iter().enumerate() {
                out.push_str(l);
                out.push('\n');
                if i == victim {
                    out.push_str(l);
                    out.push('\n');
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "ce-trace v1 completed=true\n400000 24080040 400004 0\n";

    #[test]
    fn corruption_is_deterministic() {
        for kind in TraceCorruption::ALL {
            for seed in 0..20 {
                let a = corrupt_trace_text(SAMPLE, kind, seed);
                let b = corrupt_trace_text(SAMPLE, kind, seed);
                assert_eq!(a, b, "{kind} seed {seed}");
            }
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_byte() {
        let out = corrupt_trace_text(SAMPLE, TraceCorruption::BitFlip, 7);
        assert_eq!(out.len(), SAMPLE.len());
        let diffs = SAMPLE.bytes().zip(out.bytes()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn truncate_shortens() {
        let out = corrupt_trace_text(SAMPLE, TraceCorruption::Truncate, 3);
        assert!(out.len() < SAMPLE.len());
        assert!(SAMPLE.starts_with(&out));
    }

    #[test]
    fn line_mutations_change_the_line_count() {
        let dropped = corrupt_trace_text(SAMPLE, TraceCorruption::DropLine, 1);
        assert_eq!(dropped.lines().count(), SAMPLE.lines().count() - 1);
        let duplicated = corrupt_trace_text(SAMPLE, TraceCorruption::DuplicateLine, 1);
        assert_eq!(duplicated.lines().count(), SAMPLE.lines().count() + 1);
    }

    #[test]
    fn empty_input_is_returned_unchanged() {
        for kind in TraceCorruption::ALL {
            assert_eq!(corrupt_trace_text("", kind, 0), "");
        }
    }
}
