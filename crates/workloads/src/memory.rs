//! Sparse byte-addressed memory for the functional emulator.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse 32-bit byte-addressable memory.
///
/// Pages are allocated on first touch and zero-filled, so programs may read
/// uninitialized memory (it reads as zero, as under SimpleScalar). Accesses
/// may be unaligned; multi-byte values are little-endian.
///
/// ```
/// use ce_workloads::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_word(0x1000_0000, 0xdead_beef);
/// assert_eq!(mem.read_word(0x1000_0000), 0xdead_beef);
/// assert_eq!(mem.read_byte(0x1000_0003), 0xde);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian halfword (may be unaligned).
    pub fn read_half(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_byte(addr), self.read_byte(addr.wrapping_add(1))])
    }

    /// Writes a little-endian halfword (may be unaligned).
    pub fn write_half(&mut self, addr: u32, value: u16) {
        let [a, b] = value.to_le_bytes();
        self.write_byte(addr, a);
        self.write_byte(addr.wrapping_add(1), b);
    }

    /// Reads a little-endian word (may be unaligned).
    pub fn read_word(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_byte(addr),
            self.read_byte(addr.wrapping_add(1)),
            self.read_byte(addr.wrapping_add(2)),
            self.read_byte(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian word (may be unaligned).
    pub fn write_word(&mut self, addr: u32, value: u32) {
        for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), byte);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_slice(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_word(0x4000_0000), 0);
        assert_eq!(mem.read_byte(123), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut mem = Memory::new();
        mem.write_word(0x100, 0x0102_0304);
        assert_eq!(mem.read_byte(0x100), 0x04);
        assert_eq!(mem.read_byte(0x103), 0x01);
        assert_eq!(mem.read_half(0x100), 0x0304);
        assert_eq!(mem.read_word(0x100), 0x0102_0304);
    }

    #[test]
    fn unaligned_access_spanning_pages() {
        let mut mem = Memory::new();
        let boundary = 0x2000 - 2;
        mem.write_word(boundary, 0xaabb_ccdd);
        assert_eq!(mem.read_word(boundary), 0xaabb_ccdd);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn slice_write() {
        let mut mem = Memory::new();
        mem.write_slice(0x500, b"hello");
        assert_eq!(mem.read_byte(0x504), b'o');
    }

    #[test]
    fn address_wraparound_is_defined() {
        let mut mem = Memory::new();
        mem.write_word(u32::MAX - 1, 0x1122_3344);
        assert_eq!(mem.read_word(u32::MAX - 1), 0x1122_3344);
    }
}
