//! Dynamic instruction traces — the interface between functional emulation
//! and timing simulation.

use ce_isa::Instruction;

/// One dynamically executed instruction, with everything the timing
/// simulator needs: the decoded instruction, its control-flow outcome, and
/// its effective address if it touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Position in the dynamic stream (0-based).
    pub seq: u64,
    /// Address of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Instruction,
    /// Address of the instruction executed next (branch/jump outcome).
    pub next_pc: u32,
    /// For control transfers: whether the transfer was taken.
    pub taken: bool,
    /// For loads/stores: the effective byte address.
    pub mem_addr: Option<u32>,
}

impl DynInst {
    /// Whether this instruction is a conditional branch.
    pub fn is_conditional_branch(&self) -> bool {
        self.inst.opcode.is_conditional_branch()
    }

    /// Whether this instruction transfers control at all.
    pub fn is_control(&self) -> bool {
        self.inst.opcode.is_control()
    }
}

/// An in-memory dynamic instruction trace.
///
/// ```
/// use ce_workloads::{trace_benchmark, Benchmark};
///
/// let trace = trace_benchmark(Benchmark::Li, 5_000)?;
/// // Sequence numbers are dense and ordered.
/// for (i, d) in trace.iter().enumerate() {
///     assert_eq!(d.seq, i as u64);
/// }
/// # Ok::<(), ce_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    insts: Vec<DynInst>,
    completed: bool,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends one instruction, assigning its sequence number.
    pub fn push(&mut self, mut inst: DynInst) {
        inst.seq = self.insts.len() as u64;
        self.insts.push(inst);
    }

    /// Marks the trace as having reached the program's `halt` (rather than
    /// being truncated at an instruction budget).
    pub fn mark_completed(&mut self) {
        self.completed = true;
    }

    /// Whether the traced program ran to completion.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over the instructions in dynamic order.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.insts.iter()
    }

    /// The instructions as a slice.
    pub fn as_slice(&self) -> &[DynInst] {
        &self.insts
    }

    /// The instruction at a dynamic index.
    pub fn get(&self, index: usize) -> Option<&DynInst> {
        self.insts.get(index)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl FromIterator<DynInst> for Trace {
    fn from_iter<I: IntoIterator<Item = DynInst>>(iter: I) -> Trace {
        let mut trace = Trace::new();
        for inst in iter {
            trace.push(inst);
        }
        trace
    }
}

impl Extend<DynInst> for Trace {
    fn extend<I: IntoIterator<Item = DynInst>>(&mut self, iter: I) {
        for inst in iter {
            self.push(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_isa::Instruction;

    fn dummy(pc: u32) -> DynInst {
        DynInst {
            seq: 999, // overwritten by push
            pc,
            inst: Instruction::NOP,
            next_pc: pc + 4,
            taken: false,
            mem_addr: None,
        }
    }

    #[test]
    fn push_assigns_dense_sequence_numbers() {
        let mut t = Trace::new();
        t.push(dummy(0x400000));
        t.push(dummy(0x400004));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap().seq, 0);
        assert_eq!(t.get(1).unwrap().seq, 1);
    }

    #[test]
    fn completion_flag() {
        let mut t = Trace::new();
        assert!(!t.is_completed());
        t.mark_completed();
        assert!(t.is_completed());
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..5).map(|i| dummy(0x400000 + i * 4)).collect();
        assert_eq!(t.len(), 5);
        assert_eq!(t.iter().count(), 5);
    }
}
