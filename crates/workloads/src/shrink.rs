//! Failing-trace minimization for differential testing.
//!
//! When an optimized simulator and the reference oracle disagree on a
//! 20 000-instruction trace, the mismatch report is useless for debugging
//! until the trace is cut down to the handful of instructions that actually
//! trigger the divergence. [`shrink_trace`] does that mechanically: given a
//! trace and a predicate that returns `true` while the failure still
//! reproduces, it returns a (locally) minimal sub-trace that still fails.
//!
//! The algorithm is the classic two-stage reducer:
//!
//! 1. **Prefix bisection** — timing divergences are usually triggered by
//!    one event and observable in the fingerprint forever after, so the
//!    shortest failing *prefix* is found first with a binary search. Every
//!    accepted cut is re-verified by calling the predicate, so a
//!    non-monotone failure can cost extra probes but never yields a
//!    non-failing result.
//! 2. **ddmin-style chunk removal** — delete aligned chunks from the
//!    middle, halving the chunk size whenever a full pass removes nothing,
//!    down to single instructions (1-minimality: no single remaining
//!    instruction can be removed without losing the failure).
//!
//! Removing instructions re-sequences the survivors densely (via
//! [`Trace::push`]), so the candidate handed to the predicate is always a
//! well-formed trace. The `completed` flag is preserved only while the
//! original final instruction (normally the `halt`) survives.

use crate::trace::{DynInst, Trace};

/// Rebuilds a trace from a subset of instructions, re-sequencing densely.
fn rebuild(insts: &[DynInst], original: &Trace) -> Trace {
    let mut t = Trace::new();
    for d in insts {
        t.push(*d);
    }
    let kept_last = match (insts.last(), original.as_slice().last()) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    if original.is_completed() && kept_last {
        t.mark_completed();
    }
    t
}

/// Minimizes a failing trace.
///
/// `fails` must return `true` for any trace that still exhibits the failure
/// of interest (e.g. "the optimized simulator and the oracle disagree", or
/// "the invariant checker panics"). The input trace itself must fail;
/// if it does not, it is returned unchanged.
///
/// The result is guaranteed to satisfy `fails` and to be 1-minimal with
/// respect to single-instruction removal. The predicate is invoked
/// O(n log n) times in the typical case.
pub fn shrink_trace(trace: &Trace, mut fails: impl FnMut(&Trace) -> bool) -> Trace {
    if !fails(trace) {
        return trace.clone();
    }
    let mut kept: Vec<DynInst> = trace.as_slice().to_vec();

    // Stage 1: shortest failing prefix. `best` is always a verified-failing
    // length; the search only commits cuts the predicate confirms.
    let mut best = kept.len();
    let mut lo = 0usize;
    let mut hi = best;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if mid < best && fails(&rebuild(&kept[..mid], trace)) {
            best = mid;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    kept.truncate(best);

    // Stage 2: ddmin-style chunk removal from the failing prefix.
    let mut chunk = kept.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < kept.len() {
            let end = (start + chunk).min(kept.len());
            // Never try removing the whole remaining trace.
            if end - start == kept.len() {
                start = end;
                continue;
            }
            let candidate: Vec<DynInst> =
                kept[..start].iter().chain(&kept[end..]).copied().collect();
            if fails(&rebuild(&candidate, trace)) {
                kept = candidate;
                removed_any = true;
                // Retry at the same offset: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }

    rebuild(&kept, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_isa::{Instruction, Opcode, Reg};

    fn alu(pc: u32) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            inst: Instruction::rrr(Opcode::Addu, Reg::new(8), Reg::new(9), Reg::new(10)),
            next_pc: pc + 4,
            taken: false,
            mem_addr: None,
        }
    }

    fn store(pc: u32, addr: u32) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            inst: Instruction::mem(Opcode::Sw, Reg::new(8), 0, Reg::new(29)),
            next_pc: pc + 4,
            taken: false,
            mem_addr: Some(addr),
        }
    }

    fn build(insts: Vec<DynInst>) -> Trace {
        let mut t = Trace::new();
        for d in insts {
            t.push(d);
        }
        t.mark_completed();
        t
    }

    #[test]
    fn returns_input_when_predicate_never_fires() {
        let t = build((0..20).map(|i| alu(0x40_0000 + i * 4)).collect());
        let shrunk = shrink_trace(&t, |_| false);
        assert_eq!(shrunk, t);
    }

    #[test]
    fn shrinks_single_culprit_to_one_instruction() {
        // 100 filler ALUs with one store buried in the middle; the
        // "failure" is simply the store's presence.
        let mut insts: Vec<DynInst> = (0..100).map(|i| alu(0x40_0000 + i * 4)).collect();
        insts[57] = store(0x40_0000 + 57 * 4, 0x1000_0040);
        let t = build(insts);
        let fails = |c: &Trace| c.iter().any(|d| d.mem_addr == Some(0x1000_0040));
        let shrunk = shrink_trace(&t, fails);
        assert_eq!(shrunk.len(), 1, "exactly the culprit survives");
        assert_eq!(shrunk.get(0).unwrap().mem_addr, Some(0x1000_0040));
        assert_eq!(shrunk.get(0).unwrap().seq, 0, "survivors are re-sequenced");
    }

    #[test]
    fn shrinks_interacting_pair_and_stays_failing() {
        // The failure needs BOTH stores — ddmin must not drop either.
        let mut insts: Vec<DynInst> = (0..64).map(|i| alu(0x40_0000 + i * 4)).collect();
        insts[10] = store(0x40_0000 + 10 * 4, 0x1000_0000);
        insts[50] = store(0x40_0000 + 50 * 4, 0x1000_0004);
        let t = build(insts);
        let fails = |c: &Trace| {
            c.iter().any(|d| d.mem_addr == Some(0x1000_0000))
                && c.iter().any(|d| d.mem_addr == Some(0x1000_0004))
        };
        let shrunk = shrink_trace(&t, fails);
        assert!(fails(&shrunk), "result must still fail");
        assert_eq!(shrunk.len(), 2);
        // Relative order is preserved.
        assert_eq!(shrunk.get(0).unwrap().mem_addr, Some(0x1000_0000));
        assert_eq!(shrunk.get(1).unwrap().mem_addr, Some(0x1000_0004));
    }

    #[test]
    fn completion_flag_tracks_the_final_instruction() {
        let mut insts: Vec<DynInst> = (0..8).map(|i| alu(0x40_0000 + i * 4)).collect();
        insts[2] = store(0x40_0000 + 2 * 4, 0x1000_0000);
        let t = build(insts);
        // Failure ignores the tail, so the halt-position instruction is cut
        // and the shrunk trace must drop the completed flag.
        let shrunk =
            shrink_trace(&t, |c| c.iter().any(|d| d.mem_addr == Some(0x1000_0000)));
        assert_eq!(shrunk.len(), 1);
        assert!(!shrunk.is_completed());

        // Failure that pins the last instruction keeps the flag.
        let last_pc = 0x40_0000 + 7 * 4;
        let shrunk2 = shrink_trace(&t, |c| c.as_slice().last().is_some_and(|d| d.pc == last_pc));
        assert!(shrunk2.is_completed());
    }
}
