//! Functional (architectural) emulator.
//!
//! Executes an assembled [`Program`] instruction-by-instruction, producing
//! the dynamic [`Trace`] the timing simulator consumes. The emulator is the
//! oracle: it decides actual branch outcomes and effective addresses; the
//! timing model decides only *when* things happen.

use crate::memory::Memory;
use crate::trace::{DynInst, Trace};
use ce_isa::asm::Program;
use ce_isa::{Instruction, Opcode, Reg, DATA_BASE, STACK_TOP};
use std::error::Error;
use std::fmt;

/// Runtime fault during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the text segment.
    PcOutOfBounds {
        /// The faulting PC value.
        pc: u32,
    },
    /// The program ran past its instruction budget without halting.
    /// (Only reported by [`Emulator::run_to_completion`].)
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfBounds { pc } => {
                write!(f, "program counter {pc:#010x} left the text segment")
            }
            EmuError::BudgetExhausted { budget } => {
                write!(f, "program did not halt within {budget} instructions")
            }
        }
    }
}

impl Error for EmuError {}

/// The architectural state and execution engine.
#[derive(Debug, Clone)]
pub struct Emulator {
    regs: [u32; 32],
    mem: Memory,
    pc: u32,
    text_base: u32,
    text: Vec<Instruction>,
    halted: bool,
    executed: u64,
}

impl Emulator {
    /// Creates an emulator with the program loaded, `sp` at the stack top,
    /// and `gp` pointing at the data segment base (the kernels use
    /// `gp`-relative addressing, as in the paper's own code example).
    pub fn new(program: &Program) -> Emulator {
        let mut mem = Memory::new();
        mem.write_slice(program.data_base, &program.data);
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = STACK_TOP;
        regs[Reg::GP.index()] = DATA_BASE;
        Emulator {
            regs,
            mem,
            pc: program.entry(),
            text_base: program.text_base,
            text: program.text.clone(),
            halted: false,
            executed: 0,
        }
    }

    /// Whether the program has executed its `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// The emulator's memory (for inspecting results after a run).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Executes one instruction; returns its trace record, or `None` if the
    /// machine is already halted.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfBounds`] if the PC leaves the text
    /// segment (a wild jump in the program).
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let index = pc
            .checked_sub(self.text_base)
            .map(|off| (off / 4) as usize)
            .filter(|&i| pc.is_multiple_of(4) && i < self.text.len())
            .ok_or(EmuError::PcOutOfBounds { pc })?;
        let inst = self.text[index];
        let (next_pc, taken, mem_addr) = self.execute(pc, &inst);
        self.pc = next_pc;
        self.executed += 1;
        if inst.opcode == Opcode::Halt {
            self.halted = true;
        }
        Ok(Some(DynInst { seq: 0, pc, inst, next_pc, taken, mem_addr }))
    }

    /// Runs until `halt` or until `max_insts` instructions have executed,
    /// collecting the trace. The trace is marked completed only if `halt`
    /// was reached.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfBounds`] on a wild jump.
    pub fn run(&mut self, max_insts: u64) -> Result<Trace, EmuError> {
        let mut trace = Trace::new();
        while !self.halted && (trace.len() as u64) < max_insts {
            match self.step()? {
                Some(d) => trace.push(d),
                None => break,
            }
        }
        if self.halted {
            trace.mark_completed();
        }
        Ok(trace)
    }

    /// Runs to `halt`, failing if the program does not finish within
    /// `budget` instructions.
    ///
    /// # Errors
    ///
    /// [`EmuError::BudgetExhausted`] if `halt` is not reached in time, or
    /// [`EmuError::PcOutOfBounds`] on a wild jump.
    pub fn run_to_completion(&mut self, budget: u64) -> Result<Trace, EmuError> {
        let trace = self.run(budget)?;
        if !self.halted {
            return Err(EmuError::BudgetExhausted { budget });
        }
        Ok(trace)
    }

    fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Executes `inst` at `pc`, returning (next_pc, taken, mem_addr).
    fn execute(&mut self, pc: u32, inst: &Instruction) -> (u32, bool, Option<u32>) {
        use Opcode::*;
        let rs = self.regs[inst.rs.index()];
        let rt = self.regs[inst.rt.index()];
        let imm = inst.imm;
        let fallthrough = pc.wrapping_add(4);
        let branch_target =
            || fallthrough.wrapping_add((imm as i64 * 4) as u32);

        match inst.opcode {
            Addu => self.set_reg(inst.rd, rs.wrapping_add(rt)),
            Subu => self.set_reg(inst.rd, rs.wrapping_sub(rt)),
            And => self.set_reg(inst.rd, rs & rt),
            Or => self.set_reg(inst.rd, rs | rt),
            Xor => self.set_reg(inst.rd, rs ^ rt),
            Nor => self.set_reg(inst.rd, !(rs | rt)),
            Slt => self.set_reg(inst.rd, ((rs as i32) < (rt as i32)) as u32),
            Sltu => self.set_reg(inst.rd, (rs < rt) as u32),
            Mul => self.set_reg(inst.rd, rs.wrapping_mul(rt)),
            Div => {
                let q = if rt == 0 { 0 } else { (rs as i32).wrapping_div(rt as i32) };
                self.set_reg(inst.rd, q as u32);
            }
            Rem => {
                let r = if rt == 0 { 0 } else { (rs as i32).wrapping_rem(rt as i32) };
                self.set_reg(inst.rd, r as u32);
            }
            Sll => self.set_reg(inst.rd, rt << inst.shamt),
            Srl => self.set_reg(inst.rd, rt >> inst.shamt),
            Sra => self.set_reg(inst.rd, ((rt as i32) >> inst.shamt) as u32),
            Sllv => self.set_reg(inst.rd, rt << (rs & 31)),
            Srlv => self.set_reg(inst.rd, rt >> (rs & 31)),
            Srav => self.set_reg(inst.rd, ((rt as i32) >> (rs & 31)) as u32),
            Addiu => self.set_reg(inst.rt, rs.wrapping_add(imm as u32)),
            Andi => self.set_reg(inst.rt, rs & (imm as u32 & 0xFFFF)),
            Ori => self.set_reg(inst.rt, rs | (imm as u32 & 0xFFFF)),
            Xori => self.set_reg(inst.rt, rs ^ (imm as u32 & 0xFFFF)),
            Slti => self.set_reg(inst.rt, ((rs as i32) < imm) as u32),
            Sltiu => self.set_reg(inst.rt, (rs < imm as u32) as u32),
            Lui => self.set_reg(inst.rt, (imm as u32) << 16),
            Lb | Lbu | Lh | Lhu | Lw => {
                let addr = rs.wrapping_add(imm as u32);
                let value = match inst.opcode {
                    Lb => self.mem.read_byte(addr) as i8 as i32 as u32,
                    Lbu => self.mem.read_byte(addr) as u32,
                    Lh => self.mem.read_half(addr) as i16 as i32 as u32,
                    Lhu => self.mem.read_half(addr) as u32,
                    _ => self.mem.read_word(addr),
                };
                self.set_reg(inst.rt, value);
                return (fallthrough, false, Some(addr));
            }
            Sb | Sh | Sw => {
                let addr = rs.wrapping_add(imm as u32);
                match inst.opcode {
                    Sb => self.mem.write_byte(addr, rt as u8),
                    Sh => self.mem.write_half(addr, rt as u16),
                    _ => self.mem.write_word(addr, rt),
                }
                return (fallthrough, false, Some(addr));
            }
            Beq | Bne | Blez | Bgtz | Bltz | Bgez => {
                let cond = match inst.opcode {
                    Beq => rs == rt,
                    Bne => rs != rt,
                    Blez => (rs as i32) <= 0,
                    Bgtz => (rs as i32) > 0,
                    Bltz => (rs as i32) < 0,
                    _ => (rs as i32) >= 0,
                };
                let next = if cond { branch_target() } else { fallthrough };
                return (next, cond, None);
            }
            J => return ((inst.imm as u32) * 4, true, None),
            Jal => {
                self.set_reg(Reg::RA, fallthrough);
                return ((inst.imm as u32) * 4, true, None);
            }
            Jr => return (rs, true, None),
            Jalr => {
                self.set_reg(inst.rd, fallthrough);
                return (rs, true, None);
            }
            Nop | Halt => {}
        }
        (fallthrough, false, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_isa::asm::assemble;

    fn run(src: &str) -> Emulator {
        let program = assemble(src).expect("assembles");
        let mut emu = Emulator::new(&program);
        emu.run_to_completion(1_000_000).expect("halts");
        emu
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        // Sum 1..=10 into t0.
        let emu = run("
            li t0, 0
            li t1, 10
        loop:
            addu t0, t0, t1
            addiu t1, t1, -1
            bgtz t1, loop
            halt
        ");
        assert_eq!(emu.reg(Reg::T0), 55);
        assert!(emu.is_halted());
    }

    #[test]
    fn memory_store_load_roundtrip() {
        let emu = run("
            .data
        buf: .space 64
            .text
            li t0, 0x12345678
            sw t0, buf(gp)
            lw t1, buf(gp)
            lbu t2, buf(gp)
            lb t3, 3(gp)
            halt
        ");
        assert_eq!(emu.reg(Reg::new(9)), 0x12345678);
        assert_eq!(emu.reg(Reg::new(10)), 0x78);
        assert_eq!(emu.reg(Reg::new(11)), 0x12); // sign-extended byte 0x12
    }

    #[test]
    fn signed_loads_sign_extend() {
        let emu = run("
            .data
        v: .byte 0xff
            .align 1
        h: .half 0x8000
            .text
            lb t0, v(gp)
            lbu t1, v(gp)
            lh t2, h(gp)
            lhu t3, h(gp)
            halt
        ");
        assert_eq!(emu.reg(Reg::new(8)) as i32, -1);
        assert_eq!(emu.reg(Reg::new(9)), 0xff);
        assert_eq!(emu.reg(Reg::new(10)) as i32, -32768);
        assert_eq!(emu.reg(Reg::new(11)), 0x8000);
    }

    #[test]
    fn call_and_return() {
        let emu = run("
        main:
            li a0, 21
            jal double
            move s0, v0
            halt
        double:
            addu v0, a0, a0
            jr ra
        ");
        assert_eq!(emu.reg(Reg::S0), 42);
    }

    #[test]
    fn shifts_and_logic() {
        let emu = run("
            li t0, 0xf0
            sll t1, t0, 4
            srl t2, t1, 8
            li t3, -16
            sra t4, t3, 2
            li t5, 3
            sllv t6, t0, t5
            halt
        ");
        assert_eq!(emu.reg(Reg::new(9)), 0xf00);
        assert_eq!(emu.reg(Reg::new(10)), 0xf);
        assert_eq!(emu.reg(Reg::new(12)) as i32, -4);
        assert_eq!(emu.reg(Reg::new(14)), 0xf0 << 3);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let emu = run("
            li t0, 7
            li t1, 0
            div t2, t0, t1
            rem t3, t0, t1
            halt
        ");
        assert_eq!(emu.reg(Reg::new(10)), 0);
        assert_eq!(emu.reg(Reg::new(11)), 0);
    }

    #[test]
    fn trace_records_branch_outcomes_and_addresses() {
        let program = assemble("
            li t0, 2
        loop:
            addiu t0, t0, -1
            bnez t0, loop
            sw t0, 0(gp)
            halt
        ").unwrap();
        let mut emu = Emulator::new(&program);
        let trace = emu.run_to_completion(100).unwrap();
        assert!(trace.is_completed());
        // li(1) + 2×(addiu, bnez) + sw + halt = 7 dynamic instructions.
        assert_eq!(trace.len(), 7);
        let branches: Vec<&DynInst> =
            trace.iter().filter(|d| d.is_conditional_branch()).collect();
        assert_eq!(branches.len(), 2);
        assert!(branches[0].taken);
        assert!(!branches[1].taken);
        let store = trace.iter().find(|d| d.inst.opcode == Opcode::Sw).unwrap();
        assert_eq!(store.mem_addr, Some(DATA_BASE));
    }

    #[test]
    fn wild_jump_faults() {
        let program = assemble("li t0, 0x100\njr t0\nhalt\n").unwrap();
        let mut emu = Emulator::new(&program);
        let err = emu.run(100).unwrap_err();
        assert!(matches!(err, EmuError::PcOutOfBounds { pc: 0x100 }));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let program = assemble("loop: b loop\n").unwrap();
        let mut emu = Emulator::new(&program);
        let err = emu.run_to_completion(50).unwrap_err();
        assert!(matches!(err, EmuError::BudgetExhausted { budget: 50 }));
    }

    #[test]
    fn step_after_halt_returns_none() {
        let program = assemble("halt\n").unwrap();
        let mut emu = Emulator::new(&program);
        assert!(emu.step().unwrap().is_some());
        assert!(emu.step().unwrap().is_none());
        assert_eq!(emu.executed(), 1);
    }

    #[test]
    fn unsigned_comparisons_and_logic() {
        let emu = run("
            li t0, -1            # 0xffffffff
            li t1, 1
            sltu t2, t1, t0      # 1 < 0xffffffff unsigned -> 1
            slt  t3, t1, t0      # 1 < -1 signed -> 0
            sltiu t4, t0, 5      # 0xffffffff < 5 unsigned -> 0
            slti  t5, t0, 5      # -1 < 5 signed -> 1
            nor  t6, t1, t1      # ~1
            andi t7, t0, 0xff00  # zero-extended immediate
            halt
        ");
        assert_eq!(emu.reg(Reg::new(10)), 1);
        assert_eq!(emu.reg(Reg::new(11)), 0);
        assert_eq!(emu.reg(Reg::new(12)), 0);
        assert_eq!(emu.reg(Reg::new(13)), 1);
        assert_eq!(emu.reg(Reg::new(14)), !1u32);
        assert_eq!(emu.reg(Reg::new(15)), 0xff00);
    }

    #[test]
    fn variable_shifts_mask_the_amount() {
        let emu = run("
            li t0, 1
            li t1, 33            # shifts use the low 5 bits: 33 & 31 = 1
            sllv t2, t0, t1
            li t3, -8
            srav t4, t3, t1
            srlv t5, t3, t1
            halt
        ");
        assert_eq!(emu.reg(Reg::new(10)), 2);
        assert_eq!(emu.reg(Reg::new(12)) as i32, -4);
        assert_eq!(emu.reg(Reg::new(13)), 0xFFFF_FFF8u32 >> 1);
    }

    #[test]
    fn lui_ori_compose_full_words() {
        let emu = run("
            lui t0, 0xdead
            ori t0, t0, 0xbeef
            halt
        ");
        assert_eq!(emu.reg(Reg::T0), 0xdead_beef);
    }

    #[test]
    fn negative_branch_conditions() {
        let emu = run("
            li t0, -5
            li t1, 0             # result flags
            bltz t0, was_neg
            b join
        was_neg:
            ori t1, t1, 1
        join:
            bgez t0, done        # -5 >= 0 is false: fall through
            ori t1, t1, 2
        done:
            blez t0, neg_or_zero
            b finish
        neg_or_zero:
            ori t1, t1, 4
        finish:
            halt
        ");
        assert_eq!(emu.reg(Reg::new(9)), 1 | 2 | 4);
    }

    #[test]
    fn writes_to_r0_are_discarded() {
        let emu = run("
            li t0, 5
            addu zero, t0, t0
            halt
        ");
        assert_eq!(emu.reg(Reg::ZERO), 0);
    }
}
