//! Trace serialization: a simple line-oriented text format so traces can
//! be generated once (emulation is cheap but not free) and replayed into
//! many simulator configurations, or exchanged with other tools.
//!
//! Format:
//!
//! ```text
//! ce-trace v1 completed=true
//! <pc> <word> <next_pc> <taken> [<mem_addr>]
//! …
//! ```
//!
//! with all numeric fields in lowercase hex. The instruction is stored as
//! its 32-bit encoding, so the file is self-contained and the decoder
//! validates it on load.

use crate::trace::{DynInst, Trace};
use ce_isa::{decode, encode};
use std::error::Error;
use std::fmt;

/// Error from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for TraceParseError {}

fn err(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError { line, message: message.into() }
}

/// Resource ceilings for [`parse_trace_with`] — the defence against
/// adversarial or corrupt trace files. A well-formed line is under 50
/// bytes and a trace holds one op per line, so a multi-kilobyte line or
/// a file promising more ops than the run could ever consume is garbage;
/// rejecting it fast (with a line number) beats swapping the machine to
/// death materializing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Longest acceptable line in bytes (default 4096).
    pub max_line_bytes: usize,
    /// Most ops a file may carry (default 64 Mi — ~128× the default
    /// sweep cap of 2 M instructions, well past any real experiment).
    pub max_ops: usize,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits { max_line_bytes: 4096, max_ops: 64 << 20 }
    }
}

/// Serializes a trace to the text format.
pub fn format_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 32);
    out.push_str(&format!("ce-trace v1 completed={}\n", trace.is_completed()));
    for d in trace {
        out.push_str(&format!(
            "{:x} {:x} {:x} {}",
            d.pc,
            encode(&d.inst),
            d.next_pc,
            u8::from(d.taken)
        ));
        if let Some(addr) = d.mem_addr {
            out.push_str(&format!(" {addr:x}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the text format back into a [`Trace`], under the default
/// [`ParseLimits`].
///
/// # Errors
///
/// Returns [`TraceParseError`] naming the offending line for format,
/// encoding, or field errors.
pub fn parse_trace(text: &str) -> Result<Trace, TraceParseError> {
    parse_trace_with(text, ParseLimits::default())
}

/// Parses the text format back into a [`Trace`], rejecting lines longer
/// than `limits.max_line_bytes` and files with more than
/// `limits.max_ops` operations before they can exhaust memory.
///
/// # Errors
///
/// Returns [`TraceParseError`] naming the offending line for format,
/// encoding, field, or limit errors.
pub fn parse_trace_with(text: &str, limits: ParseLimits) -> Result<Trace, TraceParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header.len() > limits.max_line_bytes {
        return Err(err(1, format!("line exceeds {} bytes", limits.max_line_bytes)));
    }
    let completed = match header.trim() {
        "ce-trace v1 completed=true" => true,
        "ce-trace v1 completed=false" => false,
        other => return Err(err(1, format!("bad header `{other}`"))),
    };

    let mut trace = Trace::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        if raw.len() > limits.max_line_bytes {
            return Err(err(line, format!("line exceeds {} bytes", limits.max_line_bytes)));
        }
        let l = raw.trim();
        if l.is_empty() {
            continue;
        }
        if trace.len() >= limits.max_ops {
            return Err(err(line, format!("trace exceeds {} operations", limits.max_ops)));
        }
        let fields: Vec<&str> = l.split_ascii_whitespace().collect();
        if !(4..=5).contains(&fields.len()) {
            return Err(err(line, format!("expected 4–5 fields, got {}", fields.len())));
        }
        let hex = |s: &str, what: &str| {
            u32::from_str_radix(s, 16).map_err(|_| err(line, format!("bad {what} `{s}`")))
        };
        let pc = hex(fields[0], "pc")?;
        let word = hex(fields[1], "instruction word")?;
        let next_pc = hex(fields[2], "next pc")?;
        let taken = match fields[3] {
            "0" => false,
            "1" => true,
            other => return Err(err(line, format!("bad taken flag `{other}`"))),
        };
        let mem_addr = match fields.get(4) {
            Some(s) => Some(hex(s, "memory address")?),
            None => None,
        };
        let inst = decode(word).map_err(|e| err(line, e.to_string()))?;
        // The simulator relies on every load/store carrying its effective
        // address (it panics deep in the issue path otherwise), so enforce
        // the contract here with a line number while the file is at hand.
        let is_mem = matches!(
            inst.opcode.kind(),
            ce_isa::OperationKind::Load | ce_isa::OperationKind::Store
        );
        if is_mem && mem_addr.is_none() {
            return Err(err(
                line,
                format!("{} without a memory address (5th field)", inst.opcode),
            ));
        }
        if !is_mem && mem_addr.is_some() {
            return Err(err(
                line,
                format!("memory address on non-memory instruction {}", inst.opcode),
            ));
        }
        trace.push(DynInst { seq: 0, pc, inst, next_pc, taken, mem_addr });
    }
    if completed {
        trace.mark_completed();
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_benchmark;
    use crate::Benchmark;

    #[test]
    fn roundtrips_a_real_trace() {
        let original = trace_benchmark(Benchmark::Compress, 5_000).unwrap();
        let text = format_trace(&original);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn roundtrips_completion_flag() {
        let truncated = trace_benchmark(Benchmark::Li, 100).unwrap();
        assert!(!truncated.is_completed());
        let back = parse_trace(&format_trace(&truncated)).unwrap();
        assert!(!back.is_completed());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let back = parse_trace(&format_trace(&Trace::new())).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        let e = parse_trace("ce-trace v2 completed=true\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(parse_trace("").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        let header = "ce-trace v1 completed=true\n";
        let e = parse_trace(&format!("{header}400000 zz 400004 0\n")).unwrap_err();
        assert!(e.message.contains("instruction word"));
        let e = parse_trace(&format!("{header}400000 1 400004\n")).unwrap_err();
        assert!(e.message.contains("fields"));
        let e = parse_trace(&format!("{header}400000 1 400004 7\n")).unwrap_err();
        assert!(e.message.contains("taken"));
        // Word 1 is an invalid encoding (SPECIAL with unknown funct).
        let e = parse_trace(&format!("{header}400000 1 400004 0\n")).unwrap_err();
        assert!(e.message.contains("invalid instruction"));
    }

    /// Regression test: a load/store line without its effective address
    /// used to parse fine and then panic the *simulator* mid-run
    /// (`loads carry addresses`); it must fail at parse time with the
    /// offending line number instead.
    #[test]
    fn rejects_memory_ops_without_addresses() {
        use ce_isa::{encode, Instruction, Opcode, Reg};
        let header = "ce-trace v1 completed=true\n";
        let lw = encode(&Instruction::mem(Opcode::Lw, Reg::new(4), 0, Reg::new(29)));
        let e = parse_trace(&format!("{header}400000 {lw:x} 400004 0\n")).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("memory address"), "{}", e.message);
        // With the address the same line is fine.
        assert!(parse_trace(&format!("{header}400000 {lw:x} 400004 0 10000000\n")).is_ok());

        let sw = encode(&Instruction::mem(Opcode::Sw, Reg::new(4), 0, Reg::new(29)));
        let e = parse_trace(&format!("{header}400000 {sw:x} 400004 0\n")).unwrap_err();
        assert!(e.message.contains("memory address"), "{}", e.message);
    }

    #[test]
    fn rejects_addresses_on_non_memory_ops() {
        use ce_isa::{encode, Instruction, Opcode, Reg};
        let header = "ce-trace v1 completed=true\n";
        let add = encode(&Instruction::rrr(Opcode::Addu, Reg::new(4), Reg::new(5), Reg::new(6)));
        let e = parse_trace(&format!("{header}400000 {add:x} 400004 0 10000000\n")).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("non-memory"), "{}", e.message);
    }

    /// Adversarial inputs must fail fast with a line number, not
    /// materialize unbounded state: a single multi-kilobyte line and a
    /// file promising more ops than the ceiling are both rejected.
    #[test]
    fn limits_reject_adversarial_inputs() {
        let limits = ParseLimits { max_line_bytes: 64, max_ops: 3 };

        let long = format!("ce-trace v1 completed=true\n{}\n", "a".repeat(1000));
        let e = parse_trace_with(&long, limits).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("64 bytes"), "{}", e.message);

        let long_header = "x".repeat(1000);
        let e = parse_trace_with(&long_header, limits).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("64 bytes"), "{}", e.message);

        let small = trace_benchmark(Benchmark::Compress, 200).unwrap();
        let text = format_trace(&small);
        let e = parse_trace_with(&text, limits).unwrap_err();
        assert_eq!(e.line, 2 + limits.max_ops);
        assert!(e.message.contains("3 operations"), "{}", e.message);

        // The same file parses under the default (generous) limits.
        assert!(parse_trace(&text).is_ok());
    }

    #[test]
    fn error_display_names_the_line() {
        let header = "ce-trace v1 completed=false\n";
        let e = parse_trace(&format!("{header}\nnot-hex\n")).unwrap_err();
        assert!(e.to_string().starts_with("trace line 3"));
    }
}
