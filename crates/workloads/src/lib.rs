//! # ce-workloads — benchmark kernels, functional emulation, and traces
//!
//! The paper evaluates its microarchitectures on seven SPEC'95 integer
//! benchmarks (compress, gcc, go, li, m88ksim, perl, vortex) run under a
//! modified SimpleScalar. Neither the binaries nor the toolchain are
//! available, so this crate substitutes **seven hand-written assembly
//! kernels** with the same behavioural character as their namesakes —
//! run-length encoding, an expression-evaluator state machine, 2-D board
//! scanning, cons-cell list processing, an instruction-set interpreter,
//! string hashing, and a record-store with a search tree — each executed by
//! an [`Emulator`] to produce the dynamic instruction
//! [`Trace`] that drives the timing simulator.
//!
//! A [`synthetic`] generator is also provided for stress tests and property
//! tests: it fabricates statistically-shaped instruction streams
//! (operation mix, dependence distances, branch bias) without needing a
//! program at all.
//!
//! ## Example
//!
//! ```
//! use ce_workloads::{Benchmark, trace_benchmark};
//!
//! let trace = trace_benchmark(Benchmark::Compress, 10_000)?;
//! assert!(trace.len() > 1_000);
//! # Ok::<(), ce_workloads::WorkloadError>(())
//! ```

pub mod emulator;
pub mod memory;
pub mod programs;
pub mod stats;
pub mod synthetic;
pub mod trace;
pub mod trace_io;

pub use emulator::{EmuError, Emulator};
pub use memory::Memory;
pub use programs::Benchmark;
pub use trace::{DynInst, Trace};

use std::error::Error;
use std::fmt;

/// Error produced when building or running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The kernel source failed to assemble (a bug in this crate).
    Asm(ce_isa::asm::AsmError),
    /// The kernel faulted while executing.
    Emu(EmuError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "kernel failed to assemble: {e}"),
            WorkloadError::Emu(e) => write!(f, "kernel faulted: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Asm(e) => Some(e),
            WorkloadError::Emu(e) => Some(e),
        }
    }
}

impl From<ce_isa::asm::AsmError> for WorkloadError {
    fn from(e: ce_isa::asm::AsmError) -> WorkloadError {
        WorkloadError::Asm(e)
    }
}

impl From<EmuError> for WorkloadError {
    fn from(e: EmuError) -> WorkloadError {
        WorkloadError::Emu(e)
    }
}

/// Assembles and executes a benchmark kernel, returning up to `max_insts`
/// dynamic instructions of trace.
///
/// This is the one-call path from a [`Benchmark`] name to the input the
/// timing simulator consumes (the paper ran each benchmark for at most
/// 0.5 B instructions; the kernels here complete in far fewer).
///
/// # Errors
///
/// Returns [`WorkloadError`] if the kernel fails to assemble or faults —
/// either indicates a bug in the bundled kernels.
pub fn trace_benchmark(benchmark: Benchmark, max_insts: u64) -> Result<Trace, WorkloadError> {
    let program = benchmark.program()?;
    let mut emu = Emulator::new(&program);
    Ok(emu.run(max_insts)?)
}
