//! # ce-workloads — benchmark kernels, functional emulation, and traces
//!
//! The paper evaluates its microarchitectures on seven SPEC'95 integer
//! benchmarks (compress, gcc, go, li, m88ksim, perl, vortex) run under a
//! modified SimpleScalar. Neither the binaries nor the toolchain are
//! available, so this crate substitutes **seven hand-written assembly
//! kernels** with the same behavioural character as their namesakes —
//! run-length encoding, an expression-evaluator state machine, 2-D board
//! scanning, cons-cell list processing, an instruction-set interpreter,
//! string hashing, and a record-store with a search tree — each executed by
//! an [`Emulator`] to produce the dynamic instruction
//! [`Trace`] that drives the timing simulator.
//!
//! A [`synthetic`] generator is also provided for stress tests and property
//! tests: it fabricates statistically-shaped instruction streams
//! (operation mix, dependence distances, branch bias) without needing a
//! program at all.
//!
//! ## Example
//!
//! ```
//! use ce_workloads::{Benchmark, trace_benchmark};
//!
//! let trace = trace_benchmark(Benchmark::Compress, 10_000)?;
//! assert!(trace.len() > 1_000);
//! # Ok::<(), ce_workloads::WorkloadError>(())
//! ```

pub mod emulator;
pub mod fault;
pub mod memory;
pub mod programs;
pub mod shrink;
pub mod stats;
pub mod synthetic;
pub mod trace;
pub mod trace_io;

pub use emulator::{EmuError, Emulator};
pub use fault::{corrupt_trace_text, TraceCorruption};
pub use memory::Memory;
pub use programs::Benchmark;
pub use trace::{DynInst, Trace};
pub use trace_io::{parse_trace, parse_trace_with, ParseLimits, TraceParseError};

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error produced when building or running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The kernel source failed to assemble (a bug in this crate).
    Asm(ce_isa::asm::AsmError),
    /// The kernel faulted while executing.
    Emu(EmuError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "kernel failed to assemble: {e}"),
            WorkloadError::Emu(e) => write!(f, "kernel faulted: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Asm(e) => Some(e),
            WorkloadError::Emu(e) => Some(e),
        }
    }
}

impl From<ce_isa::asm::AsmError> for WorkloadError {
    fn from(e: ce_isa::asm::AsmError) -> WorkloadError {
        WorkloadError::Asm(e)
    }
}

impl From<EmuError> for WorkloadError {
    fn from(e: EmuError) -> WorkloadError {
        WorkloadError::Emu(e)
    }
}

/// Assembles and executes a benchmark kernel, returning up to `max_insts`
/// dynamic instructions of trace.
///
/// This is the one-call path from a [`Benchmark`] name to the input the
/// timing simulator consumes (the paper ran each benchmark for at most
/// 0.5 B instructions; the kernels here complete in far fewer).
///
/// # Errors
///
/// Returns [`WorkloadError`] if the kernel fails to assemble or faults —
/// either indicates a bug in the bundled kernels.
pub fn trace_benchmark(benchmark: Benchmark, max_insts: u64) -> Result<Trace, WorkloadError> {
    let program = benchmark.program()?;
    let mut emu = Emulator::new(&program);
    Ok(emu.run(max_insts)?)
}

/// Aggregate counters of a [`TraceLru`] (see [`trace_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCacheStats {
    /// Lookups that found their entry resident.
    pub hits: u64,
    /// Lookups that had to generate (first touch, or re-touch after an
    /// eviction).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

/// A bounded, process-shareable LRU of generated traces.
///
/// The experiment service keeps one of these alive across many jobs, so
/// recently-used `(benchmark, max_insts)` traces are shared between jobs
/// while cold ones are dropped instead of accumulating without bound (a
/// long-running daemon sweeping many instruction caps would otherwise
/// retain every trace it ever generated). Eviction removes the map entry
/// only; worker threads still holding the `Arc<Trace>` keep it alive
/// until they finish, so eviction can never invalidate an in-flight cell.
///
/// A per-entry lock (not the map lock) is held during generation, so
/// different benchmarks can be emulated concurrently; threads racing on
/// the *same* key block on that entry and share the single generation.
pub struct TraceLru {
    cap: usize,
    inner: std::sync::Mutex<LruInner>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
}

type LruKey = (Benchmark, u64);
type LruEntry = Arc<std::sync::Mutex<Option<Arc<Trace>>>>;

#[derive(Default)]
struct LruInner {
    /// Monotonic use counter; the entry with the smallest tick is the
    /// least recently used.
    tick: u64,
    map: std::collections::HashMap<LruKey, (u64, LruEntry)>,
}

impl TraceLru {
    /// An empty cache retaining at most `cap` traces (`cap` is clamped to
    /// at least 1 — a cache that can hold nothing would serialize every
    /// lookup through regeneration).
    pub fn new(cap: usize) -> TraceLru {
        TraceLru {
            cap: cap.max(1),
            inner: std::sync::Mutex::new(LruInner::default()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The memoized trace for `(benchmark, max_insts)`, generating it on a
    /// miss. A hit is counted when the entry was resident at lookup time
    /// (even if its generation is still in flight on another thread).
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadError`] from generation. Failures are not
    /// cached; a later call retries.
    pub fn get(
        &self,
        benchmark: Benchmark,
        max_insts: u64,
    ) -> Result<Arc<Trace>, WorkloadError> {
        use std::sync::atomic::Ordering;
        let key = (benchmark, max_insts);
        let entry: LruEntry = {
            let mut inner = self.inner.lock().expect("trace cache map poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((last_used, entry)) = inner.map.get_mut(&key) {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(entry)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let entry = LruEntry::default();
                inner.map.insert(key, (tick, Arc::clone(&entry)));
                if inner.map.len() > self.cap {
                    let victim = inner
                        .map
                        .iter()
                        .filter(|(k, _)| **k != key)
                        .min_by_key(|(_, (last_used, _))| *last_used)
                        .map(|(k, _)| *k);
                    if let Some(victim) = victim {
                        inner.map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                entry
            }
        };

        let mut slot = entry.lock().expect("trace cache entry poisoned");
        if let Some(trace) = slot.as_ref() {
            return Ok(Arc::clone(trace));
        }
        let trace = Arc::new(trace_benchmark(benchmark, max_insts)?);
        *slot = Some(Arc::clone(&trace));
        Ok(trace)
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> TraceCacheStats {
        use std::sync::atomic::Ordering;
        TraceCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resident entries (in-flight generations included).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace cache map poisoned").map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide trace cache behind [`trace_cached`]. Capacity comes
/// from `CE_TRACE_CACHE_CAP` (read once, default 32 — comfortably above
/// any single sweep's distinct `(benchmark, cap)` set, small enough that
/// a daemon cycling through many caps stays bounded).
fn global_trace_cache() -> &'static TraceLru {
    static CACHE: std::sync::OnceLock<TraceLru> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        let cap = std::env::var("CE_TRACE_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(32);
        TraceLru::new(cap)
    })
}

/// Like [`trace_benchmark`], but memoized process-wide in a bounded LRU
/// (see [`TraceLru`]): every experiment binary, test, and worker thread
/// that asks for the same `(benchmark, max_insts)` pair shares one
/// immutable [`Trace`], generated once no matter how many threads race on
/// the first request.
///
/// # Errors
///
/// Propagates [`WorkloadError`] from generation. Failures are not cached;
/// a later call retries.
pub fn trace_cached(benchmark: Benchmark, max_insts: u64) -> Result<Arc<Trace>, WorkloadError> {
    global_trace_cache().get(benchmark, max_insts)
}

/// Counters of the process-wide trace cache. The experiment service
/// reports the eviction delta per job through its telemetry journal.
pub fn trace_cache_stats() -> TraceCacheStats {
    global_trace_cache().stats()
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    #[test]
    fn trace_cached_shares_one_trace_per_key() {
        let a = trace_cached(Benchmark::Compress, 3_000).unwrap();
        let b = trace_cached(Benchmark::Compress, 3_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc<Trace>");

        let c = trace_cached(Benchmark::Compress, 4_000).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different caps are different entries");

        let fresh = trace_benchmark(Benchmark::Compress, 3_000).unwrap();
        assert_eq!(*a, fresh, "cached trace must equal a fresh generation");
    }

    /// The LRU bound holds: a capacity-2 cache keeps the two most
    /// recently used entries, evicts the coldest, counts every hit, miss,
    /// and eviction, and still serves valid traces after eviction (at the
    /// cost of a regeneration).
    #[test]
    fn trace_lru_evicts_coldest_and_accounts() {
        let lru = TraceLru::new(2);
        let a1 = lru.get(Benchmark::Compress, 1_000).unwrap();
        lru.get(Benchmark::Li, 1_000).unwrap();
        assert_eq!(lru.stats(), TraceCacheStats { hits: 0, misses: 2, evictions: 0 });
        assert_eq!(lru.len(), 2);

        // Touch compress so li becomes the LRU victim.
        let a2 = lru.get(Benchmark::Compress, 1_000).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "hit must share the resident Arc");
        lru.get(Benchmark::Go, 1_000).unwrap();
        assert_eq!(lru.stats(), TraceCacheStats { hits: 1, misses: 3, evictions: 1 });
        assert_eq!(lru.len(), 2, "capacity bound respected");

        // li was evicted: re-touching it regenerates (a miss) and evicts
        // the new coldest entry (compress).
        let li = lru.get(Benchmark::Li, 1_000).unwrap();
        assert_eq!(*li, trace_benchmark(Benchmark::Li, 1_000).unwrap());
        assert_eq!(lru.stats(), TraceCacheStats { hits: 1, misses: 4, evictions: 2 });

        // The evicted Arc held above is still alive and intact.
        assert_eq!(*a1, trace_benchmark(Benchmark::Compress, 1_000).unwrap());
    }

    #[test]
    fn global_stats_are_visible() {
        let before = trace_cache_stats();
        trace_cached(Benchmark::Compress, 2_222).unwrap();
        trace_cached(Benchmark::Compress, 2_222).unwrap();
        let after = trace_cache_stats();
        assert!(after.hits + after.misses >= before.hits + before.misses + 2);
    }

    #[test]
    fn trace_cached_is_threadsafe_and_generates_once() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| trace_cached(Benchmark::Li, 2_500).unwrap())
            })
            .collect();
        let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
    }
}
