//! # ce-workloads — benchmark kernels, functional emulation, and traces
//!
//! The paper evaluates its microarchitectures on seven SPEC'95 integer
//! benchmarks (compress, gcc, go, li, m88ksim, perl, vortex) run under a
//! modified SimpleScalar. Neither the binaries nor the toolchain are
//! available, so this crate substitutes **seven hand-written assembly
//! kernels** with the same behavioural character as their namesakes —
//! run-length encoding, an expression-evaluator state machine, 2-D board
//! scanning, cons-cell list processing, an instruction-set interpreter,
//! string hashing, and a record-store with a search tree — each executed by
//! an [`Emulator`] to produce the dynamic instruction
//! [`Trace`] that drives the timing simulator.
//!
//! A [`synthetic`] generator is also provided for stress tests and property
//! tests: it fabricates statistically-shaped instruction streams
//! (operation mix, dependence distances, branch bias) without needing a
//! program at all.
//!
//! ## Example
//!
//! ```
//! use ce_workloads::{Benchmark, trace_benchmark};
//!
//! let trace = trace_benchmark(Benchmark::Compress, 10_000)?;
//! assert!(trace.len() > 1_000);
//! # Ok::<(), ce_workloads::WorkloadError>(())
//! ```

pub mod emulator;
pub mod fault;
pub mod memory;
pub mod programs;
pub mod shrink;
pub mod stats;
pub mod synthetic;
pub mod trace;
pub mod trace_io;

pub use emulator::{EmuError, Emulator};
pub use fault::{corrupt_trace_text, TraceCorruption};
pub use memory::Memory;
pub use programs::Benchmark;
pub use trace::{DynInst, Trace};
pub use trace_io::{parse_trace, parse_trace_with, ParseLimits, TraceParseError};

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error produced when building or running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The kernel source failed to assemble (a bug in this crate).
    Asm(ce_isa::asm::AsmError),
    /// The kernel faulted while executing.
    Emu(EmuError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "kernel failed to assemble: {e}"),
            WorkloadError::Emu(e) => write!(f, "kernel faulted: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Asm(e) => Some(e),
            WorkloadError::Emu(e) => Some(e),
        }
    }
}

impl From<ce_isa::asm::AsmError> for WorkloadError {
    fn from(e: ce_isa::asm::AsmError) -> WorkloadError {
        WorkloadError::Asm(e)
    }
}

impl From<EmuError> for WorkloadError {
    fn from(e: EmuError) -> WorkloadError {
        WorkloadError::Emu(e)
    }
}

/// Assembles and executes a benchmark kernel, returning up to `max_insts`
/// dynamic instructions of trace.
///
/// This is the one-call path from a [`Benchmark`] name to the input the
/// timing simulator consumes (the paper ran each benchmark for at most
/// 0.5 B instructions; the kernels here complete in far fewer).
///
/// # Errors
///
/// Returns [`WorkloadError`] if the kernel fails to assemble or faults —
/// either indicates a bug in the bundled kernels.
pub fn trace_benchmark(benchmark: Benchmark, max_insts: u64) -> Result<Trace, WorkloadError> {
    let program = benchmark.program()?;
    let mut emu = Emulator::new(&program);
    Ok(emu.run(max_insts)?)
}

/// Like [`trace_benchmark`], but memoized process-wide.
///
/// Every experiment binary, test, and worker thread that asks for the same
/// `(benchmark, max_insts)` pair shares one immutable [`Trace`]: the kernel
/// is assembled and emulated exactly once per process, no matter how many
/// threads race on the first request. A per-entry lock (not the map lock)
/// is held during generation, so different benchmarks can be emulated
/// concurrently by different worker threads.
///
/// # Errors
///
/// Propagates [`WorkloadError`] from generation. Failures are not cached;
/// a later call retries.
pub fn trace_cached(benchmark: Benchmark, max_insts: u64) -> Result<Arc<Trace>, WorkloadError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    type Key = (Benchmark, u64);
    type Entry = Arc<Mutex<Option<Arc<Trace>>>>;
    static CACHE: OnceLock<Mutex<HashMap<Key, Entry>>> = OnceLock::new();

    let entry: Entry = {
        let map = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = map.lock().expect("trace cache map poisoned");
        Arc::clone(map.entry((benchmark, max_insts)).or_default())
    };

    let mut slot = entry.lock().expect("trace cache entry poisoned");
    if let Some(trace) = slot.as_ref() {
        return Ok(Arc::clone(trace));
    }
    let trace = Arc::new(trace_benchmark(benchmark, max_insts)?);
    *slot = Some(Arc::clone(&trace));
    Ok(trace)
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    #[test]
    fn trace_cached_shares_one_trace_per_key() {
        let a = trace_cached(Benchmark::Compress, 3_000).unwrap();
        let b = trace_cached(Benchmark::Compress, 3_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc<Trace>");

        let c = trace_cached(Benchmark::Compress, 4_000).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different caps are different entries");

        let fresh = trace_benchmark(Benchmark::Compress, 3_000).unwrap();
        assert_eq!(*a, fresh, "cached trace must equal a fresh generation");
    }

    #[test]
    fn trace_cached_is_threadsafe_and_generates_once() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| trace_cached(Benchmark::Li, 2_500).unwrap())
            })
            .collect();
        let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
    }
}
