//! Trace statistics: operation mix, branch behaviour, dependence distances.
//!
//! These summaries serve two purposes: characterization tests that verify
//! each kernel behaves like its SPEC namesake (li is pointer-chasing and
//! load-heavy, go is branchy, …), and inputs for tuning the synthetic trace
//! generator.

use crate::trace::Trace;
use ce_isa::{OperationKind, Reg};

/// Aggregate statistics over a trace.
///
/// ```
/// use ce_workloads::stats::TraceStats;
/// use ce_workloads::{trace_benchmark, Benchmark};
///
/// let trace = trace_benchmark(Benchmark::Li, 60_000)?;
/// let stats = TraceStats::compute(&trace);
/// // li is the pointer-chasing, load-heavy kernel.
/// assert!(stats.load_fraction() > 0.15);
/// # Ok::<(), ce_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Integer ALU operations (including shifts, mul/div).
    pub alu: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub branches_taken: u64,
    /// Unconditional control transfers (jumps, calls, returns).
    pub jumps: u64,
    /// `nop`/`halt`.
    pub other: u64,
    /// Mean distance (in dynamic instructions) from a register's producer
    /// to its first consumer.
    pub mean_dep_distance: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut stats = TraceStats {
            total: trace.len() as u64,
            alu: 0,
            loads: 0,
            stores: 0,
            branches: 0,
            branches_taken: 0,
            jumps: 0,
            other: 0,
            mean_dep_distance: 0.0,
        };

        // seq of the most recent writer of each architectural register.
        let mut last_writer: [Option<u64>; Reg::COUNT] = [None; Reg::COUNT];
        // Producers whose first use we have already credited.
        let mut credited: [bool; Reg::COUNT] = [false; Reg::COUNT];
        let mut dist_sum = 0u64;
        let mut dist_count = 0u64;

        for d in trace {
            match d.inst.opcode.kind() {
                OperationKind::Alu => stats.alu += 1,
                OperationKind::Load => stats.loads += 1,
                OperationKind::Store => stats.stores += 1,
                OperationKind::Branch => {
                    stats.branches += 1;
                    if d.taken {
                        stats.branches_taken += 1;
                    }
                }
                OperationKind::Jump => stats.jumps += 1,
                OperationKind::Other => stats.other += 1,
            }

            for src in d.inst.uses().into_iter().flatten() {
                if let Some(writer_seq) = last_writer[src.index()] {
                    if !credited[src.index()] {
                        dist_sum += d.seq - writer_seq;
                        dist_count += 1;
                        credited[src.index()] = true;
                    }
                }
            }
            if let Some(dst) = d.inst.defs() {
                last_writer[dst.index()] = Some(d.seq);
                credited[dst.index()] = false;
            }
        }

        if dist_count > 0 {
            stats.mean_dep_distance = dist_sum as f64 / dist_count as f64;
        }
        stats
    }

    /// Fraction of instructions that are loads.
    pub fn load_fraction(&self) -> f64 {
        self.frac(self.loads)
    }

    /// Fraction of instructions that are stores.
    pub fn store_fraction(&self) -> f64 {
        self.frac(self.stores)
    }

    /// Fraction of instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.branches)
    }

    /// Fraction of instructions that transfer control (cond. + uncond.).
    pub fn control_fraction(&self) -> f64 {
        self.frac(self.branches + self.jumps)
    }

    /// Taken rate among conditional branches.
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branches_taken as f64 / self.branches as f64
        }
    }

    fn frac(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::Emulator;
    use ce_isa::asm::assemble;

    #[test]
    fn counts_classify_correctly() {
        let program = assemble(
            "
            li t0, 4
        loop:
            lw t1, 0(gp)
            addu t2, t1, t0
            sw t2, 4(gp)
            addiu t0, t0, -1
            bnez t0, loop
            halt
        ",
        )
        .unwrap();
        let mut emu = Emulator::new(&program);
        let trace = emu.run_to_completion(1_000).unwrap();
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.total, trace.len() as u64);
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.stores, 4);
        assert_eq!(stats.branches, 4);
        assert_eq!(stats.branches_taken, 3);
        assert!((stats.taken_rate() - 0.75).abs() < 1e-12);
        assert!(stats.alu > 0);
        assert_eq!(stats.other, 1); // halt
    }

    #[test]
    fn dependence_distance_of_a_chain_is_one() {
        let program = assemble(
            "
            li t0, 1
            addu t1, t0, t0
            addu t2, t1, t1
            addu t3, t2, t2
            halt
        ",
        )
        .unwrap();
        let mut emu = Emulator::new(&program);
        let trace = emu.run_to_completion(100).unwrap();
        let stats = TraceStats::compute(&trace);
        assert!((stats.mean_dep_distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let stats = TraceStats::compute(&Trace::new());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.load_fraction(), 0.0);
        assert_eq!(stats.taken_rate(), 0.0);
    }
}
