# m88ksim — 124.m88ksim analogue.
#
# An instruction-set interpreter interpreting a tiny guest program — a
# simulator inside the simulator, just like m88ksim itself. Guest words are
# op:4 | rd:4 | rs:4 | rt:4 | imm:16; dispatch goes through a jump table
# (`jr`), the classic interpreter indirect-branch pattern. The guest program
# sums 1..100; the interpreter reruns it 80 times and self-checks the guest
# register against 5050 every run.
#
# Guest ISA: 0=halt  1=li rd,imm  2=add rd,rs,rt  3=sub rd,rs,rt
#            4=bne rs,rt,imm  5=addi rd,rs,imm  6=blt rs,rt,imm  7=mul

        .text
main:
        li   s5, 80             # interpreter runs
        li   s6, 1              # result flag
run_loop:
        blez s5, run_done
        jal  interp
        la   t1, gregs
        lw   t0, 4(t1)          # guest r1 = the sum
        li   t2, 5050
        beq  t0, t2, run_ok
        li   s6, 0
run_ok:
        addiu s5, s5, -1
        b    run_loop
run_done:
        sw   s6, result(gp)
        halt

# interp: reset guest state and interpret until the guest halts.
# t9 = guest PC (word index), t8 = guest text base, t7 = guest regfile.
interp:
        la   t0, gregs
        li   t1, 16
ci_loop:
        blez t1, ci_done
        sw   zero, 0(t0)
        addiu t0, t0, 4
        addiu t1, t1, -1
        b    ci_loop
ci_done:
        li   t9, 0
        la   t8, gprog
        la   t7, gregs
fetch:
        sll  t0, t9, 2
        addu t0, t8, t0
        lw   t1, 0(t0)          # guest instruction word
        addiu t9, t9, 1
        srl  t2, t1, 28
        andi t2, t2, 15         # op
        srl  t3, t1, 24
        andi t3, t3, 15         # rd
        srl  t4, t1, 20
        andi t4, t4, 15         # rs
        srl  t5, t1, 16
        andi t5, t5, 15         # rt
        andi t6, t1, 0xffff    # imm
        la   t0, optable
        sll  t2, t2, 2
        addu t0, t0, t2
        lw   t0, 0(t0)
        jr   t0                 # dispatch

op_halt:
        jr   ra

op_li:
        sll  t3, t3, 2
        addu t3, t7, t3
        sw   t6, 0(t3)
        b    fetch

op_add:
        sll  t4, t4, 2
        addu t4, t7, t4
        lw   t4, 0(t4)
        sll  t5, t5, 2
        addu t5, t7, t5
        lw   t5, 0(t5)
        addu t4, t4, t5
        sll  t3, t3, 2
        addu t3, t7, t3
        sw   t4, 0(t3)
        b    fetch

op_sub:
        sll  t4, t4, 2
        addu t4, t7, t4
        lw   t4, 0(t4)
        sll  t5, t5, 2
        addu t5, t7, t5
        lw   t5, 0(t5)
        subu t4, t4, t5
        sll  t3, t3, 2
        addu t3, t7, t3
        sw   t4, 0(t3)
        b    fetch

op_bne:
        sll  t4, t4, 2
        addu t4, t7, t4
        lw   t4, 0(t4)
        sll  t5, t5, 2
        addu t5, t7, t5
        lw   t5, 0(t5)
        beq  t4, t5, fetch
        move t9, t6             # taken: guest PC = imm
        b    fetch

op_addi:
        sll  t4, t4, 2
        addu t4, t7, t4
        lw   t4, 0(t4)
        addu t4, t4, t6
        sll  t3, t3, 2
        addu t3, t7, t3
        sw   t4, 0(t3)
        b    fetch

op_blt:
        sll  t4, t4, 2
        addu t4, t7, t4
        lw   t4, 0(t4)
        sll  t5, t5, 2
        addu t5, t7, t5
        lw   t5, 0(t5)
        bge  t4, t5, fetch
        move t9, t6             # taken: guest PC = imm
        b    fetch

op_mul:
        sll  t4, t4, 2
        addu t4, t7, t4
        lw   t4, 0(t4)
        sll  t5, t5, 2
        addu t5, t7, t5
        lw   t5, 0(t5)
        mul  t4, t4, t5
        sll  t3, t3, 2
        addu t3, t7, t3
        sw   t4, 0(t3)
        b    fetch

        .data
gregs:  .space 64
# Guest program (sums 1..100 into guest r1):
#   0: li   r1, 0
#   1: li   r2, 0
#   2: li   r3, 100
#   3: addi r2, r2, 1
#   4: add  r1, r1, r2
#   5: blt  r2, r3, 3
#   6: halt
gprog:  .word 0x11000000, 0x12000000, 0x13000064, 0x52200001
        .word 0x21120000, 0x60230003, 0x00000000
# Jump table indexed by guest opcode (text labels, defined above).
optable: .word op_halt, op_li, op_add, op_sub, op_bne, op_addi, op_blt, op_mul
        .align 2
result: .word 0
