# gcc — 126.gcc analogue.
#
# A recursive-descent expression evaluator: grammar
#     expr   := term  (('+'|'-') term)*
#     term   := factor ('*' factor)*
#     factor := '(' expr ')' | number
# evaluated over two constant expressions, 300 rounds. The call-heavy,
# branch-dense parsing loop mirrors gcc's front-end character. Self-check:
# the accumulated total must equal 300 × (175 + 55).

        .text
main:
        li   s6, 0              # accumulated total
        li   s5, 300            # rounds
main_loop:
        blez s5, main_done
        sw   zero, pos(gp)
        la   t0, expr1
        sw   t0, exprp(gp)
        jal  parse_expr
        addu s6, s6, v0
        sw   zero, pos(gp)
        la   t0, expr2
        sw   t0, exprp(gp)
        jal  parse_expr
        addu s6, s6, v0
        addiu s5, s5, -1
        b    main_loop
main_done:
        li   t0, 69000          # 300 * (175 + 55)
        li   v0, 0
        bne  s6, t0, main_store
        li   v0, 1
main_store:
        sw   v0, result(gp)
        halt

# peek: v0 = current character (0 at end of string).
peek:
        lw   t0, exprp(gp)
        lw   t1, pos(gp)
        addu t0, t0, t1
        lbu  v0, 0(t0)
        jr   ra

# advance: consume one character.
advance:
        lw   t0, pos(gp)
        addiu t0, t0, 1
        sw   t0, pos(gp)
        jr   ra

# parse_expr: v0 = value of expr at pos.
parse_expr:
        addiu sp, sp, -8
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        jal  parse_term
        move s0, v0
pe_loop:
        jal  peek
        li   t0, '+'
        beq  v0, t0, pe_plus
        li   t0, '-'
        beq  v0, t0, pe_minus
        b    pe_done
pe_plus:
        jal  advance
        jal  parse_term
        addu s0, s0, v0
        b    pe_loop
pe_minus:
        jal  advance
        jal  parse_term
        subu s0, s0, v0
        b    pe_loop
pe_done:
        move v0, s0
        lw   ra, 0(sp)
        lw   s0, 4(sp)
        addiu sp, sp, 8
        jr   ra

# parse_term: v0 = value of term at pos.
parse_term:
        addiu sp, sp, -8
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        jal  parse_factor
        move s0, v0
pt_loop:
        jal  peek
        li   t0, '*'
        bne  v0, t0, pt_done
        jal  advance
        jal  parse_factor
        mul  s0, s0, v0
        b    pt_loop
pt_done:
        move v0, s0
        lw   ra, 0(sp)
        lw   s0, 4(sp)
        addiu sp, sp, 8
        jr   ra

# parse_factor: parenthesized expr or multi-digit number.
parse_factor:
        addiu sp, sp, -8
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        jal  peek
        li   t0, '('
        bne  v0, t0, pf_number
        jal  advance            # consume '('
        jal  parse_expr
        move s0, v0
        jal  advance            # consume ')'
        move v0, s0
        b    pf_ret
pf_number:
        li   s0, 0
pf_digit:
        jal  peek
        li   t0, '0'
        blt  v0, t0, pf_numdone
        li   t0, '9'
        bgt  v0, t0, pf_numdone
        li   t1, 10
        mul  s0, s0, t1
        addiu v0, v0, -48
        addu s0, s0, v0
        jal  advance
        b    pf_digit
pf_numdone:
        move v0, s0
pf_ret:
        lw   ra, 0(sp)
        lw   s0, 4(sp)
        addiu sp, sp, 8
        jr   ra

        .data
pos:    .word 0
exprp:  .word 0
expr1:  .asciiz "((1+2)*3+(4+5)*2)*2+(6*6-5)*3+(9-(2+3))*7"
expr2:  .asciiz "10+20*3-15"
        .align 2
result: .word 0
