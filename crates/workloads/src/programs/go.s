# go — 099.go analogue.
#
# Scans a 19×19 board of three-valued cells, counting same-coloured
# neighbours and "atari" patterns (non-empty cell with exactly one empty
# neighbour), over 8 generations with a deterministic mutation between
# generations. Self-check: each generation is scanned twice — row-major and
# column-major — and both orders must produce identical counts (they visit
# the same cells). The irregular bounds checks and value-dependent branches
# mirror go's pattern-matching character.

        .text
main:
        # ---- fill board with LCG values mod 3 ------------------------
        la   s0, board
        li   s1, 361
        li   t0, 777
fill:
        blez s1, fill_done
        li   t1, 1103515245
        mul  t0, t0, t1
        addiu t0, t0, 12345
        srl  t2, t0, 16
        li   t3, 3
        rem  t4, t2, t3
        sb   t4, 0(s0)
        addiu s0, s0, 1
        addiu s1, s1, -1
        b    fill
fill_done:
        li   s5, 8              # generations
        li   s6, 1              # result flag (ANDed across checks)
        li   s7, 0              # checksum accumulator
gen_loop:
        blez s5, gen_done
        li   a0, 0              # row-major scan
        jal  scan
        move s2, v0             # neighbour score
        move s3, v1             # atari count
        li   a0, 1              # column-major scan
        jal  scan
        bne  v0, s2, gen_fail
        bne  v1, s3, gen_fail
        addu s7, s7, s2
        addu s7, s7, s3
        b    gen_mutate
gen_fail:
        li   s6, 0
gen_mutate:
        # board[i] = (board[i] + i) mod 3 — purely cell-local, so the
        # row/column scan equivalence still holds next generation.
        la   t0, board
        li   t1, 0
mut_loop:
        li   t8, 361
        bge  t1, t8, mut_done
        addu t2, t0, t1
        lbu  t3, 0(t2)
        addu t3, t3, t1
        li   t4, 3
        rem  t5, t3, t4
        sb   t5, 0(t2)
        addiu t1, t1, 1
        b    mut_loop
mut_done:
        addiu s5, s5, -1
        b    gen_loop
gen_done:
        bgtz s7, have_work      # a zero checksum means the scan is broken
        li   s6, 0
have_work:
        sw   s7, checksum(gp)
        sw   s6, result(gp)
        halt

# scan(a0 = 0 row-major / 1 column-major):
#   v0 = Σ over cells of (same-neighbour-count + 1) * (value + 1)
#   v1 = number of atari cells (value != 0, exactly one empty neighbour)
# Uses only t/a registers; makes no calls.
scan:
        la   a3, board
        li   v0, 0
        li   v1, 0
        li   a1, 0              # outer coordinate
scan_outer:
        li   t8, 19
        bge  a1, t8, scan_done
        li   a2, 0              # inner coordinate
scan_inner:
        li   t8, 19
        bge  a2, t8, scan_inner_done
        beqz a0, idx_rm
        move t9, a2             # column-major: row = inner
        move t7, a1             #               col = outer
        b    idx_done
idx_rm:
        move t9, a1             # row-major: row = outer
        move t7, a2             #            col = inner
idx_done:
        li   t8, 19
        mul  t3, t9, t8
        addu t3, t3, t7         # idx = row*19 + col
        addu t4, a3, t3
        lbu  t0, 0(t4)          # cell value
        li   t1, 0              # same-neighbour count
        li   t2, 0              # empty-neighbour count
        # up
        blez t9, n_down
        addiu t5, t3, -19
        addu t5, a3, t5
        lbu  t6, 0(t5)
        bne  t6, t0, up_notsame
        addiu t1, t1, 1
up_notsame:
        bnez t6, n_down
        addiu t2, t2, 1
n_down:
        li   t8, 18
        bge  t9, t8, n_left
        addiu t5, t3, 19
        addu t5, a3, t5
        lbu  t6, 0(t5)
        bne  t6, t0, down_notsame
        addiu t1, t1, 1
down_notsame:
        bnez t6, n_left
        addiu t2, t2, 1
n_left:
        blez t7, n_right
        addiu t5, t3, -1
        addu t5, a3, t5
        lbu  t6, 0(t5)
        bne  t6, t0, left_notsame
        addiu t1, t1, 1
left_notsame:
        bnez t6, n_right
        addiu t2, t2, 1
n_right:
        li   t8, 18
        bge  t7, t8, n_done
        addiu t5, t3, 1
        addu t5, a3, t5
        lbu  t6, 0(t5)
        bne  t6, t0, right_notsame
        addiu t1, t1, 1
right_notsame:
        bnez t6, n_done
        addiu t2, t2, 1
n_done:
        addiu t5, t1, 1
        addiu t6, t0, 1
        mul  t5, t5, t6
        addu v0, v0, t5
        beqz t0, cell_next      # empty cells cannot be in atari
        li   t8, 1
        bne  t2, t8, cell_next
        addiu v1, v1, 1
cell_next:
        addiu a2, a2, 1
        b    scan_inner
scan_inner_done:
        addiu a1, a1, 1
        b    scan_outer
scan_done:
        jr   ra

        .data
board:  .space 361
        .align 2
checksum: .word 0
result: .word 0
