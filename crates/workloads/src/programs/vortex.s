# vortex — 147.vortex analogue.
#
# An in-memory record store indexed by a binary search tree. 250 records
# with LCG-drawn 14-bit ids are inserted (duplicates rejected); the payload
# sum is accumulated at insert time. The store is then validated two
# independent ways: 8 rounds of per-id lookups through the tree, and one
# recursive in-order traversal. Self-check: both must reproduce the insert-
# time sum (lookups ×8), and at least 200 inserts must have succeeded.
#
# Node layout: [id, payload, left, right], 16 bytes.

        .text
main:
        sw   zero, root(gp)
        sw   zero, ncount(gp)
        li   s0, 0              # draw index
        li   s1, 0              # inserted count
        li   s2, 0              # payload sum at insert
        li   s3, 424243         # LCG state
        li   s7, 250
ins_loop:
        bge  s0, s7, ins_done
        li   t0, 1103515245
        mul  s3, s3, t0
        addiu s3, s3, 12345
        srl  t1, s3, 8
        andi t1, t1, 0x3fff    # id: 14 bits (collisions expected)
        xori t2, t1, 0x5a5a
        addu t2, t2, s0         # payload
        move a0, t1
        move a1, t2
        jal  insert             # v0 = 1 if inserted
        beqz v0, ins_next
        sll  t0, s1, 2
        la   t3, idlist
        addu t0, t3, t0
        sw   a0, 0(t0)          # remember the id for the lookup phase
        addiu s1, s1, 1
        addu s2, s2, a1
ins_next:
        addiu s0, s0, 1
        b    ins_loop
ins_done:

        # ---- 8 rounds of per-id tree lookups -------------------------
        li   s6, 8              # rounds
        li   s5, 0              # lookup payload sum
lk_round:
        blez s6, lk_done
        li   s4, 0
lk_loop:
        bge  s4, s1, lk_next_round
        sll  t0, s4, 2
        la   t1, idlist
        addu t0, t1, t0
        lw   a0, 0(t0)
        jal  find               # v0 = payload (0 if missing)
        addu s5, s5, v0
        addiu s4, s4, 1
        b    lk_loop
lk_next_round:
        addiu s6, s6, -1
        b    lk_round
lk_done:

        # ---- recursive in-order traversal ----------------------------
        lw   a0, root(gp)
        jal  sumtree
        move s6, v0

        # ---- verdict --------------------------------------------------
        sll  t1, s2, 3          # insert sum × 8
        li   v0, 0
        bne  s5, t1, verdict
        bne  s6, s2, verdict
        li   t0, 200
        blt  s1, t0, verdict
        li   v0, 1
verdict:
        sw   v0, result(gp)
        halt

# insert(a0 = id, a1 = payload): v0 = 1 if inserted, 0 on duplicate.
# Iterative walk; a0/a1 are preserved. t6 ends up holding the address of
# the parent link to fill.
insert:
        lw   t0, root(gp)
        beqz t0, ins_at_root
walk:
        lw   t1, 0(t0)
        beq  t1, a0, ins_dup
        blt  a0, t1, go_left
        lw   t2, 12(t0)         # right child
        beqz t2, ins_at_right
        move t0, t2
        b    walk
go_left:
        lw   t2, 8(t0)          # left child
        beqz t2, ins_at_left
        move t0, t2
        b    walk
ins_at_root:
        la   t6, root
        b    do_alloc
ins_at_left:
        addiu t6, t0, 8
        b    do_alloc
ins_at_right:
        addiu t6, t0, 12
do_alloc:
        lw   t3, ncount(gp)
        sll  t4, t3, 4
        la   t5, nodepool
        addu t4, t5, t4         # node = nodepool + 16*ncount
        addiu t3, t3, 1
        sw   t3, ncount(gp)
        sw   a0, 0(t4)
        sw   a1, 4(t4)
        sw   zero, 8(t4)
        sw   zero, 12(t4)
        sw   t4, 0(t6)          # link into parent (or root)
        li   v0, 1
        jr   ra
ins_dup:
        li   v0, 0
        jr   ra

# find(a0 = id): v0 = payload, or 0 if the id is not in the tree.
find:
        lw   t0, root(gp)
f_walk:
        beqz t0, f_miss
        lw   t1, 0(t0)
        beq  t1, a0, f_found
        blt  a0, t1, f_left
        lw   t0, 12(t0)
        b    f_walk
f_left:
        lw   t0, 8(t0)
        b    f_walk
f_found:
        lw   v0, 4(t0)
        jr   ra
f_miss:
        li   v0, 0
        jr   ra

# sumtree(a0 = node): v0 = Σ payloads, by recursion (left, self, right).
sumtree:
        beqz a0, st_zero
        addiu sp, sp, -12
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        sw   s1, 8(sp)
        move s0, a0
        lw   a0, 8(s0)
        jal  sumtree
        move s1, v0
        lw   t0, 4(s0)
        addu s1, s1, t0
        lw   a0, 12(s0)
        jal  sumtree
        addu v0, v0, s1
        lw   ra, 0(sp)
        lw   s0, 4(sp)
        lw   s1, 8(sp)
        addiu sp, sp, 12
        jr   ra
st_zero:
        li   v0, 0
        jr   ra

        .data
root:   .word 0
ncount: .word 0
idlist: .space 1024
nodepool: .space 4096
result: .word 0
