//! The seven SPEC'95-analogue benchmark kernels.
//!
//! Each kernel is a hand-written assembly program whose control-flow,
//! dependence, and memory behaviour mirrors the character of its SPEC
//! namesake (the suite the paper uses in Section 5.2):
//!
//! | Kernel | SPEC analogue | Character |
//! |---|---|---|
//! | `compress` | 129.compress | byte-stream run-length coding, tight data-dependent loops |
//! | `gcc` | 126.gcc | recursive-descent expression parsing, call-heavy, branchy |
//! | `go` | 099.go | 2-D board scanning, irregular data-dependent branches |
//! | `li` | 130.li | cons-cell allocation, pointer chasing, list reversal |
//! | `m88ksim` | 124.m88ksim | instruction interpreter: fetch/decode/dispatch via jump table |
//! | `perl` | 134.perl | string hashing and associative lookup with chaining |
//! | `vortex` | 147.vortex | record store with binary-search-tree index |
//!
//! Every kernel is **self-checking**: it computes its answer two independent
//! ways (or validates a round-trip) and stores 1 into its `result` word on
//! success. [`Benchmark::verify`] reads that word back after emulation.

use crate::emulator::Emulator;
use ce_isa::asm::{assemble, AsmError, Program};
use std::fmt;

/// A named benchmark kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Run-length byte compressor (129.compress analogue).
    Compress,
    /// Recursive-descent expression evaluator (126.gcc analogue).
    Gcc,
    /// Board pattern scanner (099.go analogue).
    Go,
    /// Cons-cell list processor (130.li analogue).
    Li,
    /// Instruction-set interpreter (124.m88ksim analogue).
    M88ksim,
    /// String hash table (134.perl analogue).
    Perl,
    /// Record store with tree index (147.vortex analogue).
    Vortex,
}

impl Benchmark {
    /// All seven benchmarks in the order the paper's figures list them.
    pub fn all() -> [Benchmark; 7] {
        [
            Benchmark::Compress,
            Benchmark::Gcc,
            Benchmark::Go,
            Benchmark::Li,
            Benchmark::M88ksim,
            Benchmark::Perl,
            Benchmark::Vortex,
        ]
    }

    /// Looks a benchmark up by its display name (the inverse of
    /// [`name`](Benchmark::name)) — the wire vocabulary `cesim --bench`
    /// and the experiment service's cell specs share.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// The benchmark's display name (lowercase, as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Vortex => "vortex",
        }
    }

    /// Approximate dynamic instruction count of the kernel when run to
    /// completion (its natural length, uncapped).
    ///
    /// These are measured constants, not guarantees — kernels are fixed
    /// programs so the real count only moves when a kernel's source
    /// changes, and `programs::tests::approx_dynamic_insts_tracks_reality`
    /// pins each constant to within 10% of the measured length. Callers
    /// use this for *scheduling*, not correctness: the bench runner sorts
    /// sweep cells longest-first so gcc and m88ksim don't serialize the
    /// tail of a parallel sweep.
    pub fn approx_dynamic_insts(self) -> u64 {
        match self {
            Benchmark::Compress => 61_000,
            Benchmark::Gcc => 581_000,
            Benchmark::Go => 337_000,
            Benchmark::Li => 254_000,
            Benchmark::M88ksim => 703_000,
            Benchmark::Perl => 193_000,
            Benchmark::Vortex => 176_000,
        }
    }

    /// The kernel's assembly source text.
    pub fn source(self) -> &'static str {
        match self {
            Benchmark::Compress => include_str!("compress.s"),
            Benchmark::Gcc => include_str!("gcc.s"),
            Benchmark::Go => include_str!("go.s"),
            Benchmark::Li => include_str!("li.s"),
            Benchmark::M88ksim => include_str!("m88ksim.s"),
            Benchmark::Perl => include_str!("perl.s"),
            Benchmark::Vortex => include_str!("vortex.s"),
        }
    }

    /// Assembles the kernel.
    ///
    /// # Errors
    ///
    /// Returns the assembler error (which would indicate a bug in the
    /// bundled kernel source).
    pub fn program(self) -> Result<Program, AsmError> {
        assemble(self.source())
    }

    /// Checks the kernel's self-test result in a finished emulator: reads
    /// the `result` word and returns whether it is 1.
    ///
    /// Returns `false` if the program has no `result` symbol or has not
    /// halted.
    pub fn verify(self, emulator: &Emulator, program: &Program) -> bool {
        if !emulator.is_halted() {
            return false;
        }
        match program.symbols.get("result") {
            Some(&addr) => emulator.memory().read_word(addr) == 1,
            None => false,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Upper bound on any kernel's dynamic length; they are sized to finish
    /// in a few hundred thousand instructions.
    const BUDGET: u64 = 5_000_000;

    fn run_and_verify(bench: Benchmark) {
        let program = bench.program().unwrap_or_else(|e| panic!("{bench}: {e}"));
        let mut emu = Emulator::new(&program);
        let trace = emu
            .run_to_completion(BUDGET)
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert!(trace.is_completed(), "{bench} did not complete");
        assert!(
            bench.verify(&emu, &program),
            "{bench} self-check failed (result != 1); executed {}",
            emu.executed()
        );
        // Every kernel should be a non-trivial workload.
        assert!(
            trace.len() > 10_000,
            "{bench} is too short to be a meaningful workload: {} insts",
            trace.len()
        );
    }

    #[test]
    fn compress_self_checks() {
        run_and_verify(Benchmark::Compress);
    }

    #[test]
    fn gcc_self_checks() {
        run_and_verify(Benchmark::Gcc);
    }

    #[test]
    fn go_self_checks() {
        run_and_verify(Benchmark::Go);
    }

    #[test]
    fn li_self_checks() {
        run_and_verify(Benchmark::Li);
    }

    #[test]
    fn m88ksim_self_checks() {
        run_and_verify(Benchmark::M88ksim);
    }

    #[test]
    fn perl_self_checks() {
        run_and_verify(Benchmark::Perl);
    }

    #[test]
    fn vortex_self_checks() {
        run_and_verify(Benchmark::Vortex);
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["compress", "gcc", "go", "li", "m88ksim", "perl", "vortex"]
        );
    }

    #[test]
    fn approx_dynamic_insts_tracks_reality() {
        for bench in Benchmark::all() {
            let program = bench.program().unwrap();
            let mut emu = Emulator::new(&program);
            let trace = emu.run_to_completion(BUDGET).unwrap();
            let actual = trace.len() as f64;
            let approx = bench.approx_dynamic_insts() as f64;
            let rel = (approx - actual).abs() / actual;
            assert!(
                rel < 0.10,
                "{bench}: approx_dynamic_insts {approx} is {:.1}% off the measured {actual}",
                rel * 100.0
            );
        }
    }

    #[test]
    fn verify_rejects_unhalted_emulator() {
        let program = Benchmark::Compress.program().unwrap();
        let emu = Emulator::new(&program);
        assert!(!Benchmark::Compress.verify(&emu, &program));
    }
}
