# perl — 134.perl analogue.
#
# String hashing and associative lookup: generates 150 four-character keys,
# inserts them into a 64-bucket chained hash table (djb2 hash), then runs 6
# rounds of positive lookups (every key must hit) and negative lookups
# (every mutated key must miss). The hash/strcmp inner loops and chain
# walking mirror perl's associative-array character. Self-check: hit and
# miss counts must both equal 6 × 150.

        .text
main:
        # ---- generate keys "kDDD\0" at strbuf + 8*i ------------------
        li   s0, 0
        li   s7, 150
gen_loop:
        bge  s0, s7, gen_done
        sll  t0, s0, 3
        la   t1, strbuf
        addu t0, t1, t0
        li   t2, 'k'
        sb   t2, 0(t0)
        li   t3, 100
        div  t4, s0, t3
        addiu t5, t4, 48
        sb   t5, 1(t0)          # hundreds digit
        rem  t4, s0, t3
        li   t3, 10
        div  t6, t4, t3
        addiu t5, t6, 48
        sb   t5, 2(t0)          # tens digit
        rem  t6, t4, t3
        addiu t5, t6, 48
        sb   t5, 3(t0)          # ones digit
        sb   zero, 4(t0)
        addiu s0, s0, 1
        b    gen_loop
gen_done:

        # ---- insert every key ----------------------------------------
        li   s0, 0
ins_loop:
        bge  s0, s7, ins_done
        sll  t0, s0, 3
        la   t1, strbuf
        addu a0, t1, t0
        jal  hash_str           # v0 = hash
        li   t0, 12
        mul  t1, s0, t0
        la   t2, nodepool
        addu t2, t2, t1         # node = nodepool + 12*i
        sll  t0, s0, 3
        la   t1, strbuf
        addu t1, t1, t0
        sw   t1, 0(t2)          # node.key
        sw   v0, 4(t2)          # node.hash
        andi t3, v0, 63
        sll  t3, t3, 2
        la   t4, buckets
        addu t4, t4, t3
        lw   t5, 0(t4)
        sw   t5, 8(t2)          # node.next = bucket head
        sw   t2, 0(t4)          # bucket head = node
        addiu s0, s0, 1
        b    ins_loop
ins_done:

        # ---- 6 rounds of positive + negative lookups -----------------
        li   s4, 6              # rounds
        li   s1, 0              # hit count
        li   s2, 0              # miss count
round_loop:
        blez s4, round_done
        li   s0, 0
look_loop:
        bge  s0, s7, look_done
        sll  t0, s0, 3
        la   t1, strbuf
        addu a0, t1, t0
        jal  lookup
        addu s1, s1, v0
        addiu s0, s0, 1
        b    look_loop
look_done:
        li   s0, 0
neg_loop:
        bge  s0, s7, neg_done
        sll  t0, s0, 3
        la   t1, strbuf
        addu t1, t1, t0
        la   t2, tmpkey
        li   t3, 'q'            # mutate the first character
        sb   t3, 0(t2)
        lbu  t3, 1(t1)
        sb   t3, 1(t2)
        lbu  t3, 2(t1)
        sb   t3, 2(t2)
        lbu  t3, 3(t1)
        sb   t3, 3(t2)
        sb   zero, 4(t2)
        move a0, t2
        jal  lookup
        bnez v0, neg_next       # a hit here is a failure
        addiu s2, s2, 1
neg_next:
        addiu s0, s0, 1
        b    neg_loop
neg_done:
        addiu s4, s4, -1
        b    round_loop
round_loop_end:
round_done:
        li   t0, 900            # 6 rounds × 150 keys
        li   v0, 0
        bne  s1, t0, store
        bne  s2, t0, store
        li   v0, 1
store:
        sw   v0, result(gp)
        halt

# hash_str(a0 = nul-terminated string): v0 = djb2 hash. No calls.
hash_str:
        li   v0, 5381
hs_loop:
        lbu  t0, 0(a0)
        beqz t0, hs_done
        li   t1, 33
        mul  v0, v0, t1
        addu v0, v0, t0
        addiu a0, a0, 1
        b    hs_loop
hs_done:
        jr   ra

# lookup(a0 = string): v0 = 1 if present in the table, else 0.
lookup:
        addiu sp, sp, -12
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        sw   s1, 8(sp)
        move s0, a0
        jal  hash_str
        move s1, v0
        andi t0, s1, 63
        sll  t0, t0, 2
        la   t1, buckets
        addu t1, t1, t0
        lw   t2, 0(t1)          # chain head
lk_loop:
        beqz t2, lk_notfound
        lw   t3, 4(t2)
        bne  t3, s1, lk_next    # hash mismatch: skip strcmp
        lw   t4, 0(t2)          # candidate key
        move t5, s0
sc_loop:
        lbu  t6, 0(t4)
        lbu  t7, 0(t5)
        bne  t6, t7, lk_next
        beqz t6, lk_found       # both strings ended together
        addiu t4, t4, 1
        addiu t5, t5, 1
        b    sc_loop
lk_next:
        lw   t2, 8(t2)
        b    lk_loop
lk_found:
        li   v0, 1
        b    lk_ret
lk_notfound:
        li   v0, 0
lk_ret:
        lw   ra, 0(sp)
        lw   s0, 4(sp)
        lw   s1, 8(sp)
        addiu sp, sp, 12
        jr   ra

        .data
strbuf: .space 1280
tmpkey: .space 8
buckets: .space 256
nodepool: .space 2048
result: .word 0
