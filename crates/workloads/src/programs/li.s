# li — 130.li analogue.
#
# Cons-cell list processing from a free-list allocator: 24 iterations of
# build a 300-element list, sum it by pointer chasing, reverse it in place,
# sum again, and return the cells. Self-check: both sums must equal
# 300·301/2 = 45150 on every iteration. Almost every instruction depends on
# a just-loaded pointer — the lisp-interpreter character that makes li the
# paper's worst case for the dependence-based design.

        .text
main:
        jal  init_pool
        li   s5, 24             # iterations
        li   s6, 1              # result flag
li_loop:
        blez s5, li_done
        li   a0, 300
        jal  build_list
        move s0, v0             # head
        move a0, s0
        jal  sum_list
        move s1, v0             # first sum
        move a0, s0
        jal  reverse_list
        move s0, v0
        move a0, s0
        jal  sum_list
        bne  v0, s1, li_fail    # reversal must not change the sum
        li   t0, 45150
        bne  v0, t0, li_fail
        move a0, s0
        jal  free_list
        addiu s5, s5, -1
        b    li_loop
li_fail:
        li   s6, 0
li_done:
        sw   s6, result(gp)
        halt

# Link all 1024 pool cells into the free list.
init_pool:
        la   t0, pool
        li   t1, 0
        li   t2, 1023
ip_loop:
        bge  t1, t2, ip_last
        sll  t3, t1, 3
        addu t4, t0, t3
        addiu t5, t4, 8
        sw   t5, 4(t4)          # cell[i].cdr = &cell[i+1]
        addiu t1, t1, 1
        b    ip_loop
ip_last:
        sll  t3, t1, 3
        addu t4, t0, t3
        sw   zero, 4(t4)        # last cdr = nil
        sw   t0, freep(gp)
        jr   ra

# alloc_cell: v0 = fresh cell popped from the free list.
alloc_cell:
        lw   v0, freep(gp)
        lw   t0, 4(v0)
        sw   t0, freep(gp)
        jr   ra

# build_list(a0 = n): v0 = list (1 2 … n) built by consing n, n-1, …, 1.
build_list:
        addiu sp, sp, -12
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        sw   s1, 8(sp)
        move s0, a0             # countdown
        li   s1, 0              # head = nil
bl_loop:
        blez s0, bl_done
        jal  alloc_cell
        sw   s0, 0(v0)          # car = i
        sw   s1, 4(v0)          # cdr = head
        move s1, v0
        addiu s0, s0, -1
        b    bl_loop
bl_done:
        move v0, s1
        lw   ra, 0(sp)
        lw   s0, 4(sp)
        lw   s1, 8(sp)
        addiu sp, sp, 12
        jr   ra

# sum_list(a0 = head): v0 = Σ car, chasing cdr pointers.
sum_list:
        li   v0, 0
sl_loop:
        beqz a0, sl_done
        lw   t0, 0(a0)
        addu v0, v0, t0
        lw   a0, 4(a0)
        b    sl_loop
sl_done:
        jr   ra

# reverse_list(a0 = head): v0 = reversed list (in place).
reverse_list:
        li   v0, 0              # prev
rl_loop:
        beqz a0, rl_done
        lw   t0, 4(a0)          # next
        sw   v0, 4(a0)          # cur.cdr = prev
        move v0, a0
        move a0, t0
        b    rl_loop
rl_done:
        jr   ra

# free_list(a0 = head): push every cell back onto the free list.
free_list:
fl_loop:
        beqz a0, fl_done
        lw   t0, 4(a0)          # next
        lw   t1, freep(gp)
        sw   t1, 4(a0)
        sw   a0, freep(gp)
        move a0, t0
        b    fl_loop
fl_done:
        jr   ra

        .data
freep:  .word 0
pool:   .space 8192
result: .word 0
