# compress — 129.compress analogue.
#
# Fills a 2 KiB buffer with pseudo-random runs of bytes (LCG-driven run
# lengths), run-length encodes it, decodes the encoding into a second
# buffer, and verifies the round trip byte-for-byte. Stores 1 into `result`
# on success, plus the compressed length into `clen` for inspection.
#
# Character: tight byte loops with data-dependent trip counts, byte loads
# and stores, highly-biased inner branches — like the LZW loops of the
# original.

        .text
main:
        # ---- fill src with runs --------------------------------------
        la   s0, src            # write pointer
        li   s1, 2048           # bytes remaining
        li   t0, 12345          # LCG state
fill_outer:
        blez s1, fill_done
        li   t1, 1103515245
        mul  t0, t0, t1
        addiu t0, t0, 12345
        srl  t2, t0, 16
        andi t3, t2, 15         # run length 0..15
        addiu t3, t3, 1         # 1..16
        srl  t4, t2, 4
        andi t4, t4, 255        # run byte value
        slt  t5, s1, t3         # clamp run to remaining bytes
        beqz t5, fill_run
        move t3, s1
fill_run:
        subu s1, s1, t3
fill_inner:
        sb   t4, 0(s0)
        addiu s0, s0, 1
        addiu t3, t3, -1
        bgtz t3, fill_inner
        b    fill_outer
fill_done:

        # ---- RLE encode src -> dst -----------------------------------
        la   s0, src
        la   s1, dst
        li   s2, 0              # source index
        li   s7, 2048           # source length
enc_loop:
        bge  s2, s7, enc_done
        addu t0, s0, s2
        lbu  t1, 0(t0)          # current byte
        li   t2, 1              # run count
count_loop:
        addu t3, s2, t2
        bge  t3, s7, count_done
        addu t4, s0, t3
        lbu  t5, 0(t4)
        bne  t5, t1, count_done
        li   t6, 255
        bge  t2, t6, count_done
        addiu t2, t2, 1
        b    count_loop
count_done:
        sb   t2, 0(s1)          # (count, value) pair
        sb   t1, 1(s1)
        addiu s1, s1, 2
        addu s2, s2, t2
        b    enc_loop
enc_done:
        la   t0, dst
        subu s3, s1, t0         # compressed size in bytes
        sw   s3, clen(gp)

        # ---- decode dst -> chk ---------------------------------------
        la   s0, dst
        la   s1, chk
        la   s4, chk
        addiu s5, s4, 2048      # end of check buffer
dec_loop:
        bge  s1, s5, dec_done
        lbu  t0, 0(s0)          # run count
        lbu  t1, 1(s0)          # run value
        addiu s0, s0, 2
dec_inner:
        sb   t1, 0(s1)
        addiu s1, s1, 1
        addiu t0, t0, -1
        bgtz t0, dec_inner
        b    dec_loop
dec_done:

        # ---- verify round trip ---------------------------------------
        la   s0, src
        la   s1, chk
        li   s2, 2048
        li   v0, 1
cmp_loop:
        blez s2, cmp_done
        lbu  t0, 0(s0)
        lbu  t1, 0(s1)
        beq  t0, t1, cmp_ok
        li   v0, 0
        b    cmp_done
cmp_ok:
        addiu s0, s0, 1
        addiu s1, s1, 1
        addiu s2, s2, -1
        b    cmp_loop
cmp_done:
        sw   v0, result(gp)
        halt

        .data
src:    .space 2048
dst:    .space 4096
chk:    .space 2048
        .align 2
clen:   .word 0
result: .word 0
