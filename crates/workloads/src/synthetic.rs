//! Statistical synthetic trace generation.
//!
//! Fabricates instruction streams with a configurable operation mix,
//! geometric dependence-distance distribution, and biased branch outcomes.
//! Synthetic traces stress the schedulers in ways the structured kernels
//! cannot (e.g. fully random branch outcomes defeat the predictor), and
//! give property tests an unlimited supply of valid inputs.

use crate::trace::{DynInst, Trace};
use ce_isa::{Instruction, Opcode, Reg, TEXT_BASE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic generator.
///
/// The fractions must sum to at most 1; the remainder becomes ALU
/// operations.
///
/// ```
/// use ce_workloads::synthetic::{generate, SyntheticConfig};
///
/// let config = SyntheticConfig { branch_frac: 0.0, ..SyntheticConfig::default() };
/// let trace = generate(&config, 1_000);
/// assert!(trace.iter().all(|d| !d.is_conditional_branch()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of conditional branches.
    pub branch_frac: f64,
    /// Probability a conditional branch is taken.
    pub taken_prob: f64,
    /// Probability a branch outcome is *predictable* (repeats its last
    /// outcome); 1.0 makes every branch monotone, 0.0 makes outcomes i.i.d.
    pub predictability: f64,
    /// Geometric parameter for dependence distance: each source register is
    /// drawn from the last `1/dep_locality` destinations on average.
    /// Must be in `(0, 1]`; larger means tighter chains.
    pub dep_locality: f64,
    /// Number of distinct data words the loads/stores touch.
    pub working_set_words: u32,
    /// PRNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    /// A SPEC-int-flavoured default: ~25 % loads, 10 % stores, 15 %
    /// branches with 60 % taken and high predictability.
    fn default() -> SyntheticConfig {
        SyntheticConfig {
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.15,
            taken_prob: 0.6,
            predictability: 0.9,
            dep_locality: 0.4,
            working_set_words: 4096,
            seed: 0x5ca1ab1e,
        }
    }
}

impl SyntheticConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.load_frac + self.store_frac + self.branch_frac;
        if !(0.0..=1.0).contains(&sum) {
            return Err(format!("operation fractions sum to {sum}, must be within [0, 1]"));
        }
        for (name, v) in [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("taken_prob", self.taken_prob),
            ("predictability", self.predictability),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v}, must be within [0, 1]"));
            }
        }
        if !(self.dep_locality > 0.0 && self.dep_locality <= 1.0) {
            return Err(format!("dep_locality = {}, must be in (0, 1]", self.dep_locality));
        }
        if self.working_set_words == 0 {
            return Err("working_set_words must be positive".to_owned());
        }
        Ok(())
    }
}

/// Generates a synthetic trace of `len` instructions.
///
/// The generated stream is register-consistent (sources refer to previously
/// written registers) and ends with a `halt`, but it does not correspond to
/// any real program — PCs advance linearly except at taken branches, which
/// jump a short random distance.
///
/// # Panics
///
/// Panics if the configuration fails [`SyntheticConfig::validate`].
pub fn generate(config: &SyntheticConfig, len: usize) -> Trace {
    if let Err(msg) = config.validate() {
        panic!("invalid synthetic configuration: {msg}");
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Trace::new();
    // Pool of general-purpose destinations (avoid r0, at, sp, gp, ra).
    let dests: Vec<Reg> = (8..26).map(Reg::new).collect();
    // Ring of recent destination registers, newest first.
    let mut recent: Vec<Reg> = vec![Reg::new(8)];
    let mut pc = TEXT_BASE;
    let mut last_taken = false;

    let pick_src = |rng: &mut StdRng, recent: &[Reg]| -> Reg {
        // Geometric walk down the recent-producers list.
        let mut idx = 0usize;
        while idx + 1 < recent.len() && rng.gen::<f64>() > config.dep_locality {
            idx += 1;
        }
        recent[idx]
    };

    for i in 0..len {
        let roll: f64 = rng.gen();
        let dest = dests[rng.gen_range(0..dests.len())];
        let (inst, taken, mem_addr) = if roll < config.load_frac {
            let base = pick_src(&mut rng, &recent);
            let addr = ce_isa::DATA_BASE
                + 4 * rng.gen_range(0..config.working_set_words);
            (Instruction::mem(Opcode::Lw, dest, 0, base), false, Some(addr))
        } else if roll < config.load_frac + config.store_frac {
            let base = pick_src(&mut rng, &recent);
            let data = pick_src(&mut rng, &recent);
            let addr = ce_isa::DATA_BASE
                + 4 * rng.gen_range(0..config.working_set_words);
            (Instruction::mem(Opcode::Sw, data, 0, base), false, Some(addr))
        } else if roll < config.load_frac + config.store_frac + config.branch_frac {
            let a = pick_src(&mut rng, &recent);
            let b = pick_src(&mut rng, &recent);
            let taken = if rng.gen::<f64>() < config.predictability {
                last_taken
            } else {
                rng.gen::<f64>() < config.taken_prob
            };
            last_taken = taken;
            (Instruction::branch2(Opcode::Beq, a, b, rng.gen_range(-16..16)), taken, None)
        } else {
            let a = pick_src(&mut rng, &recent);
            let b = pick_src(&mut rng, &recent);
            let op = [Opcode::Addu, Opcode::Subu, Opcode::Xor, Opcode::And, Opcode::Or]
                [rng.gen_range(0..5)];
            (Instruction::rrr(op, dest, a, b), false, None)
        };

        if let Some(d) = inst.defs() {
            recent.insert(0, d);
            recent.truncate(16);
        }

        let next_pc = if taken {
            let disp = inst.imm;
            pc.wrapping_add(4).wrapping_add((disp as i64 * 4) as u32)
        } else {
            pc.wrapping_add(4)
        };
        trace.push(DynInst { seq: i as u64, pc, inst, next_pc, taken, mem_addr });
        pc = next_pc;
    }

    // Terminate cleanly so consumers can treat synthetic and real traces
    // alike.
    let halt_pc = pc;
    trace.push(DynInst {
        seq: len as u64,
        pc: halt_pc,
        inst: Instruction::HALT,
        next_pc: halt_pc.wrapping_add(4),
        taken: false,
        mem_addr: None,
    });
    trace.mark_completed();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn respects_requested_mix() {
        let config = SyntheticConfig::default();
        let trace = generate(&config, 50_000);
        let stats = TraceStats::compute(&trace);
        assert!((stats.load_fraction() - config.load_frac).abs() < 0.02);
        assert!((stats.store_fraction() - config.store_frac).abs() < 0.02);
        assert!((stats.branch_fraction() - config.branch_frac).abs() < 0.02);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = SyntheticConfig::default();
        let a = generate(&config, 1_000);
        let b = generate(&config, 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::default(), 1_000);
        let b = generate(&SyntheticConfig { seed: 42, ..SyntheticConfig::default() }, 1_000);
        assert_ne!(a, b);
    }

    #[test]
    fn tight_locality_shortens_dependences() {
        let tight = generate(
            &SyntheticConfig { dep_locality: 0.95, ..SyntheticConfig::default() },
            20_000,
        );
        let loose = generate(
            &SyntheticConfig { dep_locality: 0.05, ..SyntheticConfig::default() },
            20_000,
        );
        let tight_stats = TraceStats::compute(&tight);
        let loose_stats = TraceStats::compute(&loose);
        assert!(tight_stats.mean_dep_distance < loose_stats.mean_dep_distance);
    }

    #[test]
    fn ends_with_halt_and_is_completed() {
        let trace = generate(&SyntheticConfig::default(), 10);
        assert_eq!(trace.len(), 11);
        assert!(trace.is_completed());
        assert_eq!(trace.get(10).unwrap().inst, Instruction::HALT);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = SyntheticConfig { load_frac: 0.9, store_frac: 0.9, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = SyntheticConfig { dep_locality: 0.0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = SyntheticConfig { working_set_words: 0, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid synthetic configuration")]
    fn generate_panics_on_invalid_config() {
        let bad = SyntheticConfig { taken_prob: 2.0, ..Default::default() };
        let _ = generate(&bad, 10);
    }
}
