//! Seeded fuzz-style corpus for the trace parser: no input — random
//! bytes, corrupted real traces, or pathological line shapes — may ever
//! panic. Errors must be `TraceParseError` values, successes must
//! re-format and re-parse to the same trace.
//!
//! This is a deterministic corpus (fixed seeds through the vendored
//! `rand` compat crate), so a failure reproduces exactly in CI.

use ce_workloads::{
    corrupt_trace_text, parse_trace, parse_trace_with, trace_cached, Benchmark, ParseLimits,
    TraceCorruption,
};
use rand::{Rng, SeedableRng, StdRng};

/// Random byte soup, biased toward trace-adjacent characters so lines
/// frequently get deep into the parser before failing.
fn random_input(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"0123456789abcdefx ce-trav1=#.\n\t lw sw completed=true";
    let with_header = rng.gen_range(0..4usize) != 0;
    let mut s = String::new();
    if with_header {
        s.push_str("ce-trace v1 completed=true\n");
    }
    let len = rng.gen_range(0..400usize);
    for _ in 0..len {
        if rng.gen_range(0..50usize) == 0 {
            // Occasional raw non-ASCII to exercise UTF-8 boundaries.
            s.push('λ');
        } else {
            s.push(ALPHABET[rng.gen_range(0..ALPHABET.len())] as char);
        }
    }
    s
}

#[test]
fn random_bytes_never_panic_the_parser() {
    let mut rng = StdRng::seed_from_u64(0xf422);
    for case in 0..400 {
        let input = random_input(&mut rng);
        match parse_trace(&input) {
            // A parse that succeeds must round-trip through the
            // formatter (the parser may not fabricate state).
            Ok(trace) => {
                let text = ce_workloads::trace_io::format_trace(&trace);
                let again = parse_trace(&text).unwrap_or_else(|e| {
                    panic!("case {case}: round-trip re-parse failed: {e}")
                });
                assert_eq!(*trace.as_slice(), *again.as_slice(), "case {case}");
            }
            // An error is fine — it just must carry a line number.
            Err(e) => assert!(e.line > 0, "case {case}: error without a line: {e}"),
        }
    }
}

/// Every corruption kind applied to a real benchmark trace yields either
/// a clean parse error or a well-formed (possibly different) trace —
/// never a panic. This is the same corpus shape the `faultcampaign`
/// binary sweeps, run here against the parser alone.
#[test]
fn corrupted_real_traces_never_panic_the_parser() {
    let trace = trace_cached(Benchmark::Compress, 3_000).expect("trace");
    let text = ce_workloads::trace_io::format_trace(&trace);
    let kinds = [
        TraceCorruption::BitFlip,
        TraceCorruption::Truncate,
        TraceCorruption::DropLine,
        TraceCorruption::DuplicateLine,
    ];
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    for kind in kinds {
        for seed in 0..25u64 {
            let bad = corrupt_trace_text(&text, kind, 0x5eed ^ (seed << 4) ^ kind as u64);
            match parse_trace(&bad) {
                Ok(_) => parsed_ok += 1,
                Err(e) => {
                    rejected += 1;
                    assert!(e.line > 0, "{kind:?}/{seed}: error without a line: {e}");
                }
            }
        }
    }
    // The corpus must actually exercise both paths.
    assert!(rejected > 0, "no corruption was rejected ({parsed_ok} parsed)");
    assert!(parsed_ok > 0, "every corruption was rejected ({rejected} rejected)");
}

/// The configurable limits must trip as errors, not as allocation blowups
/// or panics, on adversarially long lines and oversized op counts.
#[test]
fn parse_limits_reject_oversized_inputs_cleanly() {
    let long_line = format!("ce-trace v1 completed=true\n{}\n", "4".repeat(10_000));
    let tight = ParseLimits { max_line_bytes: 256, max_ops: 8 };
    let err = parse_trace_with(&long_line, tight).expect_err("line over the limit");
    assert!(err.to_string().contains("line"), "{err}");

    let trace = trace_cached(Benchmark::Compress, 200).expect("trace");
    let text = ce_workloads::trace_io::format_trace(&trace);
    let err = parse_trace_with(&text, tight).expect_err("ops over the limit");
    assert!(err.to_string().contains("8"), "{err}");
}
