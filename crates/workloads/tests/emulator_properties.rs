//! Property-based tests of the emulator: the architectural semantics agree
//! with Rust's own arithmetic on randomly generated programs.

use ce_isa::asm::assemble;
use ce_isa::Reg;
use ce_workloads::synthetic::{generate, SyntheticConfig};
use ce_workloads::Emulator;
use proptest::prelude::*;

/// Interpret a tiny op list both in Rust and in the emulator and compare.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(i32),
    Xor(i32),
    ShiftLeft(u8),
    ShiftRightArith(u8),
    SetLessThan(i32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-30000i32..30000).prop_map(Op::Add),
        (0i32..0xFFFF).prop_map(Op::Xor),
        (0u8..31).prop_map(Op::ShiftLeft),
        (0u8..31).prop_map(Op::ShiftRightArith),
        (-30000i32..30000).prop_map(Op::SetLessThan),
    ]
}

proptest! {
    /// The emulator computes exactly what a Rust reference model computes.
    #[test]
    fn emulator_matches_reference(start in -1000i32..1000, ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut src = format!("li t0, {start}\n");
        let mut expected = start;
        for op in &ops {
            match op {
                Op::Add(v) => {
                    src.push_str(&format!("addiu t0, t0, {v}\n"));
                    expected = expected.wrapping_add(*v);
                }
                Op::Xor(v) => {
                    src.push_str(&format!("xori t0, t0, {v}\n"));
                    expected ^= *v;
                }
                Op::ShiftLeft(s) => {
                    src.push_str(&format!("sll t0, t0, {s}\n"));
                    expected = ((expected as u32) << s) as i32;
                }
                Op::ShiftRightArith(s) => {
                    src.push_str(&format!("sra t0, t0, {s}\n"));
                    expected >>= s;
                }
                Op::SetLessThan(v) => {
                    src.push_str(&format!("slti t0, t0, {v}\n"));
                    expected = i32::from(expected < *v);
                }
            }
        }
        src.push_str("halt\n");
        let program = assemble(&src).expect("assembles");
        let mut emu = Emulator::new(&program);
        emu.run_to_completion(10_000).expect("halts");
        prop_assert_eq!(emu.reg(Reg::T0) as i32, expected);
    }

    /// Memory round-trips arbitrary word values at arbitrary (aligned)
    /// offsets.
    #[test]
    fn store_load_roundtrip(value in any::<u32>(), slot in 0u32..256) {
        let offset = slot * 4;
        let src = format!(
            ".data\nbuf: .space 1024\n.text\nli t0, {}\nsw t0, {offset}(gp)\nlw t1, {offset}(gp)\nhalt\n",
            value as i64
        );
        let program = assemble(&src).expect("assembles");
        let mut emu = Emulator::new(&program);
        emu.run_to_completion(100).expect("halts");
        prop_assert_eq!(emu.reg(Reg::new(9)), value);
    }

    /// Synthetic traces always have dense sequence numbers, consistent
    /// next-PC chaining for non-taken instructions, and end with halt.
    #[test]
    fn synthetic_traces_are_well_formed(seed in any::<u64>(), len in 1usize..500) {
        let config = SyntheticConfig { seed, ..SyntheticConfig::default() };
        let trace = generate(&config, len);
        prop_assert_eq!(trace.len(), len + 1);
        prop_assert!(trace.is_completed());
        for (i, d) in trace.iter().enumerate() {
            prop_assert_eq!(d.seq, i as u64);
            if !d.taken {
                prop_assert_eq!(d.next_pc, d.pc.wrapping_add(4));
            }
            if d.inst.opcode.is_load() || d.inst.opcode.is_store() {
                prop_assert!(d.mem_addr.is_some());
            }
        }
    }
}
