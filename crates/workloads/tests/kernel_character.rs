//! Characterization tests: each kernel must *behave like* its SPEC'95
//! namesake, not merely terminate. These lock in the workload identities
//! the simulator experiments depend on.

use ce_workloads::stats::TraceStats;
use ce_workloads::{trace_benchmark, Benchmark};

fn stats(b: Benchmark) -> TraceStats {
    let trace = trace_benchmark(b, 2_000_000).expect("kernel runs");
    assert!(trace.is_completed(), "{b} must run to completion");
    TraceStats::compute(&trace)
}

#[test]
fn compress_is_branchy_byte_code() {
    let s = stats(Benchmark::Compress);
    assert!(s.branch_fraction() > 0.20, "RLE inner loops branch constantly");
    assert!(s.store_fraction() > 0.04, "it writes its output stream");
}

#[test]
fn gcc_is_call_heavy() {
    let s = stats(Benchmark::Gcc);
    let jump_fraction = s.jumps as f64 / s.total as f64;
    assert!(
        jump_fraction > 0.15,
        "recursive descent means calls and returns everywhere: {jump_fraction:.3}"
    );
    assert!(s.load_fraction() > 0.15, "stack traffic");
}

#[test]
fn go_is_branchy_with_long_dependences() {
    let s = stats(Benchmark::Go);
    assert!(s.branch_fraction() > 0.25, "bounds checks and pattern tests");
    assert!(
        s.mean_dep_distance > 5.0,
        "board scans carry values a long way: {}",
        s.mean_dep_distance
    );
}

#[test]
fn li_is_memory_bound() {
    let s = stats(Benchmark::Li);
    assert!(s.load_fraction() > 0.20, "pointer chasing");
    assert!(s.store_fraction() > 0.10, "cons-cell construction");
    assert!(
        s.load_fraction() + s.store_fraction() > 0.35,
        "lisp lives in memory"
    );
}

#[test]
fn m88ksim_has_predictable_branches() {
    let s = stats(Benchmark::M88ksim);
    // The interpreter's dominant branch is the guest loop's backward
    // branch, overwhelmingly taken.
    assert!(s.taken_rate() > 0.6, "taken rate {}", s.taken_rate());
    assert!(s.branch_fraction() < 0.15, "decode is mostly ALU work");
}

#[test]
fn perl_hashes_strings() {
    let s = stats(Benchmark::Perl);
    assert!(s.load_fraction() > 0.15, "string bytes and chain pointers");
    assert!(s.branch_fraction() > 0.20, "character compare loops");
}

#[test]
fn vortex_is_the_branchiest_and_loady() {
    let s = stats(Benchmark::Vortex);
    assert!(s.branch_fraction() > 0.35, "tree walks decide at every node");
    assert!(s.load_fraction() > 0.20, "record and node accesses");
}

#[test]
fn kernels_are_distinct_workloads() {
    // The suite must span a range of behaviours, or the cross-benchmark
    // figures would be seven copies of one experiment.
    let all: Vec<TraceStats> = Benchmark::all().into_iter().map(stats).collect();
    let branchiness: Vec<f64> = all.iter().map(TraceStats::branch_fraction).collect();
    let max = branchiness.iter().cloned().fold(f64::MIN, f64::max);
    let min = branchiness.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min > 3.0, "branch fractions must spread: {branchiness:?}");
    let loads: Vec<f64> = all.iter().map(TraceStats::load_fraction).collect();
    let max = loads.iter().cloned().fold(f64::MIN, f64::max);
    let min = loads.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min > 2.0, "load fractions must spread: {loads:?}");
}
