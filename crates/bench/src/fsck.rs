//! `cesimd --fsck`: the state-directory recovery auditor.
//!
//! Every durable file the experiment service writes has a loader that
//! already knows how to recover it — the WAL tolerates a torn final
//! line, checkpoint journals drop theirs, the store deletes unparseable
//! entries. What none of those loaders do is *account* for what they
//! found: a daemon that silently discards a corrupt journal has honored
//! the zero-corruption contract but hidden the evidence. `fsck` walks a
//! state directory and classifies **every** file against the format its
//! location claims:
//!
//! | class | meaning | action (`fix`) |
//! |---|---|---|
//! | `valid` | parses completely | none |
//! | `torn-tail` | only the final line is damaged — the `kill -9` mid-append signature; the loader recovers everything before it | none (recoverable as-is) |
//! | `orphan-temp` | a `*.tmp.<pid>` left by a crash between create and rename | deleted |
//! | `quarantined` | damage a loader would have to guess about | moved to `<state>/quarantine/`, bytes preserved |
//!
//! Quarantine — not deletion — is the point: recovery code may start
//! fresh (exactly what the loaders would do anyway), but the damaged
//! bytes survive for a post-mortem, and the report says so out loud via
//! `error[fsck]` lines. The daemon runs `fsck` with `fix` on every
//! startup, *before* opening the WAL; `cesimd --fsck` runs it standalone
//! and exits `0` (clean) or `1` (something was quarantined).
//!
//! Scanned formats: `jobs.jsonl` (WAL), `ckpt/*.ckpt.jsonl` (sweep
//! checkpoints), `telemetry/*.jsonl` (event journals), `store/*.json`
//! (content-addressed results, embedded key checked against the
//! filename), and `artifacts/job-*/manifest.json` with every artifact's
//! size and FNV-64 re-verified against the manifest's record. Files
//! fsck has no format for (the socket, the quarantine area itself) are
//! left alone.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::api::JobSpec;
use crate::checkpoint::{classify_journal, classify_lines, JournalClass};
use crate::json::Json;
use crate::manifest::Fnv64;

/// What `fsck` concluded about one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Parses completely in the format its location claims.
    Valid,
    /// Only the final line is damaged (`kill -9` mid-append); loaders
    /// recover every complete record before it.
    TornTail,
    /// A `*.tmp.*` tempfile orphaned by a crash between create and
    /// rename; removed under `fix`.
    OrphanTemp,
    /// Damage before the final line, a key mismatch, or a hash mismatch:
    /// moved to `<state>/quarantine/` under `fix`, never served.
    Quarantined,
}

impl FileClass {
    /// The report label (`valid`, `torn-tail`, `orphan-temp`,
    /// `quarantined`).
    pub fn name(self) -> &'static str {
        match self {
            FileClass::Valid => "valid",
            FileClass::TornTail => "torn-tail",
            FileClass::OrphanTemp => "orphan-temp",
            FileClass::Quarantined => "quarantined",
        }
    }
}

/// One audited file.
#[derive(Debug, Clone)]
pub struct FsckItem {
    /// The file as found (pre-quarantine path).
    pub path: PathBuf,
    /// Its classification.
    pub class: FileClass,
    /// One line of why (empty for routine `valid`).
    pub detail: String,
}

/// The full audit: one [`FsckItem`] per classified file.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every classified file, in scan order.
    pub items: Vec<FsckItem>,
    /// Whether repairs (orphan removal, quarantine moves) were applied.
    pub fixed: bool,
}

impl FsckReport {
    /// Number of files in the given class.
    pub fn count(&self, class: FileClass) -> usize {
        self.items.iter().filter(|i| i.class == class).count()
    }

    /// A clean state dir: nothing needed quarantining. Torn tails and
    /// orphaned tempfiles do **not** spoil cleanliness — they are the
    /// expected residue of a crash, and recovery handles them.
    pub fn clean(&self) -> bool {
        self.count(FileClass::Quarantined) == 0
    }
}

/// The report's human form: one line per non-valid file, `error[fsck]`
/// for each quarantined one, and a closing tally. Valid files are
/// counted but not listed — a healthy store with ten thousand entries
/// should audit in one line.
impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            match item.class {
                FileClass::Valid => {}
                FileClass::Quarantined => writeln!(
                    f,
                    "error[fsck]: quarantined {}: {}",
                    item.path.display(),
                    item.detail
                )?,
                class => writeln!(
                    f,
                    "fsck: {}: {}: {}",
                    class.name(),
                    item.path.display(),
                    item.detail
                )?,
            }
        }
        write!(
            f,
            "fsck: {} file(s): {} valid, {} torn-tail, {} orphan-temp, {} quarantined",
            self.items.len(),
            self.count(FileClass::Valid),
            self.count(FileClass::TornTail),
            self.count(FileClass::OrphanTemp),
            self.count(FileClass::Quarantined),
        )
    }
}

/// Audits a service state directory. With `fix`, orphaned tempfiles are
/// removed and corrupt files are moved (bytes intact) to
/// `<state>/quarantine/`; without it the report is an observation only.
///
/// A missing state dir is a clean (empty) audit — a daemon's first
/// start has nothing to recover.
///
/// # Errors
///
/// Real I/O errors walking directories or moving files into quarantine.
/// A file that *reads* badly is never an error — that is a
/// classification.
pub fn fsck(state_dir: &Path, fix: bool) -> std::io::Result<FsckReport> {
    let mut report = FsckReport { items: Vec::new(), fixed: fix };
    if !state_dir.exists() {
        return Ok(report);
    }

    // Orphaned tempfiles can sit anywhere write_atomic runs, so sweep
    // the whole tree for them first; format checks then skip them.
    let mut temps = Vec::new();
    walk(state_dir, &mut |path| {
        if is_tempfile(path) {
            temps.push(path.to_path_buf());
        }
        Ok(())
    })?;
    for path in temps {
        if fix {
            std::fs::remove_file(&path)?;
        }
        report.items.push(FsckItem {
            path,
            class: FileClass::OrphanTemp,
            detail: "tempfile orphaned between create and rename".into(),
        });
    }

    audit_wal(state_dir, fix, &mut report)?;
    audit_journals(&state_dir.join("ckpt"), state_dir, fix, &mut report, classify_journal)?;
    audit_journals(&state_dir.join("telemetry"), state_dir, fix, &mut report, |text| {
        classify_lines(text, |is_header, doc| {
            if is_header {
                doc.at("ce_telemetry").and_then(Json::as_u64)
                    == Some(crate::telemetry::TELEMETRY_VERSION)
            } else {
                doc.at("t_us").and_then(Json::as_u64).is_some()
                    && doc.at("ev").and_then(Json::as_str).is_some()
            }
        })
    })?;
    audit_store(state_dir, fix, &mut report)?;
    audit_artifacts(state_dir, fix, &mut report)?;
    Ok(report)
}

/// Depth-first walk over regular files, skipping the quarantine area
/// (already-impounded files must not be re-audited or re-moved).
fn walk(
    dir: &Path,
    visit: &mut impl FnMut(&Path) -> std::io::Result<()>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let kind = entry.file_type()?;
        if kind.is_dir() {
            if path.file_name().is_some_and(|n| n == "quarantine") {
                continue;
            }
            walk(&path, visit)?;
        } else if kind.is_file() {
            visit(&path)?;
        } // sockets, symlinks: not ours to judge
    }
    Ok(())
}

/// `foo.csv.tmp.1234` / `foo.tmp.1234` — the `write_atomic` tempfile
/// shape.
fn is_tempfile(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".tmp") || n.contains(".tmp."))
}

/// Moves a damaged file into `<state>/quarantine/`, preserving its
/// bytes under its original name (suffixed on collision).
fn quarantine(state_dir: &Path, path: &Path) -> std::io::Result<()> {
    let dir = state_dir.join("quarantine");
    std::fs::create_dir_all(&dir)?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    let mut dest = dir.join(name);
    let mut n = 1;
    while dest.exists() {
        dest = dir.join(format!("{name}.{n}"));
        n += 1;
    }
    std::fs::rename(path, &dest)
}

/// Pushes one verdict, applying the quarantine move under `fix`.
fn record(
    state_dir: &Path,
    fix: bool,
    report: &mut FsckReport,
    path: &Path,
    class: FileClass,
    detail: &str,
) -> std::io::Result<()> {
    if class == FileClass::Quarantined && fix {
        quarantine(state_dir, path)?;
    }
    report.items.push(FsckItem {
        path: path.to_path_buf(),
        class,
        detail: detail.into(),
    });
    Ok(())
}

/// Maps a journal classification onto the report vocabulary.
fn journal_verdict(class: JournalClass) -> (FileClass, &'static str) {
    match class {
        JournalClass::Valid => (FileClass::Valid, ""),
        JournalClass::TornTail => {
            (FileClass::TornTail, "torn final line; loader drops it and replays the rest")
        }
        JournalClass::Corrupt => {
            (FileClass::Quarantined, "damage before the final line; cannot be trusted")
        }
    }
}

/// The jobs WAL: header tag plus `submitted`/`done` records. `submitted`
/// records must carry a spec the daemon could actually replay — a
/// structurally-JSON line whose spec no longer parses is corruption,
/// not history.
fn audit_wal(
    state_dir: &Path,
    fix: bool,
    report: &mut FsckReport,
) -> std::io::Result<()> {
    let path = state_dir.join("jobs.jsonl");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(()); // no WAL yet: nothing to audit
    };
    let class = classify_lines(&text, |is_header, doc| {
        if is_header {
            doc.at("ce_jobs_wal").and_then(Json::as_u64) == Some(1)
        } else {
            let job = doc.at("job").and_then(Json::as_u64).is_some();
            match doc.at("state").and_then(Json::as_str) {
                Some("submitted") => {
                    job && doc.at("spec").is_some_and(|s| JobSpec::from_json(s).is_ok())
                }
                Some("done") => job,
                _ => false,
            }
        }
    });
    let (verdict, detail) = journal_verdict(class);
    record(state_dir, fix, report, &path, verdict, detail)
}

/// Line-oriented journals under one directory (`ckpt/`, `telemetry/`),
/// each classified by the caller's format check.
fn audit_journals(
    dir: &Path,
    state_dir: &Path,
    fix: bool,
    report: &mut FsckReport,
    classify: impl Fn(&str) -> JournalClass,
) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(());
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && !is_tempfile(p)
                && p.extension().is_some_and(|x| x == "jsonl")
        })
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let (verdict, detail) = journal_verdict(classify(&text));
        record(state_dir, fix, report, &path, verdict, detail)?;
    }
    Ok(())
}

/// Store entries: each `<key>.json` must parse completely *and* embed
/// the key its filename claims. Store writes are atomic, so there is no
/// torn-tail grace here — anything short of valid is quarantined.
fn audit_store(
    state_dir: &Path,
    fix: bool,
    report: &mut FsckReport,
) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(state_dir.join("store")) else {
        return Ok(());
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && !is_tempfile(p) && p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let key = path.file_stem().and_then(|s| s.to_str()).unwrap_or("").to_owned();
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        match crate::store::validate_entry_text(&text, &key) {
            Ok(()) => record(state_dir, fix, report, &path, FileClass::Valid, "")?,
            Err(why) => record(state_dir, fix, report, &path, FileClass::Quarantined, &why)?,
        }
    }
    Ok(())
}

/// Artifact directories: a `manifest.json` must parse, and every
/// artifact it lists must exist with the recorded byte count and FNV-64.
/// A mismatched artifact quarantines both the file *and* its manifest —
/// a manifest attesting to bytes that are gone is itself misleading. A
/// directory without a manifest is the in-flight shape (the WAL still
/// owes the job an execution that will rewrite it): torn-tail, not
/// corrupt.
fn audit_artifacts(
    state_dir: &Path,
    fix: bool,
    report: &mut FsckReport,
) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(state_dir.join("artifacts")) else {
        return Ok(());
    };
    let mut dirs: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    dirs.sort();
    for dir in dirs {
        audit_artifact_dir(&dir, state_dir, fix, report)?;
    }
    Ok(())
}

fn audit_artifact_dir(
    dir: &Path,
    state_dir: &Path,
    fix: bool,
    report: &mut FsckReport,
) -> std::io::Result<()> {
    let manifest = dir.join("manifest.json");
    let Ok(text) = std::fs::read_to_string(&manifest) else {
        for path in files_in(dir) {
            record(
                state_dir,
                fix,
                report,
                &path,
                FileClass::TornTail,
                "no manifest yet; the WAL replay rewrites this directory",
            )?;
        }
        return Ok(());
    };
    let doc = match Json::parse(&text) {
        Ok(doc) if doc.at("schema").and_then(Json::as_str)
            == Some(crate::manifest::MANIFEST_SCHEMA) => doc,
        _ => {
            // An unreadable manifest impeaches the whole directory: the
            // artifacts' provenance is exactly what it was attesting.
            record(
                state_dir,
                fix,
                report,
                &manifest,
                FileClass::Quarantined,
                "manifest unparseable or wrong schema",
            )?;
            for path in files_in(dir) {
                record(
                    state_dir,
                    fix,
                    report,
                    &path,
                    FileClass::TornTail,
                    "attested only by a quarantined manifest; replay rewrites it",
                )?;
            }
            return Ok(());
        }
    };
    let listed = doc.at("artifacts").and_then(Json::as_arr).unwrap_or(&[]);
    let mut bad = Vec::new();
    let mut verified = Vec::new();
    for entry in listed {
        // Manifests record paths as the daemon knew them; resolve by
        // file name so a relocated state dir still audits.
        let Some(name) = entry
            .at("path")
            .and_then(Json::as_str)
            .and_then(|p| Path::new(p).file_name())
        else {
            bad.push((manifest.clone(), "artifact entry without a path".to_owned()));
            continue;
        };
        let path = dir.join(name);
        let want_bytes = entry.at("bytes").and_then(Json::as_u64);
        let want_fnv = entry.at("fnv64").and_then(Json::as_str).unwrap_or("");
        match std::fs::read(&path) {
            Ok(content) => {
                let mut h = Fnv64::default();
                h.eat(&content);
                if Some(content.len() as u64) != want_bytes || h.hex() != want_fnv {
                    bad.push((
                        path,
                        format!(
                            "content does not match manifest ({} bytes, fnv64 {})",
                            content.len(),
                            h.hex()
                        ),
                    ));
                } else {
                    verified.push(path);
                }
            }
            Err(_) => bad.push((path, "listed in manifest but missing".to_owned())),
        }
    }
    if bad.is_empty() {
        record(state_dir, fix, report, &manifest, FileClass::Valid, "")?;
        for path in verified {
            record(state_dir, fix, report, &path, FileClass::Valid, "")?;
        }
    } else {
        for path in verified {
            record(state_dir, fix, report, &path, FileClass::Valid, "")?;
        }
        for (path, why) in bad {
            if path.exists() {
                record(state_dir, fix, report, &path, FileClass::Quarantined, &why)?;
            } else {
                report.items.push(FsckItem { path, class: FileClass::Quarantined, detail: why });
            }
        }
        record(
            state_dir,
            fix,
            report,
            &manifest,
            FileClass::Quarantined,
            "attests to artifacts that failed verification",
        )?;
    }
    Ok(())
}

fn files_in(dir: &Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && !is_tempfile(p))
        .collect();
    paths.sort();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ce-fsck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("ckpt")).unwrap();
        dir
    }

    #[test]
    fn missing_state_dir_is_clean() {
        let report =
            fsck(Path::new("/nonexistent/ce-fsck-nowhere"), false).unwrap();
        assert!(report.clean());
        assert!(report.items.is_empty());
    }

    /// The orphan-sweep regression (satellite 1): tempfiles anywhere in
    /// the tree are reported, and removed only under `fix`.
    #[test]
    fn orphan_tempfiles_are_swept() {
        let dir = state("orphans");
        let orphan = dir.join("ckpt").join("job-3.csv.tmp.9999");
        std::fs::write(&orphan, "half a file").unwrap();

        let report = fsck(&dir, false).unwrap();
        assert_eq!(report.count(FileClass::OrphanTemp), 1);
        assert!(orphan.exists(), "observe-only audit must not delete");
        assert!(report.clean(), "orphans are residue, not corruption");

        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.count(FileClass::OrphanTemp), 1);
        assert!(!orphan.exists(), "fix sweeps the orphan");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_classes_cover_valid_torn_and_corrupt() {
        let dir = state("wal");
        let wal = dir.join("jobs.jsonl");

        std::fs::write(&wal, "{\"ce_jobs_wal\": 1, \"next\": 4}\n{\"job\": 3, \"state\": \"done\"}\n")
            .unwrap();
        assert!(fsck(&dir, false).unwrap().clean());

        std::fs::write(
            &wal,
            "{\"ce_jobs_wal\": 1, \"next\": 4}\n{\"job\": 3, \"state\": \"do",
        )
        .unwrap();
        let report = fsck(&dir, false).unwrap();
        assert_eq!(report.count(FileClass::TornTail), 1);
        assert!(report.clean());

        std::fs::write(
            &wal,
            "{\"ce_jobs_wal\": 1, \"next\": 4}\n{\"job\": ??}\n{\"job\": 3, \"state\": \"done\"}\n",
        )
        .unwrap();
        let report = fsck(&dir, true).unwrap();
        assert!(!report.clean());
        assert!(!wal.exists(), "corrupt WAL moves to quarantine");
        assert!(dir.join("quarantine").join("jobs.jsonl").exists(), "bytes preserved");
        let rendered = report.to_string();
        assert!(rendered.contains("error[fsck]"), "quarantine reports loudly: {rendered}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A store entry renamed to another key must be caught even though
    /// it parses perfectly — serving it would answer the wrong cell.
    #[test]
    fn store_key_mismatch_is_quarantined() {
        let dir = state("store-key");
        let store = dir.join("store");
        std::fs::create_dir_all(&store).unwrap();
        std::fs::write(
            store.join("aaaa.json"),
            "{\"ce_result\": 1, \"key\": \"bbbb\", \"code_version\": \"v\", \
             \"wall_us\": 1, \"stats\": {}}",
        )
        .unwrap();
        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.count(FileClass::Quarantined), 1);
        assert!(dir.join("quarantine").join("aaaa.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Artifact verification: a flipped byte in a CSV is caught by the
    /// manifest's FNV-64, and both the artifact and the manifest land in
    /// quarantine.
    #[test]
    fn artifact_hash_mismatch_quarantines_file_and_manifest() {
        let dir = state("artifact");
        let job = dir.join("artifacts").join("job-1");
        std::fs::create_dir_all(&job).unwrap();
        let csv = job.join("out.csv");
        std::fs::write(&csv, "a,b\n1,2\n").unwrap();
        let described = crate::manifest::Artifact::describe(&csv).unwrap();
        std::fs::write(
            job.join("manifest.json"),
            format!(
                "{{\"schema\": \"{}\", \"artifacts\": [{{\"path\": \"{}\", \
                 \"bytes\": {}, \"fnv64\": \"{}\"}}]}}",
                crate::manifest::MANIFEST_SCHEMA,
                csv.display(),
                described.bytes,
                described.fnv64
            ),
        )
        .unwrap();
        assert!(fsck(&dir, false).unwrap().clean(), "intact artifacts audit clean");

        std::fs::write(&csv, "a,b\n1,X\n").unwrap(); // flip a byte, same length
        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.count(FileClass::Quarantined), 2, "{report}");
        assert!(!csv.exists());
        assert!(!job.join("manifest.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A manifest-less artifact directory is the in-flight shape — the
    /// job's WAL entry still owes an execution — so it is recoverable,
    /// not corrupt.
    #[test]
    fn manifestless_artifacts_are_torn_tail() {
        let dir = state("inflight");
        let job = dir.join("artifacts").join("job-2");
        std::fs::create_dir_all(&job).unwrap();
        std::fs::write(job.join("out.csv"), "partial").unwrap();
        let report = fsck(&dir, false).unwrap();
        assert_eq!(report.count(FileClass::TornTail), 1);
        assert!(report.clean());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
