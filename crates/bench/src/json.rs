//! A minimal JSON reader for the repo's own artifacts.
//!
//! The repo takes no external dependencies, yet two tools need to *read*
//! JSON the simulator wrote: `metrics_check` (validates a
//! `ce-sim.metrics.v1` document against the checked-in schema) and
//! `bench_compare` (compares two `BENCH_sim.json` snapshots). This is a
//! small recursive-descent parser covering exactly the JSON those
//! documents use — objects, arrays, strings with the common escapes,
//! numbers, booleans, null — with dotted-path lookup ([`Json::at`]).
//!
//! It is a reader for trusted, self-produced files, not a general-purpose
//! parser: surrogate-pair `\u` escapes are not combined. Non-negative
//! integer tokens are held losslessly as `u64` ([`Json::Int`]) — the
//! sweep checkpoint journal round-trips full-width counters through this
//! reader — while everything else numeric is `f64` ([`Json::Num`]).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    /// A non-negative integer token, kept exact (`f64` would corrupt
    /// counters above 2^53).
    Int(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Object keys sorted (BTreeMap): key order is irrelevant to lookup.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). The writer-side complement of the parser above: everything
/// it emits, [`Json::parse`] reads back verbatim — the experiment service
/// ships CSV contents (embedded newlines and all) through this.
pub fn escape(s: &str) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up a dotted path of object keys and array indices, e.g.
    /// `"config.issue_width"` or `"cells.0.ipc"`. Returns `None` if any
    /// step is missing or the wrong shape.
    pub fn at(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for step in path.split('.') {
            cur = match cur {
                Json::Obj(map) => map.get(step)?,
                Json::Arr(items) => items.get(step.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer (counters), exact for
    /// [`Json::Int`]. `None` for negative, fractional, or non-numeric
    /// values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) | Json::Int(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain non-negative integer tokens stay exact; anything signed,
        // fractional, or exponent-form goes through f64.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("bad number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_metrics_document_shape() {
        let doc = r#"{
            "schema": "ce-sim.metrics.v1",
            "machine": "clustered-fifos",
            "config": {"issue_width": 8, "attribution": true},
            "counters": {"cycles": 6950, "issued": 20000},
            "derived": {"ipc": 2.878417},
            "issue_histogram": [1, 2, 3],
            "stall_attribution": null
        }"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(v.at("schema").and_then(Json::as_str), Some("ce-sim.metrics.v1"));
        assert_eq!(v.at("config.issue_width").and_then(Json::as_u64), Some(8));
        assert_eq!(v.at("config.attribution").and_then(Json::as_bool), Some(true));
        assert_eq!(v.at("counters.cycles").and_then(Json::as_u64), Some(6950));
        assert_eq!(v.at("issue_histogram.1").and_then(Json::as_u64), Some(2));
        assert_eq!(v.at("stall_attribution"), Some(&Json::Null));
        assert_eq!(v.at("missing.path"), None);
        assert!((v.at("derived.ipc").unwrap().as_f64().unwrap() - 2.878417).abs() < 1e-9);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#"{"k": "a\"b\\c\ndAé"}"#).expect("parse");
        assert_eq!(v.at("k").and_then(Json::as_str), Some("a\"b\\c\ndAé"));
    }

    /// Whatever [`escape`] writes, the parser reads back verbatim —
    /// including embedded CSVs (newlines, quotes) and raw control bytes.
    #[test]
    fn escape_emits_what_parse_reads() {
        for s in [
            "plain",
            "a,b,c\n1,2,3\n",
            "quote\" backslash\\ tab\t cr\r bell\u{7} é✓",
            "",
        ] {
            let doc = format!("{{\"k\": \"{}\"}}", escape(s));
            let v = Json::parse(&doc).expect("escaped string parses");
            assert_eq!(v.at("k").and_then(Json::as_str), Some(s), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("\"open").is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte 0"), "{err}");
    }

    #[test]
    fn numbers_and_accessors() {
        let v = Json::parse("[-1.5, 3, 2000000, 1e3, true]").expect("parse");
        let items = v.as_arr().expect("array");
        assert_eq!(items[0].as_f64(), Some(-1.5));
        assert_eq!(items[0].as_u64(), None);
        assert_eq!(items[1].as_u64(), Some(3));
        assert_eq!(items[2].as_u64(), Some(2_000_000));
        assert_eq!(items[3].as_u64(), Some(1000));
        assert_eq!(items[4].as_bool(), Some(true));
        assert_eq!(items[4].type_name(), "bool");
    }

    /// Counters above 2^53 must survive exactly — the sweep checkpoint
    /// journal depends on integer round-trips being lossless.
    #[test]
    fn big_integers_are_exact() {
        let v = Json::parse("[18446744073709551615, 9007199254740993]").expect("parse");
        let items = v.as_arr().expect("array");
        assert_eq!(items[0].as_u64(), Some(u64::MAX));
        assert_eq!(items[1].as_u64(), Some((1 << 53) + 1));
        assert_eq!(items[0].type_name(), "number");
    }
}
