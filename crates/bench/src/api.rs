//! The typed host-API boundary between experiment front-ends.
//!
//! Three front-ends run sweeps: the per-figure CLI binaries
//! (`fig13_ipc`, `fig15_clustered`, …), the `ce-explore` design-space
//! explorer, and the `cesimd` experiment service. They must be *provably
//! the same computation* — the acceptance bar is byte-identical CSVs no
//! matter which front door a sweep came through. This module is how:
//! every preset's job grid, [`RunOptions`], and CSV renderer lives here
//! exactly once, and the wire types ([`JobSpec`], [`JobEvent`],
//! [`JobOutcome`]) the daemon and `cesimctl` exchange resolve onto those
//! same plans.
//!
//! ## Wire protocol (newline-delimited JSON over a Unix socket)
//!
//! A client sends one request line and reads event lines until the
//! connection closes:
//!
//! ```text
//! → {"op": "submit", "spec": {"sweep": "fig13"}}
//! ← {"ev": "accepted", "job": 3, "cells": 14, "degraded": false}
//! ← {"ev": "cell", "job": 3, "cell": 0, "source": "cache"}
//! ← {"ev": "cell", "job": 3, "cell": 1, "source": "run"}
//! ...
//! ← {"ev": "done", "job": 3, "ok": 14, "failed": 0, ...,
//!    "artifacts": [{"name": "fig13_ipc.csv", "content": "benchmark,..."}]}
//! ```
//!
//! Other ops: `{"op": "status"}`, `{"op": "ping"}`, `{"op": "shutdown"}`.
//! Failures come back as `{"ev": "error", "kind": "...", "message": ...}`
//! with the kinds the exit-discipline greps for: `overloaded` (admission
//! refused), `proto` (unparseable, oversized, or unknown request — the
//! connection stays open and the daemon keeps serving), `config-invalid`
//! (unknown preset/machine/benchmark), `io` (daemon-side disk failure).
//!
//! A custom sweep names cells explicitly, using the [`machine`] registry
//! vocabulary `cesim --machine` shares:
//!
//! ```text
//! {"op": "submit", "spec": {"cells": [{"bench": "compress", "machine": "window"}],
//!  "attribution": true, "max_insts": 20000}}
//! ```

use std::fmt::Write as _;

use ce_core::analysis::{MachineSpec, Speedup};
use ce_delay::{FeatureSize, Technology};
use ce_sim::{machine, SamplingConfig, SimConfig, StallCause};
use ce_workloads::Benchmark;

use crate::explore::{self, GridScale};
use crate::json::{self, Json};
use crate::runner::{grid, Job, RunOptions, SweepSummary};

/// The preset sweeps the service and the CLI binaries both know, by
/// stable wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Figure 13: baseline window vs dependence-based FIFOs (8-way).
    Fig13,
    /// Figure 15: baseline window vs 2×4 clustered FIFOs + speedup.
    Fig15,
    /// Figure 17: the five clustered organizations of Section 5.6.
    Fig17,
    /// Scheduler occupancy and stall anatomy across four organizations.
    Occupancy,
    /// The design-space explorer on its CI grid (sampled).
    ExploreTiny,
    /// The design-space explorer on the full grid (sampled).
    ExploreFull,
}

impl SweepKind {
    /// All presets, in a stable order.
    pub fn all() -> [SweepKind; 6] {
        [
            SweepKind::Fig13,
            SweepKind::Fig15,
            SweepKind::Fig17,
            SweepKind::Occupancy,
            SweepKind::ExploreTiny,
            SweepKind::ExploreFull,
        ]
    }

    /// The stable wire name (`{"sweep": "<name>"}`).
    pub fn name(self) -> &'static str {
        match self {
            SweepKind::Fig13 => "fig13",
            SweepKind::Fig15 => "fig15",
            SweepKind::Fig17 => "fig17",
            SweepKind::Occupancy => "occupancy",
            SweepKind::ExploreTiny => "explore-tiny",
            SweepKind::ExploreFull => "explore-full",
        }
    }

    /// Looks a preset up by wire name.
    pub fn from_name(name: &str) -> Option<SweepKind> {
        SweepKind::all().into_iter().find(|k| k.name() == name)
    }
}

/// The Figure 13 machine pair, labels included (the `fig13_ipc` binary
/// and the service both plan from this).
pub fn fig13_machines() -> [(&'static str, SimConfig); 2] {
    [("window", machine::baseline_8way()), ("fifos", machine::dependence_8way())]
}

/// The Figure 15 machine pair.
pub fn fig15_machines() -> [(&'static str, SimConfig); 2] {
    [("window", machine::baseline_8way()), ("2x4", machine::clustered_fifos_8way())]
}

/// The four organizations of the occupancy report.
pub fn occupancy_machines() -> [(&'static str, SimConfig); 4] {
    [
        ("window", machine::baseline_8way()),
        ("fifos", machine::dependence_8way()),
        ("2c-fifos", machine::clustered_fifos_8way()),
        ("2c-windows", machine::clustered_windows_dispatch_8way()),
    ]
}

/// A preset's exact computation: the job grid and per-cell options.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The cells, in the order the renderers consume them.
    pub jobs: Vec<Job>,
    /// Per-cell run options (part of the cache key — attribution and
    /// sampling change results, so they change identity).
    pub run: RunOptions,
}

/// The plan for a preset — the single source of truth the CLI binaries
/// and the service share.
pub fn plan(kind: SweepKind) -> SweepPlan {
    let attributed = RunOptions { attribution: true, ..RunOptions::default() };
    match kind {
        SweepKind::Fig13 => SweepPlan { jobs: grid(&fig13_machines()), run: attributed },
        SweepKind::Fig15 => {
            SweepPlan { jobs: grid(&fig15_machines()), run: RunOptions::default() }
        }
        SweepKind::Fig17 => {
            SweepPlan { jobs: grid(&machine::figure17_machines()), run: attributed }
        }
        SweepKind::Occupancy => {
            SweepPlan { jobs: grid(&occupancy_machines()), run: attributed }
        }
        SweepKind::ExploreTiny | SweepKind::ExploreFull => {
            let scale = explore_scale(kind).expect("explore kind");
            SweepPlan {
                jobs: explore::explore_jobs(scale),
                run: RunOptions {
                    sampled: Some(SamplingConfig::default()),
                    ..RunOptions::default()
                },
            }
        }
    }
}

/// The grid scale behind an explore preset (`None` for figure presets).
pub fn explore_scale(kind: SweepKind) -> Option<GridScale> {
    match kind {
        SweepKind::ExploreTiny => Some(GridScale::Tiny),
        SweepKind::ExploreFull => Some(GridScale::Full),
        _ => None,
    }
}

/// `results/fig13_ipc.csv`, byte-for-byte what the `fig13_ipc` binary
/// writes. Precondition (all renderers): `summary.all_ok()` over the
/// preset's [`plan`].
pub fn fig13_csv(summary: &SweepSummary) -> String {
    let mut csv = String::from("benchmark,window_ipc,dependence_ipc\n");
    let mut results = summary.ok_cells().map(|r| &r.stats);
    for bench in Benchmark::all() {
        let win = results.next().expect("window cell");
        let dep = results.next().expect("fifos cell");
        let _ = writeln!(csv, "{},{:.3},{:.3}", bench.name(), win.ipc(), dep.ipc());
    }
    csv
}

/// `results/fig15_clustered.csv`, byte-for-byte what the
/// `fig15_clustered` binary writes.
pub fn fig15_csv(summary: &SweepSummary) -> String {
    let tech = Technology::new(FeatureSize::U018);
    let mut csv = String::from("benchmark,window_ipc,clustered_ipc,ic_bypass_pct,speedup\n");
    let mut results = summary.ok_cells().map(|r| &r.stats);
    for bench in Benchmark::all() {
        let win = results.next().expect("window cell");
        let dep = results.next().expect("clustered cell");
        let s = Speedup::combine(
            &tech,
            MachineSpec::paper_dependence_machine(),
            win.ipc(),
            dep.ipc(),
        );
        let _ = writeln!(
            csv,
            "{},{:.3},{:.3},{:.1},{:.3}",
            bench.name(),
            win.ipc(),
            dep.ipc(),
            dep.intercluster_bypass_frequency() * 100.0,
            s.speedup
        );
    }
    csv
}

/// `results/fig17_organizations.csv`, byte-for-byte what the
/// `fig17_organizations` binary writes.
pub fn fig17_csv(summary: &SweepSummary) -> String {
    let machines = machine::figure17_machines();
    let mut csv = String::from("benchmark,machine,ipc,ic_bypass_pct\n");
    let mut results = summary.ok_cells().map(|r| &r.stats);
    for bench in Benchmark::all() {
        for (name, _) in &machines {
            let stats = results.next().expect("one result per cell");
            let _ = writeln!(
                csv,
                "{},{},{:.3},{:.1}",
                bench.name(),
                name,
                stats.ipc(),
                stats.intercluster_bypass_frequency() * 100.0
            );
        }
    }
    csv
}

/// `results/occupancy.csv`, byte-for-byte what the `occupancy` binary
/// writes.
pub fn occupancy_csv(summary: &SweepSummary) -> String {
    let machines = occupancy_machines();
    let mut csv = String::from(
        "benchmark,machine,ipc,occupancy,sched_stalls,inflight_stalls,preg_stalls,\
         idle_pct,operand_pct,fifohead_pct,empty_pct\n",
    );
    let mut results = summary.ok_cells().map(|r| &r.stats);
    for bench in Benchmark::all() {
        for (name, cfg) in &machines {
            let stats = results.next().expect("one result per cell");
            let slots = cfg.issue_width as u64 * stats.cycles;
            let pct = |cause: StallCause| {
                stats.stall_breakdown.get(cause) as f64 / slots as f64 * 100.0
            };
            let _ = writeln!(
                csv,
                "{},{},{:.3},{:.1},{},{},{},{:.1},{:.1},{:.1},{:.1}",
                bench.name(),
                name,
                stats.ipc(),
                stats.mean_occupancy(),
                stats.scheduler_stalls,
                stats.inflight_stalls,
                stats.preg_stalls,
                stats.idle_issue_fraction() * 100.0,
                pct(StallCause::OperandWait),
                pct(StallCause::FifoHeadNotReady),
                pct(StallCause::EmptyWindow)
            );
        }
    }
    csv
}

/// The artifact set a completed preset sweep produces, as `(file name,
/// content)` pairs — the same bytes the corresponding CLI binary writes
/// next to its manifest. Precondition: `summary.all_ok()`.
pub fn preset_artifacts(kind: SweepKind, summary: &SweepSummary) -> Vec<(String, String)> {
    match kind {
        SweepKind::Fig13 => vec![("fig13_ipc.csv".into(), fig13_csv(summary))],
        SweepKind::Fig15 => vec![("fig15_clustered.csv".into(), fig15_csv(summary))],
        SweepKind::Fig17 => vec![("fig17_organizations.csv".into(), fig17_csv(summary))],
        SweepKind::Occupancy => vec![("occupancy.csv".into(), occupancy_csv(summary))],
        SweepKind::ExploreTiny | SweepKind::ExploreFull => {
            let scale = explore_scale(kind).expect("explore kind");
            let report = explore::score(scale, false, Some(summary.clone()));
            vec![
                ("pareto.csv".into(), explore::pareto_csv(&report)),
                ("tab02_explore.csv".into(), explore::tab02_explore_csv(&report)),
            ]
        }
    }
}

/// One explicitly-named cell of a custom sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// The benchmark, by [`Benchmark::name`].
    pub bench: Benchmark,
    /// The machine, by [`machine::MACHINE_NAMES`] vocabulary.
    pub machine: String,
}

/// What a client asked the service to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepRequest {
    /// A named preset ([`plan`] defines the computation).
    Preset(SweepKind),
    /// An explicit cell list with its own options.
    Cells {
        /// The cells, in submission order.
        cells: Vec<CellSpec>,
        /// Enable stall attribution on every cell.
        attribution: bool,
        /// Run cells under default-geometry sampled simulation.
        sampled: bool,
    },
}

/// A job submission: what to run and under which limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The sweep to run.
    pub request: SweepRequest,
    /// Per-benchmark instruction cap; `None` uses the daemon's ambient
    /// [`crate::max_insts`].
    pub max_insts: Option<u64>,
    /// Per-cell wall-clock deadline, milliseconds (maps onto
    /// [`crate::runner::RunPolicy::cell_timeout`]).
    pub deadline_ms: Option<u64>,
    /// Allow the daemon to degrade this job to sampled mode under queue
    /// pressure instead of rejecting it.
    pub allow_degraded: bool,
    /// Display tag for telemetry and logs (defaults to the preset name
    /// or `cells`).
    pub tag: Option<String>,
}

impl JobSpec {
    /// A preset submission with defaults.
    pub fn preset(kind: SweepKind) -> JobSpec {
        JobSpec {
            request: SweepRequest::Preset(kind),
            max_insts: None,
            deadline_ms: None,
            allow_degraded: false,
            tag: None,
        }
    }

    /// The display name used for telemetry journals and logs.
    pub fn display_name(&self) -> String {
        if let Some(tag) = &self.tag {
            return tag.clone();
        }
        match &self.request {
            SweepRequest::Preset(kind) => kind.name().to_owned(),
            SweepRequest::Cells { .. } => "cells".to_owned(),
        }
    }

    /// Resolves the spec into the concrete computation: job list and run
    /// options. `degraded` forces sampled mode (the admission-control
    /// pressure valve); it is the caller's duty to only set it when
    /// [`JobSpec::allow_degraded`] permits.
    ///
    /// # Errors
    ///
    /// A message naming the unknown machine/benchmark, or an empty cell
    /// list.
    pub fn resolve(&self, degraded: bool) -> Result<SweepPlan, String> {
        let mut plan = match &self.request {
            SweepRequest::Preset(kind) => plan(*kind),
            SweepRequest::Cells { cells, attribution, sampled } => {
                if cells.is_empty() {
                    return Err("a cells sweep needs at least one cell".into());
                }
                let mut jobs = Vec::with_capacity(cells.len());
                for cell in cells {
                    let cfg = machine::by_name(&cell.machine)
                        .ok_or_else(|| format!("unknown machine `{}`", cell.machine))?;
                    jobs.push((cell.bench, cfg));
                }
                SweepPlan {
                    jobs,
                    run: RunOptions {
                        attribution: *attribution,
                        sampled: sampled.then(SamplingConfig::default),
                    },
                }
            }
        };
        if degraded {
            plan.run.sampled = Some(SamplingConfig::default());
        }
        Ok(plan)
    }

    /// The artifacts of a completed run of this spec. Degraded runs
    /// produce no artifacts for figure presets (their CSVs would not be
    /// the committed bytes); explore presets and custom sweeps render
    /// normally — sampling is their stated mode.
    pub fn artifacts(&self, degraded: bool, summary: &SweepSummary) -> Vec<(String, String)> {
        match &self.request {
            SweepRequest::Preset(kind) => {
                if degraded && explore_scale(*kind).is_none() {
                    return Vec::new();
                }
                preset_artifacts(*kind, summary)
            }
            SweepRequest::Cells { cells, .. } => {
                let mut csv = String::from("benchmark,machine,ipc,cycles,committed\n");
                for (cell, result) in cells.iter().zip(summary.ok_cells()) {
                    let _ = writeln!(
                        csv,
                        "{},{},{:.3},{},{}",
                        cell.bench.name(),
                        cell.machine,
                        result.stats.ipc(),
                        result.stats.cycles,
                        result.stats.committed
                    );
                }
                vec![("cells.csv".into(), csv)]
            }
        }
    }

    /// Serializes the spec as one JSON object (the `spec` field of a
    /// submit request, and the WAL's record of the job).
    pub fn to_json(&self) -> String {
        let mut body = String::new();
        match &self.request {
            SweepRequest::Preset(kind) => {
                let _ = write!(body, "\"sweep\": \"{}\"", kind.name());
            }
            SweepRequest::Cells { cells, attribution, sampled } => {
                let cells_json = cells
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"bench\": \"{}\", \"machine\": \"{}\"}}",
                            c.bench.name(),
                            json::escape(&c.machine)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = write!(
                    body,
                    "\"cells\": [{cells_json}], \"attribution\": {attribution}, \
                     \"sampled\": {sampled}"
                );
            }
        }
        if let Some(n) = self.max_insts {
            let _ = write!(body, ", \"max_insts\": {n}");
        }
        if let Some(ms) = self.deadline_ms {
            let _ = write!(body, ", \"deadline_ms\": {ms}");
        }
        if self.allow_degraded {
            body.push_str(", \"allow_degraded\": true");
        }
        if let Some(tag) = &self.tag {
            let _ = write!(body, ", \"tag\": \"{}\"", json::escape(tag));
        }
        format!("{{{body}}}")
    }

    /// Parses a spec object (the inverse of [`JobSpec::to_json`]).
    ///
    /// # Errors
    ///
    /// A message naming what is missing or unknown.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let request = if let Some(name) = doc.at("sweep").and_then(Json::as_str) {
            SweepRequest::Preset(
                SweepKind::from_name(name).ok_or_else(|| format!("unknown sweep `{name}`"))?,
            )
        } else if let Some(cells) = doc.at("cells").and_then(Json::as_arr) {
            let mut parsed = Vec::with_capacity(cells.len());
            for cell in cells {
                let bench_name = cell
                    .at("bench")
                    .and_then(Json::as_str)
                    .ok_or("cell without `bench`")?;
                let bench = Benchmark::from_name(bench_name)
                    .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
                let machine = cell
                    .at("machine")
                    .and_then(Json::as_str)
                    .ok_or("cell without `machine`")?
                    .to_owned();
                parsed.push(CellSpec { bench, machine });
            }
            SweepRequest::Cells {
                cells: parsed,
                attribution: doc.at("attribution").and_then(Json::as_bool).unwrap_or(false),
                sampled: doc.at("sampled").and_then(Json::as_bool).unwrap_or(false),
            }
        } else {
            return Err("spec needs `sweep` or `cells`".into());
        };
        Ok(JobSpec {
            request,
            max_insts: doc.at("max_insts").and_then(Json::as_u64),
            deadline_ms: doc.at("deadline_ms").and_then(Json::as_u64),
            allow_degraded: doc.at("allow_degraded").and_then(Json::as_bool).unwrap_or(false),
            tag: doc.at("tag").and_then(Json::as_str).map(str::to_owned),
        })
    }
}

/// Where a settled cell's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Served from the content-addressed result store.
    Cache,
    /// Freshly simulated this job.
    Run,
}

impl CellSource {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            CellSource::Cache => "cache",
            CellSource::Run => "run",
        }
    }
}

/// The terminal summary of a job, carried inline in the `done` event so
/// a client needs no filesystem access to the daemon's state directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobOutcome {
    /// Cells with results.
    pub ok: usize,
    /// Cells that failed (structured failure strings below).
    pub failed: usize,
    /// Cells served from the result store.
    pub cache_hits: usize,
    /// Cells that had to simulate.
    pub cache_misses: usize,
    /// Whether the job ran degraded (sampled under queue pressure).
    pub degraded: bool,
    /// `(file name, content)` artifact pairs (empty when cells failed).
    pub artifacts: Vec<(String, String)>,
    /// Human-readable per-cell failure reports.
    pub failures: Vec<String>,
}

/// One event on a job's stream, daemon → client.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job passed admission and is queued.
    Accepted {
        /// Daemon-assigned job id.
        job: u64,
        /// Cells the resolved plan contains.
        cells: usize,
        /// Whether admission degraded the job to sampled mode.
        degraded: bool,
    },
    /// One cell settled (planning classified it as a cache hit, or a
    /// worker finished simulating it).
    Cell {
        /// Daemon-assigned job id.
        job: u64,
        /// Input-order cell index.
        cell: usize,
        /// Cache or fresh run.
        source: CellSource,
    },
    /// The job finished.
    Done {
        /// Daemon-assigned job id.
        job: u64,
        /// The full outcome, artifacts inline.
        outcome: JobOutcome,
    },
    /// The request failed; `kind` is machine-readable (`overloaded`,
    /// `proto`, `config-invalid`, `io`).
    Error {
        /// Stable error kind.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl JobEvent {
    /// Serializes the event as one wire line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            JobEvent::Accepted { job, cells, degraded } => format!(
                "{{\"ev\": \"accepted\", \"job\": {job}, \"cells\": {cells}, \
                 \"degraded\": {degraded}}}"
            ),
            JobEvent::Cell { job, cell, source } => format!(
                "{{\"ev\": \"cell\", \"job\": {job}, \"cell\": {cell}, \
                 \"source\": \"{}\"}}",
                source.name()
            ),
            JobEvent::Done { job, outcome } => {
                let artifacts = outcome
                    .artifacts
                    .iter()
                    .map(|(name, content)| {
                        format!(
                            "{{\"name\": \"{}\", \"content\": \"{}\"}}",
                            json::escape(name),
                            json::escape(content)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let failures = outcome
                    .failures
                    .iter()
                    .map(|f| format!("\"{}\"", json::escape(f)))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"ev\": \"done\", \"job\": {job}, \"ok\": {}, \"failed\": {}, \
                     \"cache_hits\": {}, \"cache_misses\": {}, \"degraded\": {}, \
                     \"artifacts\": [{artifacts}], \"failures\": [{failures}]}}",
                    outcome.ok,
                    outcome.failed,
                    outcome.cache_hits,
                    outcome.cache_misses,
                    outcome.degraded,
                )
            }
            JobEvent::Error { kind, message } => format!(
                "{{\"ev\": \"error\", \"kind\": \"{}\", \"message\": \"{}\"}}",
                json::escape(kind),
                json::escape(message)
            ),
        }
    }

    /// Parses one wire line (the inverse of [`JobEvent::to_json`]).
    ///
    /// # Errors
    ///
    /// A message naming what is malformed.
    pub fn from_json(doc: &Json) -> Result<JobEvent, String> {
        let ev = doc.at("ev").and_then(Json::as_str).ok_or("event without `ev`")?;
        let num = |key: &str| {
            doc.at(key).and_then(Json::as_u64).ok_or_else(|| format!("missing `{key}`"))
        };
        Ok(match ev {
            "accepted" => JobEvent::Accepted {
                job: num("job")?,
                cells: num("cells")? as usize,
                degraded: doc.at("degraded").and_then(Json::as_bool).unwrap_or(false),
            },
            "cell" => JobEvent::Cell {
                job: num("job")?,
                cell: num("cell")? as usize,
                source: match doc.at("source").and_then(Json::as_str) {
                    Some("cache") => CellSource::Cache,
                    Some("run") => CellSource::Run,
                    other => return Err(format!("bad cell source {other:?}")),
                },
            },
            "done" => {
                let mut artifacts = Vec::new();
                for a in doc.at("artifacts").and_then(Json::as_arr).unwrap_or(&[]) {
                    let name =
                        a.at("name").and_then(Json::as_str).ok_or("artifact without name")?;
                    let content = a
                        .at("content")
                        .and_then(Json::as_str)
                        .ok_or("artifact without content")?;
                    artifacts.push((name.to_owned(), content.to_owned()));
                }
                let failures = doc
                    .at("failures")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(Json::as_str)
                    .map(str::to_owned)
                    .collect();
                JobEvent::Done {
                    job: num("job")?,
                    outcome: JobOutcome {
                        ok: num("ok")? as usize,
                        failed: num("failed")? as usize,
                        cache_hits: num("cache_hits")? as usize,
                        cache_misses: num("cache_misses")? as usize,
                        degraded: doc.at("degraded").and_then(Json::as_bool).unwrap_or(false),
                        artifacts,
                        failures,
                    },
                }
            }
            "error" => JobEvent::Error {
                kind: doc
                    .at("kind")
                    .and_then(Json::as_str)
                    .ok_or("error without kind")?
                    .to_owned(),
                message: doc
                    .at("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            },
            other => return Err(format!("unknown event `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep_ft, SweepOptions};

    /// Every preset's wire name round-trips, and every plan is non-empty
    /// with the options the corresponding binary uses (attribution for
    /// fig13/fig17/occupancy, plain for fig15, sampled for explore).
    #[test]
    fn preset_names_and_plans() {
        for kind in SweepKind::all() {
            assert_eq!(SweepKind::from_name(kind.name()), Some(kind));
            let plan = plan(kind);
            assert!(!plan.jobs.is_empty(), "{kind:?}");
        }
        assert_eq!(SweepKind::from_name("nope"), None);
        assert!(plan(SweepKind::Fig13).run.attribution);
        assert!(!plan(SweepKind::Fig15).run.attribution);
        assert!(plan(SweepKind::Fig17).run.attribution);
        assert!(plan(SweepKind::Occupancy).run.attribution);
        assert!(plan(SweepKind::ExploreTiny).run.sampled.is_some());
        assert_eq!(plan(SweepKind::Fig13).jobs.len(), 14);
        assert_eq!(plan(SweepKind::Fig17).jobs.len(), 35);
    }

    /// Specs round-trip through their JSON wire form, including custom
    /// cells with options.
    #[test]
    fn job_specs_round_trip() {
        let preset = JobSpec {
            max_insts: Some(20_000),
            deadline_ms: Some(5_000),
            allow_degraded: true,
            tag: Some("nightly \"q\"".into()),
            ..JobSpec::preset(SweepKind::ExploreTiny)
        };
        let parsed = JobSpec::from_json(&Json::parse(&preset.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, preset);
        assert_eq!(parsed.display_name(), "nightly \"q\"");

        let cells = JobSpec {
            request: SweepRequest::Cells {
                cells: vec![
                    CellSpec { bench: Benchmark::Compress, machine: "window".into() },
                    CellSpec { bench: Benchmark::Li, machine: "fifos".into() },
                ],
                attribution: true,
                sampled: false,
            },
            max_insts: None,
            deadline_ms: None,
            allow_degraded: false,
            tag: None,
        };
        let parsed = JobSpec::from_json(&Json::parse(&cells.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, cells);
        assert_eq!(parsed.display_name(), "cells");

        let bad = Json::parse("{\"sweep\": \"nope\"}").unwrap();
        assert!(JobSpec::from_json(&bad).is_err());
        let empty = Json::parse("{}").unwrap();
        assert!(JobSpec::from_json(&empty).is_err());
    }

    /// Resolution maps machine names through the registry, rejects
    /// unknowns, and the degraded flag forces sampled mode.
    #[test]
    fn resolution_and_degradation() {
        let spec = JobSpec {
            request: SweepRequest::Cells {
                cells: vec![CellSpec { bench: Benchmark::Compress, machine: "window".into() }],
                attribution: false,
                sampled: false,
            },
            ..JobSpec::preset(SweepKind::Fig13)
        };
        let plan = spec.resolve(false).unwrap();
        assert_eq!(plan.jobs.len(), 1);
        assert!(plan.run.sampled.is_none());
        let degraded = spec.resolve(true).unwrap();
        assert!(degraded.run.sampled.is_some());

        let bad = JobSpec {
            request: SweepRequest::Cells {
                cells: vec![CellSpec { bench: Benchmark::Compress, machine: "warp".into() }],
                attribution: false,
                sampled: false,
            },
            ..spec.clone()
        };
        let err = bad.resolve(false).unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }

    /// The shared renderers produce the same bytes the binaries' inline
    /// loops produce — pinned here for fig13 by re-deriving the CSV from
    /// the same summary the renderer consumes.
    #[test]
    fn fig13_renderer_matches_inline_derivation() {
        let plan = plan(SweepKind::Fig13);
        let summary = run_sweep_ft(
            &plan.jobs,
            2_000,
            &SweepOptions { run: plan.run, ..SweepOptions::default() },
        )
        .unwrap();
        assert!(summary.all_ok());
        let csv = fig13_csv(&summary);
        let mut expect = String::from("benchmark,window_ipc,dependence_ipc\n");
        let mut results = summary.ok_cells().map(|r| &r.stats);
        for bench in Benchmark::all() {
            let win = results.next().unwrap();
            let dep = results.next().unwrap();
            let _ = writeln!(expect, "{},{:.3},{:.3}", bench.name(), win.ipc(), dep.ipc());
        }
        assert_eq!(csv, expect);
        let arts = JobSpec::preset(SweepKind::Fig13).artifacts(false, &summary);
        assert_eq!(arts.len(), 1);
        assert_eq!(arts[0].0, "fig13_ipc.csv");
        assert_eq!(arts[0].1, csv);
        // A degraded figure preset withholds its artifacts.
        assert!(JobSpec::preset(SweepKind::Fig13).artifacts(true, &summary).is_empty());
    }

    /// Events round-trip, artifacts (with embedded CSV newlines) intact.
    #[test]
    fn job_events_round_trip() {
        let events = [
            JobEvent::Accepted { job: 7, cells: 14, degraded: false },
            JobEvent::Cell { job: 7, cell: 3, source: CellSource::Cache },
            JobEvent::Cell { job: 7, cell: 4, source: CellSource::Run },
            JobEvent::Done {
                job: 7,
                outcome: JobOutcome {
                    ok: 13,
                    failed: 1,
                    cache_hits: 9,
                    cache_misses: 5,
                    degraded: true,
                    artifacts: vec![("a.csv".into(), "h1,h2\n1,2\n".into())],
                    failures: vec!["cell 5 (li): timeout: too slow".into()],
                },
            },
            JobEvent::Error { kind: "overloaded".into(), message: "queue full (8 jobs)".into() },
        ];
        for ev in &events {
            let line = ev.to_json();
            let parsed = JobEvent::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(&parsed, ev, "{line}");
        }
    }
}
