//! Canonical CSV builders for the delay-model artifacts.
//!
//! Each figure/table binary and `make_report` must emit byte-identical
//! CSVs for the same artifact — CI regenerates them and diffs against the
//! committed files — so the format strings live here, once. Every builder
//! evaluates the models through their validated `try_compute` paths and
//! returns the first [`DelayError`] instead of panicking, which is what
//! lets the binaries exit with a structured code (1) on a model failure
//! rather than aborting mid-write.

use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{DelayError, FeatureSize, PipelineDelays, Technology};
use std::fmt::Write as _;

/// `fig03_rename.csv`: rename breakdown vs issue width, all technologies.
///
/// # Errors
///
/// The first [`DelayError`] the rename model reports.
pub fn fig03_rename() -> Result<String, DelayError> {
    let mut csv = String::from(
        "tech_um,issue_width,decode_ps,wordline_ps,bitline_ps,senseamp_ps,total_ps\n",
    );
    for tech in Technology::all() {
        for iw in [2usize, 4, 8] {
            let d = RenameDelay::try_compute(&tech, &RenameParams::new(iw))?;
            let _ = writeln!(
                csv,
                "{},{iw},{:.1},{:.1},{:.1},{:.1},{:.1}",
                tech.feature().micrometers(),
                d.decode_ps,
                d.wordline_ps,
                d.bitline_ps,
                d.senseamp_ps,
                d.total_ps()
            );
        }
    }
    Ok(csv)
}

/// `fig05_wakeup.csv`: wakeup delay vs window size per issue width, 0.18 µm.
///
/// # Errors
///
/// The first [`DelayError`] the wakeup model reports.
pub fn fig05_wakeup() -> Result<String, DelayError> {
    let mut csv = String::from("window,ipc2way_ps,ipc4way_ps,ipc8way_ps\n");
    let t018 = Technology::new(FeatureSize::U018);
    for window in (8..=64).step_by(8) {
        let d = |iw| -> Result<f64, DelayError> {
            Ok(WakeupDelay::try_compute(&t018, &WakeupParams::new(iw, window))?.total_ps())
        };
        let _ = writeln!(csv, "{window},{:.1},{:.1},{:.1}", d(2)?, d(4)?, d(8)?);
    }
    Ok(csv)
}

/// `fig06_wakeup_scaling.csv`: wakeup breakdown across technologies (8-way,
/// 64 entries).
///
/// # Errors
///
/// The first [`DelayError`] the wakeup model reports.
pub fn fig06_wakeup_scaling() -> Result<String, DelayError> {
    let mut csv = String::from("tech_um,tag_drive_ps,tag_match_ps,match_or_ps,total_ps\n");
    for tech in Technology::all() {
        let d = WakeupDelay::try_compute(&tech, &WakeupParams::new(8, 64))?;
        let _ = writeln!(
            csv,
            "{},{:.1},{:.1},{:.1},{:.1}",
            tech.feature().micrometers(),
            d.tag_drive_ps,
            d.tag_match_ps,
            d.match_or_ps,
            d.total_ps()
        );
    }
    Ok(csv)
}

/// `fig08_select.csv`: selection breakdown vs window size, all technologies.
///
/// # Errors
///
/// The first [`DelayError`] the select model reports.
pub fn fig08_select() -> Result<String, DelayError> {
    let mut csv = String::from("tech_um,window,request_ps,root_ps,grant_ps,total_ps\n");
    for tech in Technology::all() {
        for window in [16usize, 32, 64, 128] {
            let d = SelectDelay::try_compute(&tech, &SelectParams::new(window))?;
            let _ = writeln!(
                csv,
                "{},{window},{:.1},{:.1},{:.1},{:.1}",
                tech.feature().micrometers(),
                d.request_prop_ps,
                d.root_ps,
                d.grant_prop_ps,
                d.total_ps()
            );
        }
    }
    Ok(csv)
}

/// `tab01_bypass.csv`: bypass wire length, delay, and path count vs issue
/// width, 0.18 µm.
///
/// # Errors
///
/// The first [`DelayError`] the bypass model reports.
pub fn tab01_bypass() -> Result<String, DelayError> {
    let mut csv = String::from("issue_width,wire_length_lambda,delay_ps,path_count\n");
    let t018 = Technology::new(FeatureSize::U018);
    for iw in [2usize, 4, 8, 16] {
        let p = BypassParams::new(iw);
        let d = BypassDelay::try_compute(&t018, &p)?;
        let _ = writeln!(
            csv,
            "{iw},{:.0},{:.1},{}",
            d.wire_length_lambda,
            d.total_ps(),
            p.path_count()
        );
    }
    Ok(csv)
}

/// `tab02_overall.csv`: the Table 2 stage-delay roll-up.
///
/// # Errors
///
/// The first [`DelayError`] any structure model reports.
pub fn tab02_overall() -> Result<String, DelayError> {
    let mut csv =
        String::from("tech_um,issue_width,window,rename_ps,wakeup_select_ps,bypass_ps\n");
    for tech in Technology::all() {
        for (iw, win) in [(4usize, 32usize), (8, 64)] {
            let d = PipelineDelays::try_compute(&tech, iw, win)?;
            let _ = writeln!(
                csv,
                "{},{iw},{win},{:.1},{:.1},{:.1}",
                tech.feature().micrometers(),
                d.rename_ps,
                d.window_ps(),
                d.bypass_ps
            );
        }
    }
    Ok(csv)
}

/// `tab04_restable.csv`: reservation-table delay vs issue width, 0.18 µm.
///
/// # Errors
///
/// The first [`DelayError`] the reservation-table model reports.
pub fn tab04_restable() -> Result<String, DelayError> {
    let mut csv = String::from("issue_width,physical_regs,entries,delay_ps\n");
    let t018 = Technology::new(FeatureSize::U018);
    for iw in [2usize, 4, 8] {
        let p = ResTableParams::new(iw);
        let d = ResTableDelay::try_compute(&t018, &p)?.total_ps();
        let _ = writeln!(csv, "{iw},{},{},{d:.1}", p.physical_regs, p.entries());
    }
    Ok(csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_headers_and_rows() {
        for (name, csv, rows) in [
            ("fig03", fig03_rename().unwrap(), 9),
            ("fig05", fig05_wakeup().unwrap(), 8),
            ("fig06", fig06_wakeup_scaling().unwrap(), 3),
            ("fig08", fig08_select().unwrap(), 12),
            ("tab01", tab01_bypass().unwrap(), 4),
            ("tab02", tab02_overall().unwrap(), 6),
            ("tab04", tab04_restable().unwrap(), 3),
        ] {
            let lines: Vec<&str> = csv.trim_end().lines().collect();
            assert_eq!(lines.len(), rows + 1, "{name}: header plus {rows} data rows");
            let cols = lines[0].split(',').count();
            for line in &lines {
                assert_eq!(line.split(',').count(), cols, "{name}: ragged row {line}");
            }
            assert!(csv.ends_with('\n'), "{name}: trailing newline");
        }
    }
}
