//! Deterministic, seeded I/O fault injection for the persistence layer.
//!
//! PR 4 proved the *simulator* holds a zero-silent-faults contract by
//! injecting faults into its own state machine. This module is the
//! environment-side analogue: a thin seam over the filesystem primitives
//! every durability-critical write path uses (`create`, `write`,
//! `fsync`, `rename`), with a [`FailPlan`] that makes chosen operations
//! fail the way real storage fails — `ENOSPC`, `EIO`, a short/torn
//! write that leaves a prefix on disk, an fsync that returns an error
//! after the data was buffered, or a hard crash (`abort`, the in-process
//! equivalent of `kill -9`) at an exact operation index.
//!
//! ## The seam
//!
//! All fault-eligible paths call the wrappers here instead of `std::fs`
//! directly: [`crate::checkpoint::write_atomic`] (and through it the
//! result store, manifests, and rendered CSVs), the checkpoint
//! [`Journal`](crate::checkpoint::Journal), the service's write-ahead
//! job journal, and the telemetry JSONL sink. Each wrapper asks
//! [`tick`] whether the *armed plan* — if any — injects a fault at the
//! current operation index; when nothing is armed the wrappers are a
//! single relaxed atomic load away from plain `std::fs` calls.
//!
//! ## Arming
//!
//! Two scopes, so in-process campaigns and subprocess daemons both stay
//! deterministic:
//!
//! * [`with_plan`] installs a plan **thread-locally** and runs a
//!   closure — the tool for unit tests and the in-process chaos grid
//!   ([`crate::chaos`]); concurrent tests on other threads are never
//!   affected.
//! * [`arm_global_from_env`] arms a plan **process-wide** from the
//!   `CE_IOFAULT` environment variable (`class@index` terms, e.g.
//!   `CE_IOFAULT=eio@3,torn@10,crash@25`) — how `cechaos` injects
//!   faults into a spawned `cesimd` without recompiling anything.
//!
//! Operation indices count *fault-eligible* operations in arming order
//! (thread-local plans count only their own thread's operations), so a
//! plan is reproducible: same seed → same plan → same faults at the
//! same calls.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The injectable fault classes. Every class maps to a way real storage
/// fails underneath a correct program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// `ENOSPC`: the write (or rename, or create) fails with "no space
    /// left on device"; nothing is written.
    Enospc,
    /// `EIO`: a hard I/O error; nothing is written.
    Eio,
    /// A short/torn write: a *prefix* of the data reaches the file, then
    /// the operation fails. The torn bytes stay on disk — exactly what a
    /// power cut mid-`write(2)` leaves for recovery to find.
    TornWrite,
    /// The data is buffered but `fsync` reports failure; the caller must
    /// treat the data as not durable.
    FailedFsync,
    /// Hard process death (`abort`) *before* the operation executes —
    /// the in-process equivalent of `kill -9` at an exact I/O boundary.
    Crash,
}

impl FaultClass {
    /// All injectable classes, campaign order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::Enospc,
        FaultClass::Eio,
        FaultClass::TornWrite,
        FaultClass::FailedFsync,
        FaultClass::Crash,
    ];

    /// Stable lowercase name (the `CE_IOFAULT` spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Enospc => "enospc",
            FaultClass::Eio => "eio",
            FaultClass::TornWrite => "torn",
            FaultClass::FailedFsync => "fsync",
            FaultClass::Crash => "crash",
        }
    }

    /// Parses the `CE_IOFAULT` spelling.
    pub fn from_name(name: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The `std::io::Error` this class surfaces as (`Crash` never
    /// returns; `TornWrite` reports `EIO` after leaving its prefix).
    fn error(self) -> std::io::Error {
        match self {
            // ENOSPC = 28, EIO = 5 on every Unix this repo targets; the
            // raw constructor keeps the real OS error message.
            FaultClass::Enospc => std::io::Error::from_raw_os_error(28),
            FaultClass::Eio | FaultClass::TornWrite => std::io::Error::from_raw_os_error(5),
            FaultClass::FailedFsync => std::io::Error::from_raw_os_error(5),
            FaultClass::Crash => unreachable!("crash aborts instead of erroring"),
        }
    }
}

/// A deterministic plan: which operation indices fail, and how.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailPlan {
    /// `(operation index, class)` injections. `Crash` entries abort the
    /// process when their index is reached.
    pub faults: Vec<(u64, FaultClass)>,
}

impl FailPlan {
    /// A plan injecting one fault at one operation index.
    pub fn one(index: u64, class: FaultClass) -> FailPlan {
        FailPlan { faults: vec![(index, class)] }
    }

    /// Parses the `CE_IOFAULT` grammar: comma-separated `class@index`
    /// terms (`eio@3,torn@10,crash@25`).
    ///
    /// # Errors
    ///
    /// A message naming the bad term.
    pub fn parse(spec: &str) -> Result<FailPlan, String> {
        let mut faults = Vec::new();
        for term in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let (class, index) = term
                .trim()
                .split_once('@')
                .ok_or_else(|| format!("`{term}` is not class@index"))?;
            let class = FaultClass::from_name(class)
                .ok_or_else(|| format!("unknown fault class `{class}`"))?;
            let index =
                index.parse().map_err(|e| format!("bad index in `{term}`: {e}"))?;
            faults.push((index, class));
        }
        Ok(FailPlan { faults })
    }

    /// Renders the plan back to the `CE_IOFAULT` grammar.
    pub fn to_spec(&self) -> String {
        self.faults
            .iter()
            .map(|(i, c)| format!("{}@{i}", c.name()))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn at(&self, index: u64) -> Option<FaultClass> {
        self.faults.iter().find(|(i, _)| *i == index).map(|(_, c)| c).copied()
    }
}

/// An armed plan plus its operation counter.
#[derive(Debug)]
struct Armed {
    plan: FailPlan,
    ops: AtomicU64,
}

/// Fast path gate: false ⇒ no plan is armed anywhere (neither globally
/// nor on any thread), and every wrapper is a passthrough.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);
/// How many thread-local plans are currently armed (keeps `ANY_ARMED`
/// honest when scopes nest across threads).
static LOCAL_ARMED: AtomicU64 = AtomicU64::new(0);
static GLOBAL: Mutex<Option<Armed>> = Mutex::new(None);

thread_local! {
    static LOCAL: std::cell::RefCell<Option<Armed>> = const { std::cell::RefCell::new(None) };
}

/// Arms `plan` process-wide from the `CE_IOFAULT` environment variable,
/// if set. Call once at binary startup (before any guarded I/O) so
/// operation indices are reproducible. Returns the armed plan, if any.
///
/// # Errors
///
/// The parse error for a malformed `CE_IOFAULT` value — callers should
/// refuse to start rather than run with a half-understood plan.
pub fn arm_global_from_env() -> Result<Option<FailPlan>, String> {
    match std::env::var("CE_IOFAULT") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FailPlan::parse(&spec).map_err(|e| format!("CE_IOFAULT: {e}"))?;
            *GLOBAL.lock().expect("iofault plan") =
                Some(Armed { plan: plan.clone(), ops: AtomicU64::new(0) });
            ANY_ARMED.store(true, Ordering::SeqCst);
            Ok(Some(plan))
        }
        _ => Ok(None),
    }
}

/// Runs `f` with `plan` armed for the **current thread only**, then
/// disarms. Operations on other threads are never faulted, so parallel
/// tests stay independent. Returns `f`'s result plus the number of
/// fault-eligible operations the closure performed (how campaigns learn
/// a workload's op horizon).
pub fn with_plan<T>(plan: FailPlan, f: impl FnOnce() -> T) -> (T, u64) {
    LOCAL.with(|slot| {
        *slot.borrow_mut() = Some(Armed { plan, ops: AtomicU64::new(0) });
    });
    LOCAL_ARMED.fetch_add(1, Ordering::SeqCst);
    ANY_ARMED.store(true, Ordering::SeqCst);
    let out = f();
    let ops = LOCAL.with(|slot| {
        let armed = slot.borrow_mut().take();
        armed.map_or(0, |a| a.ops.load(Ordering::SeqCst))
    });
    if LOCAL_ARMED.fetch_sub(1, Ordering::SeqCst) == 1
        && GLOBAL.lock().expect("iofault plan").is_none()
    {
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
    (out, ops)
}

/// Counts one fault-eligible operation and returns the injected class,
/// if the armed plan (thread-local first, then global) has one at this
/// index. `Crash` does not return: it aborts the process, the exact
/// in-process analogue of `kill -9` at this I/O boundary.
fn tick() -> Option<FaultClass> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let hit = LOCAL.with(|slot| {
        slot.borrow().as_ref().map(|armed| {
            let index = armed.ops.fetch_add(1, Ordering::SeqCst);
            armed.plan.at(index)
        })
    });
    let fault = match hit {
        Some(fault) => fault, // a local plan owns this thread entirely
        None => {
            let guard = GLOBAL.lock().expect("iofault plan");
            guard.as_ref().and_then(|armed| {
                let index = armed.ops.fetch_add(1, Ordering::SeqCst);
                armed.plan.at(index)
            })
        }
    };
    if fault == Some(FaultClass::Crash) {
        // Flush nothing, unwind nothing: recovery must cope with
        // whatever is on disk right now.
        std::process::abort();
    }
    fault
}

/// Creates (truncating) a file through the fault seam.
///
/// # Errors
///
/// The injected fault, or the real `File::create` error.
pub fn create(path: &Path) -> std::io::Result<File> {
    if let Some(fault) = tick() {
        return Err(fault.error());
    }
    File::create(path)
}

/// Opens a file for appending through the fault seam.
///
/// # Errors
///
/// The injected fault, or the real open error.
pub fn open_append(path: &Path) -> std::io::Result<File> {
    if let Some(fault) = tick() {
        return Err(fault.error());
    }
    std::fs::OpenOptions::new().append(true).open(path)
}

/// Writes all of `bytes` through the fault seam. [`FaultClass::TornWrite`]
/// writes roughly half the bytes, then fails — the torn prefix stays in
/// the file for recovery to deal with.
///
/// # Errors
///
/// The injected fault, or the real write error.
pub fn write_all(file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
    match tick() {
        Some(FaultClass::TornWrite) => {
            let torn = bytes.len() / 2;
            file.write_all(&bytes[..torn])?;
            Err(FaultClass::TornWrite.error())
        }
        Some(fault) => Err(fault.error()),
        None => file.write_all(bytes),
    }
}

/// `fsync` (data) through the fault seam. A [`FaultClass::FailedFsync`]
/// injection reports failure *without* syncing — the data may or may not
/// survive a crash, which is precisely the ambiguity callers must treat
/// as "not durable".
///
/// # Errors
///
/// The injected fault, or the real `sync_data` error.
pub fn sync(file: &File) -> std::io::Result<()> {
    if let Some(fault) = tick() {
        return Err(fault.error());
    }
    file.sync_data()
}

/// Renames through the fault seam (a rename cannot be torn — POSIX makes
/// it atomic — so [`FaultClass::TornWrite`] degrades to a plain failure).
///
/// # Errors
///
/// The injected fault, or the real rename error.
pub fn rename(from: &Path, to: &Path) -> std::io::Result<()> {
    if let Some(fault) = tick() {
        return Err(fault.error());
    }
    std::fs::rename(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ce-iofault-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_grammar_round_trips() {
        let plan = FailPlan::parse("eio@3, torn@10,crash@25").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                (3, FaultClass::Eio),
                (10, FaultClass::TornWrite),
                (25, FaultClass::Crash)
            ]
        );
        assert_eq!(plan.to_spec(), "eio@3,torn@10,crash@25");
        assert_eq!(FailPlan::parse(&plan.to_spec()).unwrap(), plan);
        assert!(FailPlan::parse("bogus@1").is_err());
        assert!(FailPlan::parse("eio").is_err());
        assert!(FailPlan::parse("eio@x").is_err());
        assert_eq!(FailPlan::parse("").unwrap(), FailPlan::default());
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
    }

    /// The seam's core semantics: faults fire at exactly their op index,
    /// torn writes leave a prefix, failed fsyncs report failure, and the
    /// op counter reports the workload's horizon.
    #[test]
    fn faults_fire_at_exact_indices() {
        let dir = tmp("indices");
        let path = dir.join("a.bin");

        // Op 0 = create, op 1 = write: fail the write with ENOSPC.
        let ((), ops) = with_plan(FailPlan::one(1, FaultClass::Enospc), || {
            let mut f = create(&path).expect("create is op 0, unfaulted");
            let err = write_all(&mut f, b"hello world!").expect_err("op 1 faults");
            assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        });
        assert_eq!(ops, 2);
        assert_eq!(std::fs::read(&path).unwrap(), b"", "ENOSPC writes nothing");

        // Torn write: exactly half the payload lands, then EIO.
        let ((), _) = with_plan(FailPlan::one(1, FaultClass::TornWrite), || {
            let mut f = create(&path).unwrap();
            let err = write_all(&mut f, b"hello world!").expect_err("torn");
            assert_eq!(err.raw_os_error(), Some(5));
        });
        assert_eq!(std::fs::read(&path).unwrap(), b"hello ", "torn prefix remains");

        // Failed fsync: data written, durability denied.
        let ((), _) = with_plan(FailPlan::one(2, FaultClass::FailedFsync), || {
            let mut f = create(&path).unwrap();
            write_all(&mut f, b"abc").unwrap();
            assert!(sync(&f).is_err());
        });
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");

        // No plan: everything passes through.
        let mut f = create(&path).unwrap();
        write_all(&mut f, b"clean").unwrap();
        sync(&f).unwrap();
        drop(f);
        rename(&path, &dir.join("b.bin")).unwrap();
        assert_eq!(std::fs::read(dir.join("b.bin")).unwrap(), b"clean");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Thread-local arming never leaks to other threads: a sibling
    /// thread's I/O through the seam is unfaulted while ours is armed.
    #[test]
    fn local_plans_do_not_cross_threads() {
        let dir = tmp("threads");
        let ((), _) = with_plan(FailPlan::one(0, FaultClass::Eio), || {
            assert!(create(&dir.join("mine.txt")).is_err(), "armed here");
            let theirs = dir.join("theirs.txt");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut f = create(&theirs).expect("sibling thread unfaulted");
                    write_all(&mut f, b"ok").expect("sibling write unfaulted");
                })
                .join()
                .unwrap();
            });
            assert_eq!(std::fs::read(&theirs).unwrap(), b"ok");
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
