//! Validation of `ce-sim.metrics.v1` documents against the checked-in
//! schema (`results/metrics.schema.json`).
//!
//! The schema file is deliberately simple — a versioned map of required
//! dotted paths to expected types — so CI can catch a renamed or dropped
//! key without this repo growing a JSON-Schema implementation:
//!
//! ```json
//! {
//!   "schema": "ce-sim.metrics.schema.v1",
//!   "required": {
//!     "counters.cycles": "counter",
//!     "derived.ipc": "number",
//!     "stall_attribution": "object|null"
//!   }
//! }
//! ```
//!
//! Accepted type names: `string`, `number`, `counter` (non-negative
//! integer), `bool`, `array`, `object`, and `|`-joined unions thereof
//! plus `null`. Beyond shape, [`validate`] checks the semantic
//! invariants the simulator promises: the document's `schema` tag, the
//! 17-bucket issue histogram, and — when stall attribution is present —
//! the reconciliation identity `sum(causes) + issued == issue_slots ==
//! issue_width × cycles`.

use crate::json::Json;

/// The document schema tag this checker understands.
pub const METRICS_SCHEMA: &str = "ce-sim.metrics.v1";

/// The schema-file tag this checker understands.
pub const SCHEMA_FILE_SCHEMA: &str = "ce-sim.metrics.schema.v1";

/// Does `value` match one type name from the schema file?
fn type_matches(value: &Json, ty: &str) -> bool {
    match ty {
        "string" => matches!(value, Json::Str(_)),
        "number" => matches!(value, Json::Num(_) | Json::Int(_)),
        "counter" => value.as_u64().is_some(),
        "bool" => matches!(value, Json::Bool(_)),
        "array" => matches!(value, Json::Arr(_)),
        "object" => matches!(value, Json::Obj(_)),
        "null" => matches!(value, Json::Null),
        _ => false,
    }
}

/// The generic half of schema validation, shared by the metrics and
/// manifest checkers: the schema file must carry `schema_file_tag`, the
/// document must carry `doc_tag`, and every path in the schema file's
/// `required` map must be present in the document with a matching type
/// (`|`-joined unions allowed). Returns every problem found; semantic
/// invariants beyond shape are the caller's job.
pub fn check_required(
    doc: &Json,
    schema: &Json,
    schema_file_tag: &str,
    doc_tag: &str,
) -> Vec<String> {
    let mut problems = Vec::new();

    match schema.at("schema").and_then(Json::as_str) {
        Some(tag) if tag == schema_file_tag => {}
        other => {
            problems.push(format!(
                "schema file: expected \"schema\": \"{schema_file_tag}\", found {other:?}"
            ));
            return problems;
        }
    }
    let Some(required) = schema.at("required").and_then(Json::as_obj) else {
        problems.push("schema file: missing `required` object".to_owned());
        return problems;
    };

    for (path, ty) in required {
        let Some(ty) = ty.as_str() else {
            problems.push(format!("schema file: type for `{path}` is not a string"));
            continue;
        };
        match doc.at(path) {
            None => problems.push(format!("missing required key `{path}`")),
            Some(value) => {
                if !ty.split('|').any(|t| type_matches(value, t)) {
                    problems.push(format!(
                        "`{path}` should be {ty}, found {}",
                        value.type_name()
                    ));
                }
            }
        }
    }

    match doc.at("schema").and_then(Json::as_str) {
        Some(tag) if tag == doc_tag => {}
        other => {
            problems.push(format!("expected \"schema\": \"{doc_tag}\", found {other:?}"));
        }
    }

    problems
}

/// Validates a metrics document against a schema file, returning every
/// problem found (empty means the document passes).
pub fn validate(doc: &Json, schema: &Json) -> Vec<String> {
    // Shape + tags are the generic checker; the rest is this document
    // family's semantics.
    let mut problems = check_required(doc, schema, SCHEMA_FILE_SCHEMA, METRICS_SCHEMA);
    if problems.iter().any(|p| p.starts_with("schema file:")) {
        return problems;
    }

    // Semantics: the issue histogram covers widths 0..=16.
    if let Some(hist) = doc.at("issue_histogram").and_then(Json::as_arr) {
        if hist.len() != 17 {
            problems.push(format!("issue_histogram has {} buckets, expected 17", hist.len()));
        }
        if hist.iter().any(|v| v.as_u64().is_none()) {
            problems.push("issue_histogram holds a non-counter value".to_owned());
        }
    }

    // Semantics: stall attribution must reconcile exactly.
    if let Some(attr) = doc.at("stall_attribution") {
        if let Some(obj) = attr.as_obj() {
            problems.extend(check_attribution(doc, obj));
        } else if !matches!(attr, Json::Null) {
            problems.push(format!(
                "stall_attribution should be object or null, found {}",
                attr.type_name()
            ));
        }
    }

    problems
}

/// The reconciliation identity, on an attribution section known to be an
/// object.
fn check_attribution(
    doc: &Json,
    attr: &std::collections::BTreeMap<String, Json>,
) -> Vec<String> {
    let mut problems = Vec::new();
    let get = |key: &str| attr.get(key).and_then(Json::as_u64);
    let (Some(slots), Some(issued), Some(unused)) =
        (get("issue_slots"), get("issued"), get("unused"))
    else {
        problems.push(
            "stall_attribution is missing issue_slots/issued/unused counters".to_owned(),
        );
        return problems;
    };
    let Some(causes) = attr.get("causes").and_then(Json::as_obj) else {
        problems.push("stall_attribution.causes is missing or not an object".to_owned());
        return problems;
    };
    let mut cause_sum: u64 = 0;
    for (name, v) in causes {
        match v.as_u64() {
            Some(n) => cause_sum += n,
            None => problems.push(format!("stall cause `{name}` is not a counter")),
        }
    }
    if cause_sum != unused {
        problems.push(format!("stall causes sum to {cause_sum}, but `unused` is {unused}"));
    }
    if unused + issued != slots {
        problems.push(format!(
            "unused ({unused}) + issued ({issued}) != issue_slots ({slots})"
        ));
    }
    if let (Some(width), Some(cycles)) = (
        doc.at("config.issue_width").and_then(Json::as_u64),
        doc.at("counters.cycles").and_then(Json::as_u64),
    ) {
        if width * cycles != slots {
            problems.push(format!(
                "issue_slots ({slots}) != issue_width ({width}) x cycles ({cycles})"
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_sim::{machine, metrics_json, SimStats, Simulator};
    use ce_workloads::{trace_cached, Benchmark};

    fn schema() -> Json {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/metrics.schema.json"
        ))
        .expect("checked-in schema");
        Json::parse(&text).expect("schema parses")
    }

    /// A real simulator run must produce a document that passes the
    /// checked-in schema — this is the same check CI's smoke job runs.
    #[test]
    fn real_run_passes_the_checked_in_schema() {
        let mut cfg = machine::clustered_fifos_8way();
        cfg.attribution = true;
        let trace = trace_cached(Benchmark::Compress, 10_000).expect("trace");
        let stats = Simulator::new(cfg).run(&trace);
        let doc_text = metrics_json("clustered-fifos", "compress", &cfg, &stats);
        let doc = Json::parse(&doc_text).expect("metrics document parses");
        let problems = validate(&doc, &schema());
        assert!(problems.is_empty(), "{problems:#?}");
    }

    /// Attribution off → `stall_attribution: null` is legal.
    #[test]
    fn null_attribution_passes() {
        let cfg = machine::baseline_8way();
        let trace = trace_cached(Benchmark::Compress, 10_000).expect("trace");
        let stats = Simulator::new(cfg).run(&trace);
        let doc = Json::parse(&metrics_json("window", "compress", &cfg, &stats)).expect("doc");
        assert_eq!(validate(&doc, &schema()), Vec::<String>::new());
    }

    #[test]
    fn missing_keys_and_broken_identity_are_reported() {
        let cfg = machine::baseline_8way();
        let stats = SimStats::default();
        let mut doc = Json::parse(&metrics_json("window", "x", &cfg, &stats)).expect("doc");
        // Break it: drop a counter and claim an impossible attribution.
        if let Json::Obj(map) = &mut doc {
            if let Some(Json::Obj(counters)) = map.get_mut("counters") {
                counters.remove("cycles");
            }
            map.insert(
                "stall_attribution".to_owned(),
                Json::parse(
                    r#"{"issue_slots": 100, "issued": 10, "unused": 80,
                        "causes": {"empty_window": 70}}"#,
                )
                .expect("literal"),
            );
        }
        let problems = validate(&doc, &schema());
        assert!(problems.iter().any(|p| p.contains("counters.cycles")), "{problems:#?}");
        assert!(problems.iter().any(|p| p.contains("sum to 70")), "{problems:#?}");
        assert!(problems.iter().any(|p| p.contains("unused (80) + issued (10)")), "{problems:#?}");
    }

    #[test]
    fn wrong_schema_tag_is_reported() {
        let doc = Json::parse(r#"{"schema": "something-else"}"#).expect("doc");
        let problems = validate(&doc, &schema());
        assert!(
            problems.iter().any(|p| p.contains("ce-sim.metrics.v1")),
            "{problems:#?}"
        );
    }
}
