//! Closed-loop design-space explorer: clock from the delay models, IPC
//! from the simulator, BIPS as the objective.
//!
//! The paper's closing argument (Section 6) is that microarchitects must
//! optimize the *product* of clock speed and IPC, not either alone. The
//! repo already measures both sides separately — `ce-delay` prices the
//! critical structures, `ce-sim` prices the IPC cost of simplifying them —
//! and this module finally closes the loop: it enumerates the joint design
//! space
//!
//! * issue width × {central window size | FIFO count × depth | steered
//!   window shape} × cluster count × steering heuristic (the simulator
//!   side), crossed with
//! * technology node 0.8/0.35/0.18 µm (the delay side),
//!
//! computing for every point the clock period implied by
//! [`MachineClock`], the harmonic-mean IPC over the seven bundled kernels
//! (sampled simulation by default, exact with `--full`), and the resulting
//! **BIPS = IPC × 1000 / clock_ps** (instructions per nanosecond, i.e.
//! billions of instructions per second at the modeled clock).
//!
//! ## Skip taxonomy — no silent holes
//!
//! A joint grid necessarily contains corners one side cannot price. Every
//! such point appears in the output as a **structured skip**, never a
//! panic and never a silently missing row:
//!
//! * `skip-delay` — the delay model refused the geometry
//!   ([`DelayError`], e.g. a window outside the modeled domain);
//! * `skip-sim` — the simulator refused the configuration
//!   ([`SimConfig::validate`], e.g. more than 128 issue FIFOs).
//!
//! Both grids deliberately include one probe of each kind, so the smoke
//! test can assert the skip machinery works by counting exactly the
//! expected skips.
//!
//! ## Fault tolerance
//!
//! The IPC half runs through [`run_sweep_ft`], so the explorer inherits
//! the checkpoint journal (kill it mid-sweep, rerun with `--resume`, get
//! byte-identical CSVs) and the longest-first parallel runner
//! (`CE_THREADS` scales it, results never depend on worker count).

use std::path::PathBuf;

use ce_delay::{DelayError, FeatureSize, MachineClock, MachineParams, SchedulerGeometry, Technology};
use ce_sim::{machine, SamplingConfig, SchedulerKind, SimConfig, SteeringPolicy};
use ce_workloads::Benchmark;

use crate::checkpoint::CheckpointSpec;
use crate::runner::{run_sweep_ft, Job, RunOptions, RunPolicy, SweepOptions, SweepSummary};
use crate::telemetry::Telemetry;
use std::fmt::Write as _;

/// Which slice of the joint design space to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridScale {
    /// The five Figure 17 organizations, the unclustered FIFO machine,
    /// and the two skip probes — small enough for CI smoke runs, rich
    /// enough to exercise every code path (8 organizations, 24 design
    /// points, 6 of them structured skips).
    Tiny,
    /// The full joint space: widths {2,4,8,16} × clusters {1,2} ×
    /// {5 central windows, 9 FIFO shapes × 4 steering heuristics,
    /// 4 steered-window shapes × 2 heuristics} plus the probes —
    /// 394 organizations, 1182 design points across the three
    /// technologies.
    Full,
}

impl std::str::FromStr for GridScale {
    type Err = String;
    fn from_str(s: &str) -> Result<GridScale, String> {
        match s {
            "tiny" => Ok(GridScale::Tiny),
            "full" => Ok(GridScale::Full),
            other => Err(format!("unknown grid `{other}` (expected tiny or full)")),
        }
    }
}

/// One candidate organization: a simulator configuration plus the stable
/// label the CSVs key on.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Stable machine-readable label, e.g. `w8.c2.fifo4x8.dep`.
    pub label: String,
    /// The simulator half of the point.
    pub cfg: SimConfig,
}

/// Short stable label for a scheduler shape (`win64`, `swin8x4`,
/// `fifo4x8`).
fn scheduler_label(s: SchedulerKind) -> String {
    match s {
        SchedulerKind::CentralWindow { size } => format!("win{size}"),
        SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
            format!("swin{fifos_per_cluster}x{fifo_depth}")
        }
        SchedulerKind::Fifos { fifos_per_cluster, depth } => {
            format!("fifo{fifos_per_cluster}x{depth}")
        }
    }
}

/// Short stable label for a steering heuristic.
fn steering_label(s: SteeringPolicy) -> &'static str {
    match s {
        SteeringPolicy::Dependence => "dep",
        SteeringPolicy::Random { .. } => "rand",
        SteeringPolicy::RoundRobin => "rr",
        SteeringPolicy::LoadBalanced => "lb",
    }
}

/// Builds one design point from the baseline machine: the fetch and
/// retire bandwidths scale with the issue width (Table 3's 8-way machine
/// fetches 8 and retires 16), everything else keeps its Table 3 value.
fn point(
    issue_width: usize,
    clusters: usize,
    scheduler: SchedulerKind,
    steering: SteeringPolicy,
) -> DesignPoint {
    let cfg = SimConfig {
        issue_width,
        fetch_width: issue_width,
        retire_width: 2 * issue_width,
        clusters,
        scheduler,
        steering,
        ..machine::baseline_8way()
    };
    DesignPoint {
        label: format!(
            "w{issue_width}.c{clusters}.{}.{}",
            scheduler_label(scheduler),
            steering_label(steering)
        ),
        cfg,
    }
}

/// The two deliberate skip probes, present in every grid: one point only
/// the delay model refuses (2048-entry window, outside
/// [`ce_delay::error::domain::WINDOW_SIZE`]) and one point only the
/// simulator refuses (96 FIFOs × 2 clusters, over its 128-FIFO bitmap).
/// They pin the skip taxonomy: 3 `skip-delay` rows + 3 `skip-sim` rows
/// per run, one per technology.
fn skip_probes() -> [DesignPoint; 2] {
    [
        point(8, 1, SchedulerKind::CentralWindow { size: 2048 }, SteeringPolicy::Dependence),
        point(
            8,
            2,
            SchedulerKind::Fifos { fifos_per_cluster: 96, depth: 4 },
            SteeringPolicy::Dependence,
        ),
    ]
}

/// Enumerates the design points of a grid, probes included, in the fixed
/// order the CSVs use.
pub fn grid(scale: GridScale) -> Vec<DesignPoint> {
    let mut points = Vec::new();
    match scale {
        GridScale::Tiny => {
            // The five Figure 17 organizations in grid vocabulary, plus
            // the paper's unclustered FIFO machine.
            points.push(point(
                8,
                1,
                SchedulerKind::CentralWindow { size: 64 },
                SteeringPolicy::Dependence,
            ));
            points.push(point(
                8,
                1,
                SchedulerKind::Fifos { fifos_per_cluster: 8, depth: 8 },
                SteeringPolicy::Dependence,
            ));
            points.push(point(
                8,
                2,
                SchedulerKind::Fifos { fifos_per_cluster: 4, depth: 8 },
                SteeringPolicy::Dependence,
            ));
            points.push(point(
                8,
                2,
                SchedulerKind::SteeredWindows { fifos_per_cluster: 8, fifo_depth: 4 },
                SteeringPolicy::Dependence,
            ));
            points.push(point(
                8,
                2,
                SchedulerKind::CentralWindow { size: 64 },
                SteeringPolicy::Dependence,
            ));
            points.push(point(
                8,
                2,
                SchedulerKind::SteeredWindows { fifos_per_cluster: 1, fifo_depth: 32 },
                SteeringPolicy::Random { seed: 0xce11 },
            ));
        }
        GridScale::Full => {
            let random = SteeringPolicy::Random { seed: 0xce11 };
            for issue_width in [2usize, 4, 8, 16] {
                for clusters in [1usize, 2] {
                    // Central windows: steering is execution-driven (the
                    // window ignores the dispatch heuristic), so one
                    // steering entry suffices.
                    for size in [16usize, 32, 64, 128, 256] {
                        points.push(point(
                            issue_width,
                            clusters,
                            SchedulerKind::CentralWindow { size },
                            SteeringPolicy::Dependence,
                        ));
                    }
                    // Dependence-based FIFO machines × every heuristic.
                    for fifos_per_cluster in [2usize, 4, 8] {
                        for depth in [4usize, 8, 16] {
                            for steering in [
                                SteeringPolicy::Dependence,
                                SteeringPolicy::LoadBalanced,
                                SteeringPolicy::RoundRobin,
                                random,
                            ] {
                                points.push(point(
                                    issue_width,
                                    clusters,
                                    SchedulerKind::Fifos { fifos_per_cluster, depth },
                                    steering,
                                ));
                            }
                        }
                    }
                    // Steered 32-entry windows, from many shallow
                    // conceptual FIFOs down to one deep one (the §5.6.3
                    // random-steer shape).
                    for (fifos_per_cluster, fifo_depth) in [(8usize, 4usize), (4, 8), (2, 16), (1, 32)]
                    {
                        for steering in [SteeringPolicy::Dependence, random] {
                            points.push(point(
                                issue_width,
                                clusters,
                                SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth },
                                steering,
                            ));
                        }
                    }
                }
            }
        }
    }
    points.extend(skip_probes());
    points
}

/// Maps a simulator configuration onto the delay model's view of the same
/// machine: total scheduler capacity and whether wakeup is a CAM window
/// or a reservation table. Steered windows are flexible windows to the
/// delay model — their FIFO discipline exists only in the steering
/// heuristic, not in the issue hardware.
pub fn machine_params(cfg: &SimConfig) -> MachineParams {
    let (window_size, geometry) = match cfg.scheduler {
        SchedulerKind::CentralWindow { size } => (size, SchedulerGeometry::Window),
        SchedulerKind::SteeredWindows { fifos_per_cluster, fifo_depth } => {
            (fifos_per_cluster * fifo_depth * cfg.clusters, SchedulerGeometry::Window)
        }
        SchedulerKind::Fifos { fifos_per_cluster, depth } => (
            fifos_per_cluster * depth * cfg.clusters,
            SchedulerGeometry::Fifos { fifos_per_cluster },
        ),
    };
    MachineParams {
        issue_width: cfg.issue_width,
        clusters: cfg.clusters,
        window_size,
        geometry,
    }
}

/// Why a design point was not scored, and the evidence.
#[derive(Debug, Clone)]
pub enum Skip {
    /// The delay model refused the geometry for this technology.
    Delay(DelayError),
    /// The simulator refused the configuration (technology-independent).
    Sim(String),
}

impl Skip {
    /// Stable status column value (`skip-delay` / `skip-sim`).
    pub fn status(&self) -> &'static str {
        match self {
            Skip::Delay(_) => "skip-delay",
            Skip::Sim(_) => "skip-sim",
        }
    }

    /// Human-readable reason, comma-sanitized for CSV embedding.
    pub fn reason(&self) -> String {
        match self {
            Skip::Delay(e) => e.to_string().replace(',', ";"),
            Skip::Sim(msg) => msg.replace(',', ";"),
        }
    }
}

/// A fully-scored design point in one technology.
#[derive(Debug, Clone)]
pub struct Scored {
    /// The delay roll-up (rename / window logic / bypass, ps).
    pub clock: MachineClock,
    /// Harmonic-mean IPC over the seven kernels.
    pub ipc: f64,
    /// Total instructions simulated across the seven kernels (sampling
    /// provenance: what the IPC estimate covers).
    pub sim_insts: u64,
    /// BIPS = IPC × 1000 / clock_ps.
    pub bips: f64,
    /// Set during frontier marking: some other scored point in the same
    /// technology has clock ≤ and IPC ≥ with at least one strict.
    pub dominated: bool,
}

/// One row of `pareto.csv`: a design point in one technology, scored or
/// skipped.
#[derive(Debug, Clone)]
pub struct Row {
    /// Index into the grid (rows of one point share it).
    pub point: usize,
    /// The technology node.
    pub tech: FeatureSize,
    /// Scored, or skipped with evidence.
    pub outcome: Result<Scored, Skip>,
}

/// Everything one explorer invocation produced.
#[derive(Debug)]
pub struct ExploreReport {
    /// The enumerated grid, in row order.
    pub points: Vec<DesignPoint>,
    /// One row per point × technology, grid-major.
    pub rows: Vec<Row>,
    /// The sweep summary of the IPC half (`None` when every point was
    /// skipped and no simulation ran).
    pub summary: Option<SweepSummary>,
    /// Whether IPC came from sampled runs (`false` = exact `--full`).
    pub sampled: bool,
    /// The IPC sweep's job list (simulatable point × kernel, the grid the
    /// summary indexes) and per-cell options — what a caller needs to
    /// write a [`crate::manifest`] for the run.
    pub jobs: Vec<Job>,
    /// Per-cell run options the sweep used.
    pub run: RunOptions,
}

/// How to run the explorer.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Grid scale.
    pub scale: GridScale,
    /// Use exact full-detail simulation instead of sampled estimation.
    pub exact: bool,
    /// Per-benchmark instruction cap (callers pass [`crate::max_insts`]).
    pub max_insts: u64,
    /// Checkpoint the IPC sweep here (`None` disables journaling — unit
    /// tests).
    pub checkpoint: Option<CheckpointSpec>,
    /// Engine telemetry sink for the IPC sweep (disabled by default; see
    /// [`crate::telemetry`]).
    pub telemetry: Telemetry,
}

/// The indices of the grid points that become simulation jobs: valid for
/// the simulator and clockable by at least one technology.
fn simulated_indices(points: &[DesignPoint]) -> Vec<usize> {
    let techs = Technology::all();
    (0..points.len())
        .filter(|&i| {
            points[i].cfg.validate().is_ok() && {
                let mp = machine_params(&points[i].cfg);
                techs.iter().any(|t| MachineClock::try_compute(t, &mp).is_ok())
            }
        })
        .collect()
}

/// The exact sweep jobs [`explore`] will run for this grid scale, in
/// sweep order: every (simulatable point × kernel) cell. Exposed so the
/// `ce-explore` binary can build telemetry ETA weights and the manifest
/// cache key from the same job list the explorer uses.
pub fn explore_jobs(scale: GridScale) -> Vec<Job> {
    let points = grid(scale);
    let benches = Benchmark::all();
    simulated_indices(&points)
        .into_iter()
        .flat_map(|i| {
            let cfg = points[i].cfg;
            benches.iter().map(move |&b| (b, cfg))
        })
        .collect()
}

/// Runs the explorer: enumerate, price the delay side, sweep the IPC
/// side (through the fault-tolerant runner), score, and mark the
/// per-technology Pareto frontier.
///
/// # Errors
///
/// Only checkpoint-journal I/O errors. Simulation failures surface in
/// `report.summary.failures` (and the caller must then withhold the
/// CSVs, matching [`crate::cli::finish_sweep`] policy); grid corners the
/// models refuse are structured skips in `report.rows`, not errors.
pub fn explore(opts: &ExploreOptions) -> std::io::Result<ExploreReport> {
    let jobs = explore_jobs(opts.scale);
    let sampling = (!opts.exact).then(SamplingConfig::default);
    let run = RunOptions { sampled: sampling, ..RunOptions::default() };
    let summary = if jobs.is_empty() {
        None
    } else {
        Some(run_sweep_ft(
            &jobs,
            opts.max_insts,
            &SweepOptions {
                run,
                policy: RunPolicy::default(),
                checkpoint: opts.checkpoint.clone(),
                telemetry: opts.telemetry.clone(),
                ..SweepOptions::default()
            },
        )?)
    };
    Ok(score(opts.scale, opts.exact, summary))
}

/// Scores a (possibly absent) sweep summary into the full explorer
/// report: price the delay side, fold per-cell IPC into harmonic means,
/// and mark the Pareto frontier. Pure — everything except the sweep
/// itself — so the experiment service can produce byte-identical
/// `pareto.csv`/`tab02_explore.csv` from a summary it assembled out of
/// cached cells. `summary`, when present, must come from a sweep over
/// exactly [`explore_jobs`]`(scale)` with the [`RunOptions`] this
/// function derives from `exact` (that is: what [`explore`] runs).
pub fn score(scale: GridScale, exact: bool, summary: Option<SweepSummary>) -> ExploreReport {
    let points = grid(scale);
    let techs = Technology::all();

    // Delay side first: it is pure and cheap, and pricing it up front
    // means a point no technology can clock (or the simulator refuses)
    // never becomes a simulation job — the sweep proper starts only with
    // cells that can succeed.
    let delay: Vec<[Result<MachineClock, DelayError>; 3]> = points
        .iter()
        .map(|p| {
            let mp = machine_params(&p.cfg);
            [
                MachineClock::try_compute(&techs[0], &mp),
                MachineClock::try_compute(&techs[1], &mp),
                MachineClock::try_compute(&techs[2], &mp),
            ]
        })
        .collect();
    let sim_valid: Vec<Result<(), String>> =
        points.iter().map(|p| p.cfg.validate()).collect();

    // The IPC half's geometry: the sweep (run by [`explore`], or
    // assembled from the result store by the service) covers exactly
    // (simulatable point × kernel).
    let benches = Benchmark::all();
    let simulated = simulated_indices(&points);
    debug_assert_eq!(
        simulated,
        (0..points.len())
            .filter(|&i| sim_valid[i].is_ok() && delay[i].iter().any(Result::is_ok))
            .collect::<Vec<_>>(),
        "explore_jobs and explore must agree on the simulated set"
    );
    let jobs: Vec<Job> = simulated
        .iter()
        .flat_map(|&i| {
            let cfg = points[i].cfg;
            benches.iter().map(move |&b| (b, cfg))
        })
        .collect();
    let sampling = (!exact).then(SamplingConfig::default);
    let run = RunOptions { sampled: sampling, ..RunOptions::default() };

    // Score: harmonic-mean IPC per simulated point (the paper's Figure 13
    // aggregates the same way — slow kernels must not be averaged away).
    let n_bench = benches.len();
    let mut ipc_hm: Vec<Option<(f64, u64)>> = vec![None; points.len()];
    if let Some(summary) = &summary {
        for (slot, &i) in simulated.iter().enumerate() {
            let cells = &summary.cells[slot * n_bench..(slot + 1) * n_bench];
            if cells.iter().all(Option::is_some) {
                let mut inv_sum = 0.0;
                let mut insts = 0u64;
                for cell in cells.iter().flatten() {
                    inv_sum += cell.stats.cycles as f64 / cell.stats.committed as f64;
                    insts += cell.stats.committed;
                }
                ipc_hm[i] = Some((n_bench as f64 / inv_sum, insts));
            }
        }
    }

    let mut rows = Vec::with_capacity(points.len() * 3);
    for (i, _) in points.iter().enumerate() {
        for (t, tech) in techs.iter().enumerate() {
            let outcome = match (&delay[i][t], &sim_valid[i], &ipc_hm[i]) {
                (Err(e), _, _) => Err(Skip::Delay(e.clone())),
                (Ok(_), Err(msg), _) => Err(Skip::Sim(msg.clone())),
                (Ok(clock), Ok(()), Some((ipc, insts))) => {
                    let clock_ps = clock.clock_ps();
                    Ok(Scored {
                        clock: *clock,
                        ipc: *ipc,
                        sim_insts: *insts,
                        bips: ipc * 1000.0 / clock_ps,
                        dominated: false,
                    })
                }
                // Valid on both sides but its sweep cells failed: surface
                // it as a sim skip so the row is never silently absent
                // (the caller still sees the failure in the summary and
                // withholds the CSVs).
                (Ok(_), Ok(()), None) => {
                    Err(Skip::Sim("simulation cells failed; see sweep failures".into()))
                }
            };
            rows.push(Row { point: i, tech: tech.feature(), outcome });
        }
    }
    mark_frontier(&mut rows);

    ExploreReport { points, rows, summary, sampled: !exact, jobs, run }
}

/// Marks `dominated` on every scored row: within one technology, a point
/// is dominated when some other scored point has clock ≤ and IPC ≥ with
/// at least one strict. The surviving rows are the Pareto frontier of
/// the clock/IPC trade — exactly the curve Section 6 says architects
/// must optimize along.
fn mark_frontier(rows: &mut [Row]) {
    for tech in FeatureSize::all() {
        let scored: Vec<(usize, f64, f64)> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.tech == tech)
            .filter_map(|(k, r)| {
                r.outcome.as_ref().ok().map(|s| (k, s.clock.clock_ps(), s.ipc))
            })
            .collect();
        for &(k, clock, ipc) in &scored {
            let dominated = scored.iter().any(|&(other, oc, oi)| {
                other != k && oc <= clock && oi >= ipc && (oc < clock || oi > ipc)
            });
            if let Ok(s) = &mut rows[k].outcome {
                s.dominated = dominated;
            }
        }
    }
}

/// Builds `pareto.csv`: every design point × technology with full
/// provenance — geometry, per-structure delays, IPC, BIPS, frontier
/// membership, and the skip taxonomy for refused corners.
pub fn pareto_csv(report: &ExploreReport) -> String {
    let mut csv = String::from(
        "label,tech_um,issue_width,clusters,scheduler,steering,window_size,mode,\
         status,reason,rename_ps,window_logic_ps,bypass_ps,clock_ps,critical,\
         sim_insts,ipc_hmean,bips,frontier\n",
    );
    let mode = if report.sampled { "sampled" } else { "exact" };
    for row in &report.rows {
        let p = &report.points[row.point];
        let mp = machine_params(&p.cfg);
        let head = format!(
            "{},{},{},{},{},{},{},{mode}",
            p.label,
            row.tech.micrometers(),
            p.cfg.issue_width,
            p.cfg.clusters,
            scheduler_label(p.cfg.scheduler),
            steering_label(p.cfg.steering),
            mp.window_size,
        );
        match &row.outcome {
            Ok(s) => {
                let _ = writeln!(
                    csv,
                    "{head},ok,,{:.1},{:.1},{:.1},{:.1},{},{},{:.4},{:.4},{}",
                    s.clock.rename_ps,
                    s.clock.window_logic_ps,
                    s.clock.bypass_ps,
                    s.clock.clock_ps(),
                    s.clock.critical(),
                    s.sim_insts,
                    s.ipc,
                    s.bips,
                    u8::from(!s.dominated),
                );
            }
            Err(skip) => {
                let _ = writeln!(csv, "{head},{},{},,,,,,,,,", skip.status(), skip.reason());
            }
        }
    }
    csv
}

/// The five Figure 17 organization labels in grid vocabulary, paired
/// with the paper's names — the anchor rows of `tab02_explore.csv`.
pub fn paper_organizations() -> [(&'static str, &'static str); 5] {
    [
        ("w8.c1.win64.dep", "1-cluster.1window"),
        ("w8.c2.fifo4x8.dep", "2-cluster.FIFOs.dispatch_steer"),
        ("w8.c2.swin8x4.dep", "2-cluster.windows.dispatch_steer"),
        ("w8.c2.win64.dep", "2-cluster.1window.exec_steer"),
        ("w8.c2.swin1x32.rand", "2-cluster.windows.random_steer"),
    ]
}

/// Builds `tab02_explore.csv`: a Table 2-style per-technology roll-up
/// extending the paper's §5.6 organizations with the explorer's verdict —
/// each paper organization's delays, IPC, and BIPS, plus the best-BIPS
/// point the grid found in that technology. When a paper organization is
/// not in the grid (tiny runs always carry them; a future pruned grid
/// might not) it is simply absent rather than fabricated.
pub fn tab02_explore_csv(report: &ExploreReport) -> String {
    let mut csv = String::from(
        "tech_um,role,paper_name,label,rename_ps,window_logic_ps,bypass_ps,clock_ps,\
         ipc_hmean,bips,frontier\n",
    );
    let find = |label: &str| report.points.iter().position(|p| p.label == label);
    for tech in FeatureSize::all() {
        let row_of = |idx: usize| {
            report.rows.iter().find(|r| r.point == idx && r.tech == tech)
        };
        let mut emit = |role: &str, name: &str, idx: usize| {
            if let Some(row) = row_of(idx) {
                if let Ok(s) = &row.outcome {
                    let _ = writeln!(
                        csv,
                        "{},{role},{name},{},{:.1},{:.1},{:.1},{:.1},{:.4},{:.4},{}",
                        tech.micrometers(),
                        report.points[idx].label,
                        s.clock.rename_ps,
                        s.clock.window_logic_ps,
                        s.clock.bypass_ps,
                        s.clock.clock_ps(),
                        s.ipc,
                        s.bips,
                        u8::from(!s.dominated),
                    );
                }
            }
        };
        for (label, paper_name) in paper_organizations() {
            if let Some(idx) = find(label) {
                emit("paper-5.6", paper_name, idx);
            }
        }
        // The explorer's winner: highest BIPS in this technology (first
        // in grid order on an exact tie, so the table is deterministic).
        let mut best: Option<(usize, f64)> = None;
        for row in report.rows.iter().filter(|r| r.tech == tech) {
            if let Ok(s) = &row.outcome {
                if best.is_none_or(|(_, b)| s.bips > b) {
                    best = Some((row.point, s.bips));
                }
            }
        }
        if let Some((idx, _)) = best {
            emit("explored-best", "-", idx);
        }
    }
    csv
}

/// Counts the rows of each status, for logs and smoke assertions:
/// `(ok, skip_delay, skip_sim)`.
pub fn row_census(report: &ExploreReport) -> (usize, usize, usize) {
    let mut ok = 0;
    let mut skip_delay = 0;
    let mut skip_sim = 0;
    for row in &report.rows {
        match &row.outcome {
            Ok(_) => ok += 1,
            Err(Skip::Delay(_)) => skip_delay += 1,
            Err(Skip::Sim(_)) => skip_sim += 1,
        }
    }
    (ok, skip_delay, skip_sim)
}

/// The default output path of `ce-explore` (`tab02_explore.csv` lands
/// next to it).
pub const DEFAULT_OUT: &str = "results/pareto.csv";

/// The companion winner-table path, next to `out`.
pub fn tab02_path(out: &std::path::Path) -> PathBuf {
    out.with_file_name("tab02_explore.csv")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_the_documented_shape() {
        let tiny = grid(GridScale::Tiny);
        assert_eq!(tiny.len(), 8, "6 organizations + 2 probes");
        let full = grid(GridScale::Full);
        // 4 widths × 2 cluster counts × (5 windows + 3×3×4 FIFO shapes +
        // 4×2 steered windows) + 2 probes.
        assert_eq!(full.len(), 4 * 2 * (5 + 36 + 8) + 2);
        for g in [&tiny, &full] {
            let mut labels: Vec<&str> = g.iter().map(|p| p.label.as_str()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), g.len(), "duplicate labels in grid");
        }
        // Every §5.6 organization is present in both grids.
        for (label, _) in paper_organizations() {
            for g in [&tiny, &full] {
                assert!(g.iter().any(|p| p.label == label), "{label} missing");
            }
        }
    }

    #[test]
    fn non_probe_grid_points_are_simulatable_and_clockable() {
        // Structured skips must come only from the deliberate probes:
        // every other full-grid point validates on the sim side and
        // prices on the delay side in every technology.
        let probes: Vec<String> = skip_probes().iter().map(|p| p.label.clone()).collect();
        for p in grid(GridScale::Full) {
            if probes.contains(&p.label) {
                continue;
            }
            assert!(p.cfg.validate().is_ok(), "{}: {:?}", p.label, p.cfg.validate());
            let mp = machine_params(&p.cfg);
            for tech in Technology::all() {
                assert!(
                    MachineClock::try_compute(&tech, &mp).is_ok(),
                    "{} in {tech}: {:?}",
                    p.label,
                    MachineClock::try_compute(&tech, &mp)
                );
            }
        }
    }

    #[test]
    fn machine_params_maps_every_scheduler_shape() {
        let p = point(8, 2, SchedulerKind::CentralWindow { size: 64 }, SteeringPolicy::Dependence);
        let mp = machine_params(&p.cfg);
        assert_eq!(mp.window_size, 64);
        assert_eq!(mp.geometry, SchedulerGeometry::Window);

        let p = point(
            8,
            2,
            SchedulerKind::SteeredWindows { fifos_per_cluster: 8, fifo_depth: 4 },
            SteeringPolicy::Dependence,
        );
        let mp = machine_params(&p.cfg);
        assert_eq!(mp.window_size, 64, "8×4 per cluster × 2 clusters");
        assert_eq!(mp.geometry, SchedulerGeometry::Window, "steered windows are CAM windows");

        let p = point(
            8,
            2,
            SchedulerKind::Fifos { fifos_per_cluster: 4, depth: 8 },
            SteeringPolicy::Dependence,
        );
        let mp = machine_params(&p.cfg);
        assert_eq!(mp.window_size, 64);
        assert_eq!(mp.geometry, SchedulerGeometry::Fifos { fifos_per_cluster: 4 });
        assert_eq!(mp.issue_width, 8);
        assert_eq!(mp.clusters, 2);
    }

    /// End-to-end over the tiny grid at a small cap: every row accounted
    /// for, exactly the probes skip, the frontier is genuinely
    /// non-dominated, and the CSVs are well-formed.
    #[test]
    fn tiny_explore_scores_skips_and_marks_a_consistent_frontier() {
        let report = explore(&ExploreOptions {
            scale: GridScale::Tiny,
            exact: false,
            max_insts: 3_000,
            checkpoint: None,
            telemetry: Telemetry::default(),
        })
        .expect("no journal, no I/O");
        assert_eq!(report.rows.len(), 8 * 3, "every point × technology has a row");
        let (ok, skip_delay, skip_sim) = row_census(&report);
        assert_eq!((ok, skip_delay, skip_sim), (18, 3, 3));
        assert!(report.summary.as_ref().is_some_and(SweepSummary::all_ok));

        // Frontier sanity: no frontier row is dominated by any other row
        // of its technology, and every dominated row has a dominator on
        // the frontier.
        for tech in FeatureSize::all() {
            let scored: Vec<&Scored> = report
                .rows
                .iter()
                .filter(|r| r.tech == tech)
                .filter_map(|r| r.outcome.as_ref().ok())
                .collect();
            assert!(!scored.is_empty());
            assert!(scored.iter().any(|s| !s.dominated), "an empty frontier is impossible");
            for s in &scored {
                let dominators: Vec<&&Scored> = scored
                    .iter()
                    .filter(|o| {
                        o.clock.clock_ps() <= s.clock.clock_ps()
                            && o.ipc >= s.ipc
                            && (o.clock.clock_ps() < s.clock.clock_ps() || o.ipc > s.ipc)
                    })
                    .collect();
                assert_eq!(s.dominated, !dominators.is_empty());
                if s.dominated {
                    assert!(
                        dominators.iter().any(|d| !d.dominated),
                        "a dominated point must be dominated by a frontier point"
                    );
                }
            }
        }

        // Every §5.6 organization scored, and the frontier contains or
        // dominates each of them (the acceptance criterion).
        for (label, _) in paper_organizations() {
            let idx = report.points.iter().position(|p| p.label == label).unwrap();
            for tech in FeatureSize::all() {
                let row = report
                    .rows
                    .iter()
                    .find(|r| r.point == idx && r.tech == tech)
                    .unwrap();
                let s = row.outcome.as_ref().unwrap_or_else(|e| {
                    panic!("{label} in {tech:?} skipped: {}", e.reason())
                });
                let covered = report
                    .rows
                    .iter()
                    .filter(|r| r.tech == tech)
                    .filter_map(|r| r.outcome.as_ref().ok())
                    .any(|o| {
                        !o.dominated && o.clock.clock_ps() <= s.clock.clock_ps() && o.ipc >= s.ipc
                    });
                assert!(covered, "{label} in {tech:?} neither on nor under the frontier");
            }
        }

        // CSV shape: rectangular, all rows present, probes visible.
        let csv = pareto_csv(&report);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 1 + 24);
        let cols = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert_eq!(csv.matches(",skip-delay,").count(), 3);
        assert_eq!(csv.matches(",skip-sim,").count(), 3);
        assert!(!csv.contains("[min"), "DelayError commas must be sanitized");

        let tab = tab02_explore_csv(&report);
        let tab_lines: Vec<&str> = tab.trim_end().lines().collect();
        // 5 paper organizations + 1 winner, per technology.
        assert_eq!(tab_lines.len(), 1 + 3 * 6);
        for line in &tab_lines {
            assert_eq!(line.split(',').count(), tab_lines[0].split(',').count());
        }
        assert_eq!(tab.matches("explored-best").count(), 3);
    }

    /// `--full` (exact) and sampled runs agree on shape and on which
    /// points score; at a cap under one detailed region they agree on
    /// the IPC numbers too (the short-trace degeneration makes sampling
    /// exact).
    #[test]
    fn exact_mode_matches_sampled_mode_at_short_caps() {
        let run = |exact| {
            explore(&ExploreOptions {
                scale: GridScale::Tiny,
                exact,
                max_insts: 800,
                checkpoint: None,
                telemetry: Telemetry::default(),
            })
            .expect("no journal, no I/O")
        };
        let sampled = run(false);
        let exact = run(true);
        assert!(sampled.sampled && !exact.sampled);
        for (s, e) in sampled.rows.iter().zip(&exact.rows) {
            match (&s.outcome, &e.outcome) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.ipc, b.ipc, "point {}", s.point);
                    assert_eq!(a.bips, b.bips);
                    assert_eq!(a.dominated, b.dominated);
                }
                (Err(a), Err(b)) => assert_eq!(a.status(), b.status()),
                other => panic!("outcome shape diverged: {other:?}"),
            }
        }
    }
}
