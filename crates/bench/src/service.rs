//! `cesimd` — the crash-safe experiment service.
//!
//! A persistent daemon that accepts sweep submissions over a Unix domain
//! socket (newline-delimited JSON, protocol in [`crate::api`]), executes
//! them through the same fault-tolerant [`run_sweep_ft`] substrate the
//! CLI binaries use, and serves repeated cells from the on-disk
//! content-addressed [`ResultStore`]. The state directory layout:
//!
//! ```text
//! <state>/jobs.jsonl                      write-ahead job journal (WAL)
//! <state>/store/<cell-key>.json           content-addressed cell results
//! <state>/ckpt/job-<id>.ckpt.jsonl        per-job cell checkpoint journal
//! <state>/telemetry/job-<id>.exec-<k>.jsonl  one telemetry journal per
//!                                         *execution* (k bumps on restart)
//! <state>/artifacts/job-<id>/<name>       rendered CSVs + manifest.json
//! ```
//!
//! ## Crash-recovery state machine
//!
//! Every job passes through exactly three durable states:
//!
//! 1. **submitted** — appended (and fsynced) to the WAL *before* the
//!    client sees `accepted`. A `kill -9` after this point cannot lose
//!    the job.
//! 2. **running** — cells settle into two idempotent stores as they
//!    finish: the per-job checkpoint journal (append + flush, torn final
//!    line tolerated) and the content-addressed result store (atomic
//!    tempfile + rename per cell). A `kill -9` mid-cell loses at most the
//!    in-flight cells' partial work.
//! 3. **done** — artifacts written, `done` appended to the WAL.
//!
//! On startup the WAL is compacted: `submitted`-without-`done` jobs are
//! re-enqueued headless (no client connection; results land in the store
//! and artifact directory as normal), everything else is dropped. A
//! re-enqueued job re-runs **nothing** that already settled: completed
//! cells come back from its checkpoint journal and from the result
//! store, so the replayed execution simulates only the cells that were
//! actually in flight when the daemon died — and its CSVs are
//! byte-identical because cell results are deterministic and u64
//! counters round-trip losslessly through both stores.
//!
//! ## Admission control and degradation
//!
//! The queue is bounded ([`ServiceConfig::max_pending`]); beyond it
//! clients get a structured `error[overloaded]` instead of latency.
//! Between [`ServiceConfig::degrade_pending`] and the bound, a job that
//! opted in (`allow_degraded`) is downgraded to sampled simulation — the
//! explicit pressure valve: an answer now, flagged `degraded`, never a
//! silently different exact answer. Per-job deadlines, retry with
//! exponential backoff, and quarantine are inherited from
//! [`run_sweep_ft`]'s [`RunPolicy`].
//!
//! ## Shutdown
//!
//! SIGTERM (or the `shutdown` op) stops *admission* immediately, then
//! drains every already-accepted job before exiting, so a clean shutdown
//! leaves no `submitted` WAL entries behind. `kill -9` is the tested
//! path, not an error: the WAL replay above covers it.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use ce_workloads::trace_cache_stats;

use crate::api::{CellSource, JobEvent, JobOutcome, JobSpec};
use crate::checkpoint::{write_atomic, CheckpointSpec};
use crate::json::Json;
use crate::manifest::{self, cell_key_with};
use crate::runner::{
    cell_weights, run_sweep_ft, CellHook, RunPolicy, SweepOptions,
};
use crate::store::{Lookup, ResultStore};
use crate::telemetry::{Event, Telemetry, TelemetryConfig, TelemetrySink as _};

/// Daemon configuration (one value per `cesimd` flag).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The Unix socket path to listen on.
    pub socket: PathBuf,
    /// The state directory (WAL, store, journals, artifacts).
    pub state_dir: PathBuf,
    /// Hard admission bound: queued + running jobs ≥ this → reject.
    pub max_pending: usize,
    /// Soft pressure mark: at or beyond it, jobs that allow it degrade
    /// to sampled mode.
    pub degrade_pending: usize,
    /// Suppress informational stderr lines.
    pub quiet: bool,
}

impl ServiceConfig {
    /// A config with the default admission bounds (8 hard, 4 soft).
    pub fn new(socket: PathBuf, state_dir: PathBuf) -> ServiceConfig {
        ServiceConfig { socket, state_dir, max_pending: 8, degrade_pending: 4, quiet: false }
    }
}

/// An admission decision (see [`admission`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run as requested.
    Accept,
    /// Run now, but in sampled mode (the job allowed it and the queue is
    /// past the soft mark).
    Degrade,
    /// Queue full: reject with `error[overloaded]`.
    Reject,
}

/// The pure admission policy: `pending` is queued + running jobs at
/// decision time. Rejection is unconditional at the hard bound;
/// degradation needs the job's opt-in.
pub fn admission(
    pending: usize,
    max_pending: usize,
    degrade_pending: usize,
    allow_degraded: bool,
) -> Admission {
    if pending >= max_pending {
        Admission::Reject
    } else if pending >= degrade_pending && allow_degraded {
        Admission::Degrade
    } else {
        Admission::Accept
    }
}

/// One WAL entry still owed an execution.
#[derive(Debug, Clone)]
pub struct WalJob {
    /// Daemon-assigned job id (stable across restarts).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Whether admission degraded it (preserved so a replay runs the
    /// *same* computation, hence reproduces the same bytes).
    pub degraded: bool,
}

fn wal_header(next_id: u64) -> String {
    format!("{{\"ce_jobs_wal\": 1, \"next\": {next_id}}}")
}

/// Parses WAL text into the jobs still pending (submitted without done)
/// plus the next free job id.
///
/// Ids must stay monotonic across daemon generations — compaction drops
/// `done` records, so without a high-water mark a restarted daemon would
/// reuse ids (and their artifact/telemetry paths). The mark lives in the
/// header (`next`) and is raised past any id seen in the records.
///
/// A torn **final** line — the signature of `kill -9` mid-append — is
/// dropped silently; the fsync discipline means it can only be the last
/// record. Corruption anywhere else is a real integrity failure and
/// discards the whole journal (better to forget jobs loudly than to
/// replay a mangled one).
///
/// # Errors
///
/// A message describing the corruption (caller warns and starts fresh).
pub(crate) fn parse_wal(text: &str) -> Result<(Vec<WalJob>, u64), String> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Ok((Vec::new(), 1));
    }
    let last = lines.len() - 1;
    let header = Json::parse(lines[0])
        .ok()
        .filter(|doc| doc.at("ce_jobs_wal").and_then(Json::as_u64) == Some(1));
    let Some(header) = header else {
        if last == 0 {
            return Ok((Vec::new(), 1)); // torn header: an empty journal
        }
        return Err("bad WAL header".into());
    };
    let mut next_id = header.at("next").and_then(Json::as_u64).unwrap_or(1).max(1);
    let mut pending: Vec<WalJob> = Vec::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        let parsed = Json::parse(line).ok().and_then(|doc| {
            let id = doc.at("job").and_then(Json::as_u64)?;
            match doc.at("state").and_then(Json::as_str)? {
                "submitted" => {
                    let spec = JobSpec::from_json(doc.at("spec")?).ok()?;
                    let degraded =
                        doc.at("degraded").and_then(Json::as_bool).unwrap_or(false);
                    Some((id, Some((spec, degraded))))
                }
                "done" => Some((id, None)),
                _ => None,
            }
        });
        match parsed {
            Some((id, Some((spec, degraded)))) => {
                next_id = next_id.max(id + 1);
                pending.push(WalJob { id, spec, degraded });
            }
            Some((id, None)) => {
                next_id = next_id.max(id + 1);
                pending.retain(|j| j.id != id);
            }
            None if i == last => break, // torn tail from kill -9
            None => return Err(format!("corrupt WAL record on line {}", i + 1)),
        }
    }
    Ok((pending, next_id))
}

/// The write-ahead job journal.
struct Wal {
    file: std::fs::File,
}

impl Wal {
    /// Opens the WAL, recovering pending jobs and the id high-water mark,
    /// and compacting the file (header + one `submitted` record per
    /// survivor) so replayed history never accretes.
    fn open(path: &Path) -> std::io::Result<(Wal, Vec<WalJob>, u64)> {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let (pending, next_id) = parse_wal(&text).unwrap_or_else(|e| {
            eprintln!("cesimd: warning: discarding job journal: {e}");
            (Vec::new(), 1)
        });
        let mut compact = wal_header(next_id);
        compact.push('\n');
        for job in &pending {
            compact.push_str(&submitted_record(job.id, &job.spec, job.degraded));
            compact.push('\n');
        }
        write_atomic(path, &compact)?;
        let file = crate::iofault::open_append(path)?;
        Ok((Wal { file }, pending, next_id))
    }

    fn append(&mut self, record: &str) -> std::io::Result<()> {
        // One complete line per write through the fault seam, so an
        // injected (or real) torn write leaves the recoverable
        // torn-final-line shape, never a torn middle.
        let line = format!("{record}\n");
        crate::iofault::write_all(&mut self.file, line.as_bytes())?;
        // The WAL is the durability boundary of the `submitted` state:
        // fsync, not just flush, so `accepted` is never sent for a job a
        // power cut could forget. One fsync per job, not per cell.
        crate::iofault::sync(&self.file)
    }
}

fn submitted_record(id: u64, spec: &JobSpec, degraded: bool) -> String {
    format!(
        "{{\"job\": {id}, \"state\": \"submitted\", \"degraded\": {degraded}, \
         \"spec\": {}}}",
        spec.to_json()
    )
}

fn done_record(id: u64) -> String {
    format!("{{\"job\": {id}, \"state\": \"done\"}}")
}

/// Set by the SIGTERM handler and the `shutdown` op; polled by the
/// accept loop.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

extern "C" {
    // Typed handler pointer (not libc's usize soup): all the handler does
    // is store to an atomic, which is async-signal-safe.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGTERM: i32 = 15;

fn install_sigterm() {
    unsafe {
        signal(SIGTERM, on_term);
    }
}

/// One admitted job: the spec plus (for live submissions) the event
/// channel back to the client. WAL-recovered jobs run headless.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    degraded: bool,
    events: Option<mpsc::Sender<JobEvent>>,
}

struct QueueState {
    queue: VecDeque<QueuedJob>,
    running: usize,
    next_id: u64,
    stop: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work: Condvar,
    config: ServiceConfig,
    store: Arc<ResultStore>,
    wal: Mutex<Wal>,
}

/// Runs the daemon until SIGTERM / `shutdown` (drains the queue first).
///
/// # Errors
///
/// Socket/state-directory setup failures only; everything after startup
/// is reported per connection or per job.
pub fn run(config: ServiceConfig) -> Result<(), String> {
    // Audit-and-repair before any loader touches the state dir: orphaned
    // tempfiles are swept and corrupt files quarantined (bytes
    // preserved under <state>/quarantine/), so every file the WAL,
    // store, and checkpoint loaders then see is one their recovery
    // rules actually cover.
    let audit = crate::fsck::fsck(&config.state_dir, true)
        .map_err(|e| format!("startup fsck: {e}"))?;
    if !config.quiet && (!audit.clean() || audit.count(crate::fsck::FileClass::OrphanTemp) > 0)
    {
        eprintln!("{audit}");
    }
    for sub in ["ckpt", "telemetry", "artifacts"] {
        std::fs::create_dir_all(config.state_dir.join(sub))
            .map_err(|e| format!("creating state dir: {e}"))?;
    }
    let store = Arc::new(
        ResultStore::open(&config.state_dir.join("store"))
            .map_err(|e| format!("opening result store: {e}"))?,
    );
    let (wal, recovered, next_id) = Wal::open(&config.state_dir.join("jobs.jsonl"))
        .map_err(|e| format!("opening job journal: {e}"))?;
    if !recovered.is_empty() && !config.quiet {
        eprintln!("cesimd: resuming {} interrupted job(s)", recovered.len());
    }

    // The socket path must be fresh; a stale file from a kill -9'd
    // predecessor would make bind fail.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| format!("binding {}: {e}", config.socket.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("socket: {e}"))?;
    install_sigterm();
    STOP.store(false, Ordering::SeqCst);

    let shared = Arc::new(Shared {
        state: Mutex::new(QueueState {
            queue: recovered
                .into_iter()
                .map(|j| QueuedJob { id: j.id, spec: j.spec, degraded: j.degraded, events: None })
                .collect(),
            running: 0,
            next_id,
            stop: false,
        }),
        work: Condvar::new(),
        config: config.clone(),
        store,
        wal: Mutex::new(wal),
    });

    let executor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("ce-executor".into())
            .spawn(move || executor_loop(&shared))
            .map_err(|e| format!("spawning executor: {e}"))?
    };

    if !config.quiet {
        eprintln!("cesimd: listening on {}", config.socket.display());
    }
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if STOP.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("ce-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
                connections.retain(|h| !h.is_finished());
            }
            Err(e) => {
                eprintln!("cesimd: accept: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }

    // Drain: no new admissions (STOP gates them), run everything already
    // accepted, then leave. Connection threads end once their jobs do.
    {
        let mut state = shared.state.lock().expect("service state");
        state.stop = true;
        shared.work.notify_all();
        if !config.quiet {
            eprintln!(
                "cesimd: draining {} job(s) before exit",
                state.queue.len() + state.running
            );
        }
    }
    let _ = executor.join();
    for handle in connections {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

fn executor_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("service state");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    break job;
                }
                if state.stop {
                    return;
                }
                state = shared.work.wait(state).expect("service state");
            }
        };
        process_job(shared, job);
        let mut state = shared.state.lock().expect("service state");
        state.running -= 1;
    }
}

/// Longest request line the daemon buffers. A hostile (or broken) client
/// streaming an endless line must cost bounded memory: past this the
/// line is discarded to its newline and answered with `error[proto]`.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// One read attempt's outcome (see [`read_request`]).
enum Request {
    /// A complete line, within the cap.
    Line(String),
    /// The line exceeded [`MAX_REQUEST_LINE`]; it was discarded up to
    /// and including its newline (or EOF), and the connection is still
    /// usable.
    Oversized,
    /// The client went away (EOF, error, or daemon shutdown).
    Gone,
}

/// Reads one newline-terminated request line, tolerating the socket's
/// read timeout (so shutdown is never blocked on a silent client) and
/// capping line length (so a hostile client cannot balloon memory).
/// `spill` carries bytes read past a previous line's newline, so a
/// client that pipelines several requests in one burst loses none of
/// them — even when one of the burst's lines was oversized.
fn read_request(stream: &mut UnixStream, spill: &mut VecDeque<u8>) -> Request {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    let mut chunk = [0u8; 1024];
    loop {
        while let Some(b) = spill.pop_front() {
            if b == b'\n' {
                return if oversized {
                    Request::Oversized
                } else {
                    Request::Line(String::from_utf8_lossy(&line).into_owned())
                };
            }
            if oversized {
                continue; // keep draining the hostile line
            }
            line.push(b);
            if line.len() > MAX_REQUEST_LINE {
                oversized = true;
                line.clear();
            }
        }
        if STOP.load(Ordering::SeqCst) && line.is_empty() && !oversized {
            return Request::Gone;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Request::Gone,
            Ok(n) => spill.extend(chunk[..n].iter().copied()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return Request::Gone,
        }
    }
}

fn send_line(stream: &mut UnixStream, line: &str) {
    // A vanished client must not take the daemon (or the job) with it.
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

fn send_event(stream: &mut UnixStream, ev: &JobEvent) {
    send_line(stream, &ev.to_json());
}

/// Serves one client connection until it hangs up. Protocol faults —
/// unparseable JSON, unknown ops, oversized lines — are answered with a
/// structured `error[proto]` event and the connection (and daemon) stay
/// alive: a hostile or buggy client must never cost more than its own
/// request.
fn handle_connection(mut stream: UnixStream, shared: &Shared) {
    let proto_error = |stream: &mut UnixStream, message: String| {
        send_event(stream, &JobEvent::Error { kind: "proto".into(), message });
    };
    let mut spill = VecDeque::new();
    loop {
        let line = match read_request(&mut stream, &mut spill) {
            Request::Gone => return,
            Request::Oversized => {
                proto_error(
                    &mut stream,
                    format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                );
                continue;
            }
            Request::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue; // blank lines are harmless keep-alive noise
        }
        let Ok(doc) = Json::parse(&line) else {
            proto_error(&mut stream, "unparseable request (not a JSON object)".into());
            continue;
        };
        match doc.at("op").and_then(Json::as_str) {
            Some("ping") => send_line(&mut stream, "{\"ev\": \"pong\"}"),
            Some("status") => {
                let (pending, running) = {
                    let state = shared.state.lock().expect("service state");
                    (state.queue.len(), state.running)
                };
                send_line(
                    &mut stream,
                    &format!(
                        "{{\"ev\": \"status\", \"queued\": {pending}, \"running\": {running}, \
                         \"store_entries\": {}}}",
                        shared.store.len()
                    ),
                );
            }
            Some("shutdown") => {
                STOP.store(true, Ordering::SeqCst);
                send_line(&mut stream, "{\"ev\": \"stopping\"}");
            }
            Some("submit") => handle_submit(&mut stream, shared, &doc),
            other => proto_error(&mut stream, format!("unknown op {other:?}")),
        }
    }
}

fn handle_submit(stream: &mut UnixStream, shared: &Shared, doc: &Json) {
    let fail = |stream: &mut UnixStream, kind: &str, message: String| {
        send_event(stream, &JobEvent::Error { kind: kind.into(), message });
    };
    let Some(spec_doc) = doc.at("spec") else {
        return fail(stream, "proto", "submit without `spec`".into());
    };
    let spec = match JobSpec::from_json(spec_doc) {
        Ok(spec) => spec,
        Err(e) => return fail(stream, "config-invalid", e),
    };
    // Resolve up front: reject unknown machines/benches before the job
    // occupies a queue slot, and learn the cell count for `accepted`.
    let undegraded = match spec.resolve(false) {
        Ok(plan) => plan,
        Err(e) => return fail(stream, "config-invalid", e),
    };

    // Admission + WAL + enqueue happen under one short critical section;
    // event streaming below runs lock-free so the executor can work.
    let (id, degraded, rx) = {
        let mut state = shared.state.lock().expect("service state");
        if state.stop || STOP.load(Ordering::SeqCst) {
            return fail(stream, "overloaded", "daemon is draining for shutdown".into());
        }
        let pending = state.queue.len() + state.running;
        let decision = admission(
            pending,
            shared.config.max_pending,
            shared.config.degrade_pending,
            spec.allow_degraded,
        );
        // Degrading a job that is already sampled changes nothing; keep
        // its flag honest.
        let degraded = decision == Admission::Degrade && undegraded.run.sampled.is_none();
        if decision == Admission::Reject {
            return fail(
                stream,
                "overloaded",
                format!("queue full ({pending} pending, bound {})", shared.config.max_pending),
            );
        }
        let id = state.next_id;
        // WAL first: `accepted` must never outrun durability.
        if let Err(e) = shared
            .wal
            .lock()
            .expect("wal")
            .append(&submitted_record(id, &spec, degraded))
        {
            return fail(stream, "io", format!("job journal: {e}"));
        }
        state.next_id += 1;
        let (tx, rx) = mpsc::channel();
        state.queue.push_back(QueuedJob {
            id,
            spec: spec.clone(),
            degraded,
            events: Some(tx),
        });
        shared.work.notify_one();
        (id, degraded, rx)
    };
    send_event(
        stream,
        &JobEvent::Accepted { job: id, cells: undegraded.jobs.len(), degraded },
    );
    // Stream the job's events until the executor drops the sender.
    for ev in rx {
        send_event(stream, &ev);
    }
}

/// Executes one admitted job end to end. Never panics the daemon: all
/// failures become structured events and the WAL keeps its invariants.
fn process_job(shared: &Shared, job: QueuedJob) {
    let sender = job.events.clone();
    let send = |ev: JobEvent| {
        if let Some(tx) = &sender {
            let _ = tx.send(ev);
        }
    };
    let plan = match job.spec.resolve(job.degraded) {
        Ok(plan) => plan,
        Err(e) => {
            send(JobEvent::Error { kind: "config-invalid".into(), message: e });
            let _ = shared.wal.lock().expect("wal").append(&done_record(job.id));
            return;
        }
    };
    let max_insts = job.spec.max_insts.unwrap_or_else(crate::max_insts);
    let code = manifest::code_version();
    let state_dir = &shared.config.state_dir;

    // One telemetry journal per *execution*: a restarted job gets
    // exec-1, exec-2, … so a test (or operator) can prove which cells
    // each attempt actually simulated.
    let tel_dir = state_dir.join("telemetry");
    let exec = (0u32..)
        .find(|k| !tel_dir.join(format!("job-{}.exec-{k}.jsonl", job.id)).exists())
        .unwrap_or(0);
    let telemetry = Telemetry::create(
        &TelemetryConfig {
            name: format!("job-{}:{}", job.id, job.spec.display_name()),
            journal: Some(tel_dir.join(format!("job-{}.exec-{exec}.jsonl", job.id))),
            chrome_out: None,
            progress: false,
        },
        cell_weights(&plan.jobs, max_insts),
        max_insts,
    )
    .unwrap_or_else(|e| {
        eprintln!("cesimd: warning: job {} telemetry: {e}", job.id);
        Telemetry::disabled()
    });

    // Plan cache service: compute every cell's identity key, serve hits
    // from the store, and leave misses for the sweep.
    let mut keys = Vec::with_capacity(plan.jobs.len());
    let mut prefill = Vec::with_capacity(plan.jobs.len());
    for (i, cell_job) in plan.jobs.iter().enumerate() {
        let key = match cell_key_with(&code, cell_job, max_insts, plan.run) {
            Ok(key) => key,
            Err(e) => {
                send(JobEvent::Error { kind: "io".into(), message: format!("cell {i}: {e}") });
                let _ = shared.wal.lock().expect("wal").append(&done_record(job.id));
                return;
            }
        };
        match shared.store.lookup(&key, &code) {
            Lookup::Hit(result) => {
                telemetry.emit(Event::CacheHit { cell: i });
                send(JobEvent::Cell { job: job.id, cell: i, source: CellSource::Cache });
                prefill.push(Some(*result));
            }
            Lookup::Miss | Lookup::Stale => {
                telemetry.emit(Event::CacheMiss { cell: i });
                prefill.push(None);
            }
        }
        keys.push(key);
    }
    let cache_hits = prefill.iter().flatten().count();
    let cache_misses = prefill.len() - cache_hits;

    // Freshly simulated cells flow into the store (atomic per cell) and
    // to the client the moment they finish.
    let io_error: Arc<Mutex<Option<String>>> = Arc::default();
    let hook = {
        let store = Arc::clone(&shared.store);
        let keys = keys.clone();
        let code = code.clone();
        let io_error = Arc::clone(&io_error);
        // Sender is !Sync; the hook runs on every worker thread.
        let sender = sender.clone().map(Mutex::new);
        let id = job.id;
        CellHook::new(move |i, result| {
            if let Err(e) = store.insert(&keys[i], &code, result) {
                let mut slot = io_error.lock().expect("io error slot");
                slot.get_or_insert_with(|| format!("storing cell {i}: {e}"));
            }
            if let Some(tx) = &sender {
                let _ = tx
                    .lock()
                    .expect("event sender")
                    .send(JobEvent::Cell { job: id, cell: i, source: CellSource::Run });
            }
        })
    };

    let opts = SweepOptions {
        run: plan.run,
        policy: RunPolicy {
            cell_timeout: job.spec.deadline_ms.map(Duration::from_millis),
            ..RunPolicy::default()
        },
        // The cell checkpoint journal survives kill -9 and feeds the
        // replayed execution; `resume: true` is unconditional because a
        // fresh job simply has no journal yet.
        checkpoint: Some(CheckpointSpec::for_output(
            &state_dir.join("ckpt").join(format!("job-{}.csv", job.id)),
            true,
        )),
        telemetry: telemetry.clone(),
        prefill,
        on_cell: hook,
    };
    let evictions_before = trace_cache_stats().evictions;
    let summary = match run_sweep_ft(&plan.jobs, max_insts, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            // Checkpoint-journal I/O failure: the job is NOT marked done,
            // so a restart (or the next daemon) retries it.
            send(JobEvent::Error { kind: "io".into(), message: format!("checkpoint: {e}") });
            return;
        }
    };
    let evicted = trace_cache_stats().evictions.saturating_sub(evictions_before);
    if evicted > 0 {
        telemetry.emit(Event::TraceEvicted { count: evicted });
    }

    let mut artifacts = Vec::new();
    if summary.all_ok() {
        artifacts = job.spec.artifacts(job.degraded, &summary);
        let dir = state_dir.join("artifacts").join(format!("job-{}", job.id));
        let mut paths = Vec::with_capacity(artifacts.len());
        for (name, content) in &artifacts {
            let path = dir.join(name);
            if let Err(e) = write_atomic(&path, content) {
                let mut slot = io_error.lock().expect("io error slot");
                slot.get_or_insert_with(|| format!("writing {}: {e}", path.display()));
            }
            paths.push(path);
        }
        if !paths.is_empty() {
            let path_refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
            if let Err(e) = manifest::write_manifest(
                &dir.join("manifest.json"),
                &format!("cesimd:{}", job.spec.display_name()),
                &plan.jobs,
                max_insts,
                plan.run,
                &summary,
                &path_refs,
            ) {
                let mut slot = io_error.lock().expect("io error slot");
                slot.get_or_insert_with(|| format!("manifest: {e}"));
            }
        }
    }

    if let Err(e) = shared.wal.lock().expect("wal").append(&done_record(job.id)) {
        let mut slot = io_error.lock().expect("io error slot");
        slot.get_or_insert_with(|| format!("job journal: {e}"));
    }
    if let Some(message) = io_error.lock().expect("io error slot").take() {
        send(JobEvent::Error { kind: "io".into(), message });
    }
    send(JobEvent::Done {
        job: job.id,
        outcome: JobOutcome {
            ok: summary.cells.iter().flatten().count(),
            failed: summary.failures.len(),
            cache_hits,
            cache_misses,
            degraded: job.degraded,
            artifacts,
            failures: summary.failures.iter().map(|f| f.to_string()).collect(),
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{SweepKind, SweepRequest};

    /// The admission policy table: hard bound rejects unconditionally,
    /// the soft mark degrades only with opt-in, and below it everything
    /// is accepted as-is.
    #[test]
    fn admission_policy_table() {
        assert_eq!(admission(0, 8, 4, false), Admission::Accept);
        assert_eq!(admission(3, 8, 4, true), Admission::Accept);
        assert_eq!(admission(4, 8, 4, false), Admission::Accept);
        assert_eq!(admission(4, 8, 4, true), Admission::Degrade);
        assert_eq!(admission(7, 8, 4, true), Admission::Degrade);
        assert_eq!(admission(8, 8, 4, true), Admission::Reject);
        assert_eq!(admission(8, 8, 4, false), Admission::Reject);
        assert_eq!(admission(0, 0, 0, false), Admission::Reject);
    }

    fn spec() -> JobSpec {
        JobSpec::preset(SweepKind::Fig13)
    }

    /// WAL parsing: done cancels submitted, a torn final line is dropped
    /// (the kill -9 signature), mid-journal corruption discards all, and
    /// the next-id high-water mark survives both records and the header.
    #[test]
    fn wal_parse_recovers_pending_and_tolerates_torn_tail() {
        let mut text = format!("{}\n", wal_header(1));
        text.push_str(&submitted_record(1, &spec(), false));
        text.push('\n');
        text.push_str(&submitted_record(2, &spec(), true));
        text.push('\n');
        text.push_str(&done_record(1));
        text.push('\n');
        text.push_str("{\"job\": 3, \"state\": \"subm"); // torn by kill -9
        let (pending, next_id) = parse_wal(&text).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 2);
        assert!(pending[0].degraded);
        assert_eq!(next_id, 3, "the mark clears every id in the records");
        assert!(matches!(
            pending[0].spec.request,
            SweepRequest::Preset(SweepKind::Fig13)
        ));

        // A compacted journal carries the mark even with no records left:
        // ids never rewind across daemon generations.
        let (pending, next_id) = parse_wal(&format!("{}\n", wal_header(9))).unwrap();
        assert!(pending.is_empty());
        assert_eq!(next_id, 9);

        let mut corrupt = format!("{}\n", wal_header(1));
        corrupt.push_str("{\"job\": 1, \"state\": \"subm\n"); // torn NOT last
        corrupt.push_str(&submitted_record(2, &spec(), false));
        corrupt.push('\n');
        assert!(parse_wal(&corrupt).is_err());

        assert!(parse_wal("").unwrap().0.is_empty());
        assert!(parse_wal("{\"ce_jobs_w").unwrap().0.is_empty(), "torn header = empty");
        assert!(parse_wal("{\"other\": 1}\n{\"job\": 1}\n").is_err(), "wrong header");
    }

    /// The nastier journal shapes: a torn header with intact records
    /// after it is an integrity failure (the id mark is gone, so the
    /// records cannot be trusted), the header's high-water mark wins
    /// over lower record ids, and a fault injected into the compaction
    /// rename leaves the original journal byte-identical on disk.
    #[test]
    fn wal_edge_cases() {
        // A torn header with records after it is NOT the kill -9 torn
        // tail: discard loudly rather than replay unanchored ids.
        let mut text = String::from("{\"ce_jobs_w\n");
        text.push_str(&submitted_record(1, &spec(), false));
        text.push('\n');
        assert!(parse_wal(&text).is_err());

        // The header mark outranks every record id (compaction wrote
        // it after handing out ids 1..100; the records just lag).
        let mut text = format!("{}\n", wal_header(100));
        text.push_str(&submitted_record(3, &spec(), true));
        text.push('\n');
        let (pending, next_id) = parse_wal(&text).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(next_id, 100, "the mark never rewinds");

        // Interrupted compaction: write_atomic's rename is its op 3;
        // fail it and the pre-compaction journal must still be on disk
        // byte for byte, with a clean reopen recovering everything.
        let dir = std::env::temp_dir().join(format!("ce-wal-edge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let mut text = format!("{}\n", wal_header(1));
        text.push_str(&submitted_record(1, &spec(), false));
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        let (result, ops) = crate::iofault::with_plan(
            crate::iofault::FailPlan::one(3, crate::iofault::FaultClass::Eio),
            || Wal::open(&path),
        );
        assert!(result.is_err(), "the compaction failure must propagate");
        assert_eq!(ops, 4, "create, write, sync, then the faulted rename");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            text,
            "the original journal survives an interrupted compaction untouched"
        );
        let (_, pending, next_id) = Wal::open(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(next_id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Wal::open compacts: done jobs disappear from the rewritten file,
    /// and appends after recovery land on a clean journal even when the
    /// previous instance died mid-append.
    #[test]
    fn wal_open_compacts_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!("ce-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let mut text = format!("{}\n", wal_header(1));
        text.push_str(&submitted_record(5, &spec(), false));
        text.push('\n');
        text.push_str(&done_record(5));
        text.push('\n');
        text.push_str(&submitted_record(6, &spec(), false));
        text.push('\n');
        text.push_str("{\"job\": 7, \"sta"); // torn tail
        std::fs::write(&path, &text).unwrap();

        let (mut wal, pending, next_id) = Wal::open(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 6);
        assert_eq!(next_id, 7);
        wal.append(&done_record(6)).unwrap();
        wal.append(&submitted_record(7, &spec(), false)).unwrap();

        // A second recovery sees exactly job 7 and keeps ids monotonic.
        let (mut wal, pending, next_id) = Wal::open(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 7);
        assert_eq!(next_id, 8);
        wal.append(&done_record(7)).unwrap();

        // Even after everything completes, a later generation never
        // hands out an id below the mark.
        let (_, pending, next_id) = Wal::open(&path).unwrap();
        assert!(pending.is_empty());
        assert_eq!(next_id, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
