//! Sweep checkpoint/resume: a journal of completed cells that survives
//! `kill -9`, plus atomic result-file writes.
//!
//! ## Journal format (`results/*.ckpt.jsonl`)
//!
//! Line-oriented JSON, one object per line, append-only:
//!
//! ```text
//! {"ce_sweep_ckpt": 1, "sweep": "<16-hex sweep id>", "cells": N}
//! {"cell": 3, "wall_us": 1234, "stats": {...every SimStats counter...}}
//! {"cell": 7, "wall_us": 99, "stats": {...}, "sampled": {...SampledStats...}}
//! …
//! ```
//!
//! Cells run under sampled simulation append a `"sampled"` block with the
//! full measurement ([`SampledStats`]); exact cells omit it. The sampling
//! geometry is part of the run options and therefore of the sweep id, so
//! an exact journal can never be replayed into a sampled sweep.
//!
//! The header pins a *sweep identity* — a hash over the job list, the
//! instruction cap, and the run options — so a stale journal from a
//! different sweep (or the same sweep at a different cap) is discarded
//! rather than replayed into the wrong grid. Each completed cell is
//! appended and flushed before the worker moves on, so a process killed
//! mid-sweep loses at most the cells in flight. On load, a torn final
//! line (the `kill -9` signature) is tolerated and dropped; corruption
//! anywhere else discards the whole journal — resuming from bytes we
//! cannot trust would be worse than redoing the work.
//!
//! Statistics are journaled losslessly: every `u64` counter in
//! [`SimStats`] round-trips exactly (counters sit far below 2^53, the
//! reader's f64 mantissa limit), so a resumed sweep's CSV output is
//! **byte-identical** to an uninterrupted run — `tests/fault_tolerance.rs`
//! kills a real sweep binary mid-run and diffs the bytes to pin this.
//!
//! The journal is removed once the sweep completes with zero failures;
//! result CSVs themselves are written via [`write_atomic`]
//! (tempfile + rename), so readers never observe a half-written table.

use std::fs::File;
use std::path::{Path, PathBuf};

use ce_sim::{SampledStats, SimStats, StallCause};

use crate::json::Json;
use crate::runner::{Job, RunOptions, TimedResult};

/// Where a sweep checkpoints, and whether to load what is already there.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Journal path (conventionally `results/<sweep>.ckpt.jsonl`).
    pub path: PathBuf,
    /// Load completed cells from an existing journal (`--resume`); when
    /// `false` any existing journal is overwritten.
    pub resume: bool,
}

impl CheckpointSpec {
    /// The conventional journal path for a result file:
    /// `results/foo.csv` → `results/foo.ckpt.jsonl`.
    pub fn for_output(out: &Path, resume: bool) -> CheckpointSpec {
        let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("sweep");
        let path = out.with_file_name(format!("{stem}.ckpt.jsonl"));
        CheckpointSpec { path, resume }
    }
}

/// Identity of a sweep: an FNV-1a hash over every job's debug form, the
/// instruction cap, and the run options. Two invocations with the same
/// grid get the same id; any change to the grid, cap, or options changes
/// it and invalidates old journals.
pub fn sweep_id(jobs: &[Job], max_insts: u64, opts: RunOptions) -> u64 {
    let mut h = crate::manifest::Fnv64::default();
    h.eat(format!("max_insts={max_insts} opts={opts:?}").as_bytes());
    for job in jobs {
        h.eat(format!("{job:?}").as_bytes());
    }
    h.digest()
}

/// An open, appendable sweep journal. Appends go through the
/// [`crate::iofault`] seam one complete line at a time, so an injected
/// torn write leaves exactly the torn-final-line shape the loader
/// already tolerates.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens the journal for a sweep: loads any completed cells recorded
    /// for the same sweep id (when `spec.resume`), then positions the
    /// file for appending. Returns the journal and the recovered cells
    /// (input-order slots, `None` where work remains).
    ///
    /// # Errors
    ///
    /// I/O errors creating or reading the journal file. A journal that
    /// exists but fails validation (wrong sweep id, wrong cell count,
    /// mid-file corruption) is *not* an error — it is discarded and the
    /// sweep starts fresh.
    pub fn open(
        spec: &CheckpointSpec,
        id: u64,
        cells: usize,
    ) -> std::io::Result<(Journal, Vec<Option<TimedResult>>)> {
        let mut recovered: Vec<Option<TimedResult>> = vec![None; cells];
        let mut replay = false;
        // A torn final line (kill -9 or a torn write mid-append) is
        // dropped by the loader, but it must also be truncated off the
        // file before appending: a record appended after the half-line
        // would merge with it into one garbage line and be silently
        // lost on the *next* resume.
        let mut keep_bytes: Option<u64> = None;
        if spec.resume {
            if let Ok(text) = std::fs::read_to_string(&spec.path) {
                if let Some(loaded) = load_journal(&text, id, cells) {
                    recovered = loaded;
                    replay = true;
                    if !text.ends_with('\n') {
                        let keep = text.rfind('\n').map_or(0, |i| i + 1);
                        keep_bytes = Some(keep as u64);
                    }
                }
            }
        }
        if let Some(dir) = spec.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = if replay {
            if let Some(keep) = keep_bytes {
                let f = std::fs::OpenOptions::new().write(true).open(&spec.path)?;
                f.set_len(keep)?;
            }
            crate::iofault::open_append(&spec.path)?
        } else {
            let mut f = crate::iofault::create(&spec.path)?;
            let header =
                format!("{{\"ce_sweep_ckpt\": 1, \"sweep\": \"{id:016x}\", \"cells\": {cells}}}\n");
            crate::iofault::write_all(&mut f, header.as_bytes())?;
            f
        };
        Ok((Journal { file, path: spec.path.clone() }, recovered))
    }

    /// Appends one completed cell as a single unbuffered write, so the
    /// record survives an immediate `kill -9`.
    ///
    /// # Errors
    ///
    /// I/O errors from the append (injected faults included; a torn
    /// append leaves a recoverable torn final line, never a torn middle).
    pub fn record(&mut self, cell: usize, result: &TimedResult) -> std::io::Result<()> {
        let sampled = match &result.sampled {
            Some(s) => format!(", \"sampled\": {}", sampled_to_json(s)),
            None => String::new(),
        };
        let line = format!(
            "{{\"cell\": {cell}, \"wall_us\": {}, \"stats\": {}{sampled}}}\n",
            result.wall.as_micros(),
            stats_to_json(&result.stats)
        );
        crate::iofault::write_all(&mut self.file, line.as_bytes())
    }

    /// Removes the journal — the sweep completed and its results were
    /// written, so there is nothing left to resume.
    pub fn finish(self) {
        drop(self.file);
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Parses a journal, returning the recovered cells if it belongs to this
/// sweep and is trustworthy, else `None`. A torn final line is dropped;
/// torn or corrupt lines anywhere else invalidate the journal.
fn load_journal(text: &str, id: u64, cells: usize) -> Option<Vec<Option<TimedResult>>> {
    let mut lines = text.lines().peekable();
    let header = Json::parse(lines.next()?).ok()?;
    if header.at("ce_sweep_ckpt").and_then(Json::as_u64) != Some(1)
        || header.at("sweep").and_then(Json::as_str) != Some(format!("{id:016x}").as_str())
        || header.at("cells").and_then(Json::as_u64) != Some(cells as u64)
    {
        return None;
    }
    let mut recovered: Vec<Option<TimedResult>> = vec![None; cells];
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line).ok().and_then(|doc| {
            let cell = doc.at("cell")?.as_u64()? as usize;
            let wall_us = doc.at("wall_us")?.as_u64()?;
            let stats = stats_from_json(doc.at("stats")?)?;
            // A cell journaled without a sampled block was an exact run; a
            // present-but-malformed block is corruption like any other.
            let sampled = match doc.at("sampled") {
                Some(s) => Some(sampled_from_json(s)?),
                None => None,
            };
            Some((cell, wall_us, stats, sampled))
        });
        match parsed {
            Some((cell, wall_us, stats, sampled)) if cell < cells => {
                recovered[cell] = Some(TimedResult {
                    stats,
                    sampled,
                    wall: std::time::Duration::from_micros(wall_us),
                });
            }
            _ if lines.peek().is_none() => {
                // Torn final line: the kill arrived mid-append. The cell
                // simply reruns.
                break;
            }
            _ => return None, // corruption before the end: distrust it all
        }
    }
    Some(recovered)
}

/// Structural health of a line-oriented journal file, as `fsck` reports
/// it. "Structural" means every line parses with the fields its format
/// requires — not that it belongs to any particular sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalClass {
    /// Header and every record line parse.
    Valid,
    /// Every line but the last parses; the last is torn — the `kill -9`
    /// mid-append signature every loader already drops. Recoverable.
    TornTail,
    /// A line *before* the end fails to parse: real corruption. Loaders
    /// discard such journals wholesale; `fsck` quarantines them.
    Corrupt,
}

/// Classifies a checkpoint journal's text structurally: header tag, then
/// one `{"cell": …, "wall_us": …, "stats": …}` record per line. An
/// empty file (or a lone torn header) is [`JournalClass::TornTail`] —
/// the crash landed before or inside the header write, and recovery
/// simply starts the sweep fresh.
pub fn classify_journal(text: &str) -> JournalClass {
    classify_lines(text, |is_header, doc| {
        if is_header {
            doc.at("ce_sweep_ckpt").and_then(Json::as_u64) == Some(1)
        } else {
            doc.at("cell").and_then(Json::as_u64).is_some()
                && doc.at("wall_us").and_then(Json::as_u64).is_some()
                && doc.at("stats").and_then(stats_from_json).is_some()
        }
    })
}

/// Shared line-walk for journal classification: `check(is_header, doc)`
/// validates one parsed line. Torn-tail tolerance matches every loader
/// in this crate: only the **final** line may fail.
pub(crate) fn classify_lines(
    text: &str,
    check: impl Fn(bool, &Json) -> bool,
) -> JournalClass {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return JournalClass::TornTail;
    }
    let last = lines.len() - 1;
    for (i, line) in lines.iter().enumerate() {
        let ok = !line.trim().is_empty()
            && Json::parse(line).is_ok_and(|doc| check(i == 0, &doc));
        if !ok {
            return if i == last { JournalClass::TornTail } else { JournalClass::Corrupt };
        }
    }
    JournalClass::Valid
}

/// Serializes every [`SimStats`] counter to a JSON object, losslessly.
pub(crate) fn stats_to_json(s: &SimStats) -> String {
    let hist =
        s.issue_histogram.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    let stalls = StallCause::ALL
        .iter()
        .map(|&c| s.stall_breakdown.get(c).to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"cycles\": {}, \"committed\": {}, \"issued\": {}, \"branches\": {}, \
         \"mispredictions\": {}, \"loads\": {}, \"stores\": {}, \"dcache_misses\": {}, \
         \"dcache_accesses\": {}, \"forwarded_loads\": {}, \"intercluster_bypasses\": {}, \
         \"dispatch_stall_cycles\": {}, \"scheduler_stalls\": {}, \"inflight_stalls\": {}, \
         \"preg_stalls\": {}, \"occupancy_sum\": {}, \"wrong_path_fetched\": {}, \
         \"wrong_path_issued\": {}, \"issue_histogram\": [{}], \"stall_breakdown\": [{}]}}",
        s.cycles,
        s.committed,
        s.issued,
        s.branches,
        s.mispredictions,
        s.loads,
        s.stores,
        s.dcache_misses,
        s.dcache_accesses,
        s.forwarded_loads,
        s.intercluster_bypasses,
        s.dispatch_stall_cycles,
        s.scheduler_stalls,
        s.inflight_stalls,
        s.preg_stalls,
        s.occupancy_sum,
        s.wrong_path_fetched,
        s.wrong_path_issued,
        hist,
        stalls,
    )
}

/// Serializes a [`SampledStats`] measurement to a JSON object,
/// losslessly (all counters are `u64`, well under the reader's 2^53
/// mantissa limit — and held exact as [`Json::Int`] anyway).
pub(crate) fn sampled_to_json(s: &SampledStats) -> String {
    format!(
        "{{\"total_insts\": {}, \"windows\": {}, \"detailed_insts\": {}, \
         \"measured_insts\": {}, \"measured_cycles\": {}, \"est_cycles\": {}, \
         \"exact\": {}}}",
        s.total_insts,
        s.windows,
        s.detailed_insts,
        s.measured_insts,
        s.measured_cycles,
        s.est_cycles,
        s.exact,
    )
}

/// Reads a [`sampled_to_json`] object back; `None` on any missing or
/// ill-typed field.
pub(crate) fn sampled_from_json(doc: &Json) -> Option<SampledStats> {
    let field = |name: &str| doc.at(name).and_then(Json::as_u64);
    Some(SampledStats {
        total_insts: field("total_insts")?,
        windows: u32::try_from(field("windows")?).ok()?,
        detailed_insts: field("detailed_insts")?,
        measured_insts: field("measured_insts")?,
        measured_cycles: field("measured_cycles")?,
        est_cycles: field("est_cycles")?,
        exact: doc.at("exact")?.as_bool()?,
    })
}

/// Reads a [`stats_to_json`] object back; `None` on any missing or
/// ill-typed field.
pub(crate) fn stats_from_json(doc: &Json) -> Option<SimStats> {
    let field = |name: &str| doc.at(name).and_then(Json::as_u64);
    let mut s = SimStats {
        cycles: field("cycles")?,
        committed: field("committed")?,
        issued: field("issued")?,
        branches: field("branches")?,
        mispredictions: field("mispredictions")?,
        loads: field("loads")?,
        stores: field("stores")?,
        dcache_misses: field("dcache_misses")?,
        dcache_accesses: field("dcache_accesses")?,
        forwarded_loads: field("forwarded_loads")?,
        intercluster_bypasses: field("intercluster_bypasses")?,
        dispatch_stall_cycles: field("dispatch_stall_cycles")?,
        scheduler_stalls: field("scheduler_stalls")?,
        inflight_stalls: field("inflight_stalls")?,
        preg_stalls: field("preg_stalls")?,
        occupancy_sum: field("occupancy_sum")?,
        wrong_path_fetched: field("wrong_path_fetched")?,
        wrong_path_issued: field("wrong_path_issued")?,
        ..SimStats::default()
    };
    let hist = doc.at("issue_histogram")?.as_arr()?;
    if hist.len() != s.issue_histogram.len() {
        return None;
    }
    for (slot, v) in s.issue_histogram.iter_mut().zip(hist) {
        *slot = v.as_u64()?;
    }
    let stalls = doc.at("stall_breakdown")?.as_arr()?;
    if stalls.len() != StallCause::COUNT {
        return None;
    }
    for (&cause, v) in StallCause::ALL.iter().zip(stalls) {
        s.stall_breakdown.charge(cause, v.as_u64()?);
    }
    Some(s)
}

/// Writes `content` to `path` atomically: tempfile in the same
/// directory, write, **fsync**, then rename over the target. Readers
/// (and a `kill -9`) never observe a half-written file, and the fsync
/// before the rename means the rename can never install a file whose
/// bytes a power cut could still lose.
///
/// Every step goes through [`crate::iofault`], so injected `ENOSPC`,
/// `EIO`, torn-write, and failed-fsync faults surface here as ordinary
/// errors — with the guarantee that a failure leaves the *old* target
/// intact and no tempfile behind (a crash between create and rename can
/// still orphan one; `cesimd --fsck` sweeps those).
///
/// # Errors
///
/// I/O errors from the write, fsync, or rename; the tempfile is cleaned
/// up on failure.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension(format!(
        "tmp.{}",
        std::process::id(),
    ));
    let result = (|| {
        let mut file = crate::iofault::create(&tmp)?;
        crate::iofault::write_all(&mut file, content.as_bytes())?;
        crate::iofault::sync(&file)?;
        drop(file);
        crate::iofault::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_workloads::Benchmark;
    use std::time::Duration;

    fn sample_stats(seed: u64) -> SimStats {
        let mut s = SimStats {
            cycles: 1000 + seed,
            committed: 2000 + seed,
            issued: 2000 + seed,
            occupancy_sum: u64::MAX / 3, // large counters must round-trip
            ..SimStats::default()
        };
        s.issue_histogram[3] = 17 + seed;
        s.stall_breakdown.charge(StallCause::OperandWait, 40 + seed);
        s
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ce-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn stats_round_trip_losslessly() {
        let s = sample_stats(3);
        let back = stats_from_json(&Json::parse(&stats_to_json(&s)).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn journal_records_and_resumes() {
        let dir = temp_dir("resume");
        let spec = CheckpointSpec::for_output(&dir.join("t.csv"), true);
        assert!(spec.path.ends_with("t.ckpt.jsonl"));

        let (mut j, recovered) = Journal::open(&spec, 42, 3).unwrap();
        assert!(recovered.iter().all(Option::is_none));
        j.record(1, &TimedResult { stats: sample_stats(1), sampled: None, wall: Duration::from_micros(7) })
            .unwrap();
        drop(j); // simulate dying mid-sweep

        let (_j, recovered) = Journal::open(&spec, 42, 3).unwrap();
        assert!(recovered[0].is_none() && recovered[2].is_none());
        let got = recovered[1].as_ref().expect("cell 1 recovered");
        assert_eq!(got.stats, sample_stats(1));
        assert_eq!(got.wall, Duration::from_micros(7));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sampled cell's measurement block round-trips exactly alongside
    /// its stats, and exact cells keep journaling without one — the two
    /// kinds coexist in one journal.
    #[test]
    fn sampled_cells_round_trip_through_the_journal() {
        let dir = temp_dir("sampled");
        let spec = CheckpointSpec::for_output(&dir.join("t.csv"), true);
        let sampled = SampledStats {
            total_insts: 1_000_000,
            windows: 326,
            detailed_insts: 250_000,
            measured_insts: 166_912,
            measured_cycles: 61_234,
            est_cycles: 366_894,
            exact: false,
        };
        let (mut j, _) = Journal::open(&spec, 11, 2).unwrap();
        j.record(
            0,
            &TimedResult {
                stats: sample_stats(0),
                sampled: Some(sampled),
                wall: Duration::from_micros(3),
            },
        )
        .unwrap();
        j.record(1, &TimedResult { stats: sample_stats(1), sampled: None, wall: Duration::ZERO })
            .unwrap();
        drop(j);

        let (_j, recovered) = Journal::open(&spec, 11, 2).unwrap();
        let got = recovered[0].as_ref().expect("sampled cell recovered");
        assert_eq!(got.sampled, Some(sampled));
        assert_eq!(got.stats, sample_stats(0));
        assert_eq!(got.wall, Duration::from_micros(3));
        assert!(recovered[1].as_ref().expect("exact cell recovered").sampled.is_none());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_sweep_id_or_geometry_discards_the_journal() {
        let dir = temp_dir("mismatch");
        let spec = CheckpointSpec::for_output(&dir.join("t.csv"), true);
        let (mut j, _) = Journal::open(&spec, 42, 3).unwrap();
        j.record(0, &TimedResult { stats: sample_stats(0), sampled: None, wall: Duration::ZERO }).unwrap();
        drop(j);

        let (_j, recovered) = Journal::open(&spec, 43, 3).unwrap(); // different sweep
        assert!(recovered.iter().all(Option::is_none));
        let (_j, recovered) = Journal::open(&spec, 42, 4).unwrap(); // different grid
        assert!(recovered.iter().all(Option::is_none));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated_and_dropped() {
        let dir = temp_dir("torn");
        let spec = CheckpointSpec::for_output(&dir.join("t.csv"), true);
        let (mut j, _) = Journal::open(&spec, 7, 2).unwrap();
        j.record(0, &TimedResult { stats: sample_stats(0), sampled: None, wall: Duration::ZERO }).unwrap();
        j.record(1, &TimedResult { stats: sample_stats(1), sampled: None, wall: Duration::ZERO }).unwrap();
        drop(j);

        // Tear the last line the way kill -9 mid-append does.
        let text = std::fs::read_to_string(&spec.path).unwrap();
        let torn = &text[..text.len() - 20];
        std::fs::write(&spec.path, torn).unwrap();

        let (_j, recovered) = Journal::open(&spec, 7, 2).unwrap();
        assert!(recovered[0].is_some(), "intact line survives");
        assert!(recovered[1].is_none(), "torn line reruns");

        // Corruption *before* the end distrusts the whole journal.
        let mut lines: Vec<String> =
            text.lines().map(str::to_string).collect();
        lines[1] = "{\"cell\": garbage".into();
        std::fs::write(&spec.path, lines.join("\n") + "\n").unwrap();
        let (_j, recovered) = Journal::open(&spec, 7, 2).unwrap();
        assert!(recovered.iter().all(Option::is_none));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_off_truncates() {
        let dir = temp_dir("trunc");
        let spec = CheckpointSpec::for_output(&dir.join("t.csv"), true);
        let (mut j, _) = Journal::open(&spec, 9, 2).unwrap();
        j.record(0, &TimedResult { stats: sample_stats(0), sampled: None, wall: Duration::ZERO }).unwrap();
        drop(j);

        let fresh = CheckpointSpec { resume: false, ..spec.clone() };
        let (_j, recovered) = Journal::open(&fresh, 9, 2).unwrap();
        assert!(recovered.iter().all(Option::is_none));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_id_tracks_grid_cap_and_options() {
        let jobs: Vec<Job> =
            vec![(Benchmark::Compress, ce_sim::machine::baseline_8way())];
        let other: Vec<Job> =
            vec![(Benchmark::Li, ce_sim::machine::baseline_8way())];
        let a = sweep_id(&jobs, 1000, RunOptions::default());
        assert_eq!(a, sweep_id(&jobs, 1000, RunOptions::default()), "stable");
        assert_ne!(a, sweep_id(&other, 1000, RunOptions::default()));
        assert_ne!(a, sweep_id(&jobs, 2000, RunOptions::default()));
        assert_ne!(
            a,
            sweep_id(&jobs, 1000, RunOptions { attribution: true, ..RunOptions::default() })
        );
        // An exact journal must never satisfy a sampled resume (or vice
        // versa): the sampling geometry is part of the sweep identity.
        assert_ne!(
            a,
            sweep_id(
                &jobs,
                1000,
                RunOptions {
                    sampled: Some(ce_sim::SamplingConfig::default()),
                    ..RunOptions::default()
                }
            )
        );
    }

    #[test]
    fn write_atomic_replaces_content() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.csv");
        write_atomic(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        write_atomic(&path, "new\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new\n");
        assert!(
            std::fs::read_dir(&dir).unwrap().count() == 1,
            "no tempfile left behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
