//! The storm campaign behind `cechaos`: a deterministic fault grid over
//! the durability stack, plus classification machinery the binary's
//! daemon-storm phase shares.
//!
//! ## The zero-corruption contract
//!
//! Every fault the [`crate::iofault`] seam can inject — `ENOSPC`, `EIO`,
//! a torn write, a failed fsync, a crash at an exact I/O boundary — must
//! land in one of two honest outcomes:
//!
//! * **Detected**: the write path surfaced an error, and re-running the
//!   workload on the damaged state directory converges to byte-identical
//!   results.
//! * **Masked**: no error surfaced (the fault hit redundant work, e.g. an
//!   fsync whose durability was never subsequently needed) *and* the
//!   final bytes still converge.
//!
//! What must never happen is **Silent** (no error, wrong bytes) or
//! **Unrecovered** (error surfaced, but recovery cannot reproduce the
//! reference bytes). [`GridReport::violations`] is the campaign gate: CI
//! fails on a non-empty list.
//!
//! ## The grid
//!
//! [`durability_workload`] drives every durability-critical shape the
//! service owns — an atomic CSV write, a WAL-shaped append-and-fsync
//! journal, a checkpoint [`Journal`](crate::checkpoint::Journal) cycle,
//! and content-addressed store inserts — through the fault seam on a
//! single thread, so the seam's op counter gives a stable *horizon* (the
//! number of fault-eligible operations). The grid is then exhaustive:
//! every non-crash fault class × every op index, in-process via
//! [`crate::iofault::with_plan`]. Crash cases need a process to die, so
//! `cechaos` runs the same workload in a subprocess (its `--worker`
//! mode) with `CE_IOFAULT=crash@K` and classifies the wreckage with
//! [`classify_crash_case`]. Horizon ≈ 26 ops × 5 classes ⇒ the ≥ 100
//! seeded cases the acceptance contract asks for, with zero flakiness:
//! the grid is a pure function of the workload.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::time::Duration;

use ce_sim::SimStats;

use crate::api::{JobSpec, SweepKind};
use crate::checkpoint::{write_atomic, CheckpointSpec, Journal};
use crate::iofault::{self, FailPlan, FaultClass};
use crate::runner::TimedResult;
use crate::store::ResultStore;

/// How one fault case resolved against the zero-corruption contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// An error surfaced and recovery converged to the reference bytes.
    Detected,
    /// No error surfaced, but the bytes still converged — the fault hit
    /// work whose loss was harmless (tolerated, reported for the record).
    Masked,
    /// The plan never fired: the op index lies beyond the workload's
    /// horizon.
    Harmless,
    /// **Violation**: no error surfaced and the final bytes differ.
    Silent,
    /// **Violation**: an error surfaced but recovery could not reproduce
    /// the reference bytes.
    Unrecovered,
}

impl Outcome {
    /// Whether this outcome breaks the zero-corruption contract.
    pub fn is_violation(self) -> bool {
        matches!(self, Outcome::Silent | Outcome::Unrecovered)
    }

    /// Stable report label.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::Masked => "masked",
            Outcome::Harmless => "harmless",
            Outcome::Silent => "SILENT-CORRUPTION",
            Outcome::Unrecovered => "UNRECOVERED",
        }
    }
}

/// One grid case: which fault, where, and how it resolved.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The injected class.
    pub class: FaultClass,
    /// The op index it was injected at.
    pub index: u64,
    /// The verdict.
    pub outcome: Outcome,
    /// One line of evidence (the surfaced error, or the divergence).
    pub detail: String,
}

/// The full campaign tally.
#[derive(Debug, Clone, Default)]
pub struct GridReport {
    /// Every case, grid order.
    pub cases: Vec<CaseReport>,
    /// Fault-eligible ops in one clean workload run (the grid width).
    pub horizon: u64,
}

impl GridReport {
    /// Cases that broke the contract (the CI gate: must be empty).
    pub fn violations(&self) -> Vec<&CaseReport> {
        self.cases.iter().filter(|c| c.outcome.is_violation()).collect()
    }

    /// Cases where the fault actually fired (`Harmless` excluded).
    pub fn fired(&self) -> usize {
        self.cases.iter().filter(|c| c.outcome != Outcome::Harmless).count()
    }

    fn count(&self, outcome: Outcome) -> usize {
        self.cases.iter().filter(|c| c.outcome == outcome).count()
    }
}

/// Per-class tallies, violations spelled out as `error[chaos]` lines,
/// and the one-line summary the smoke gate greps.
impl fmt::Display for GridReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in FaultClass::ALL {
            let of_class: Vec<&CaseReport> =
                self.cases.iter().filter(|c| c.class == class).collect();
            if of_class.is_empty() {
                continue;
            }
            let detected =
                of_class.iter().filter(|c| c.outcome == Outcome::Detected).count();
            let masked = of_class.iter().filter(|c| c.outcome == Outcome::Masked).count();
            writeln!(
                f,
                "chaos: {:>6}: {} case(s): {} detected, {} masked, {} beyond horizon",
                class.name(),
                of_class.len(),
                detected,
                masked,
                of_class.iter().filter(|c| c.outcome == Outcome::Harmless).count(),
            )?;
        }
        for case in self.violations() {
            writeln!(
                f,
                "error[chaos]: {} at op {}: {}: {}",
                case.class.name(),
                case.index,
                case.outcome.name(),
                case.detail
            )?;
        }
        write!(
            f,
            "chaos: {} case(s) over {} ops: {} detected, {} masked, {} harmless, \
             {} violation(s)",
            self.cases.len(),
            self.horizon,
            self.count(Outcome::Detected),
            self.count(Outcome::Masked),
            self.count(Outcome::Harmless),
            self.violations().len(),
        )
    }
}

/// The CSV the workload writes atomically (stands in for a rendered
/// figure table).
const WORKLOAD_CSV: &str = "benchmark,ipc\ncompress,1.234\nli,1.567\n";

/// A deterministic [`TimedResult`] fixture (used by the workload and by
/// the fault-injection integration tests).
pub fn synthetic_result(k: u64) -> TimedResult {
    let stats = SimStats {
        cycles: 1_000 + k,
        committed: 900 + k,
        issued: 950 + k,
        ..SimStats::default()
    };
    TimedResult { stats, sampled: None, wall: Duration::from_micros(10 + k) }
}

/// One pass over every durability-critical write shape the service
/// owns, all through the [`crate::iofault`] seam, all on the calling
/// thread (so a thread-local [`FailPlan`] sees every operation):
///
/// 1. a rendered CSV via [`write_atomic`] (create → write → fsync →
///    rename),
/// 2. a WAL-shaped journal: create, header + records as separate line
///    writes, one fsync — the `jobs.jsonl` discipline,
/// 3. a checkpoint [`Journal`] open/record/finish cycle (resuming
///    whatever a previous faulted pass left behind, exactly like a
///    restarted sweep), and
/// 4. three content-addressed store inserts.
///
/// Deterministic end state: re-running this on *any* prefix of its own
/// damage must converge to byte-identical files — that is the property
/// the grid checks.
///
/// # Errors
///
/// The first injected (or real) I/O error.
pub fn durability_workload(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&dir.join("results.csv"), WORKLOAD_CSV)?;

    let spec = JobSpec::preset(SweepKind::Fig13);
    let mut wal = iofault::create(&dir.join("jobs.jsonl"))?;
    let lines = [
        "{\"ce_jobs_wal\": 1, \"next\": 2}\n".to_owned(),
        format!(
            "{{\"job\": 1, \"state\": \"submitted\", \"degraded\": false, \"spec\": {}}}\n",
            spec.to_json()
        ),
        "{\"job\": 1, \"state\": \"done\"}\n".to_owned(),
    ];
    for line in &lines {
        iofault::write_all(&mut wal, line.as_bytes())?;
    }
    iofault::sync(&wal)?;
    drop(wal);

    let ckpt = CheckpointSpec { path: dir.join("ckpt").join("w.ckpt.jsonl"), resume: true };
    let (mut journal, _recovered) = Journal::open(&ckpt, 0xCE05, 3)?;
    for cell in 0..3usize {
        journal.record(cell, &synthetic_result(cell as u64))?;
    }
    journal.finish();

    let store = ResultStore::open(&dir.join("store"))?;
    for k in 0..3u64 {
        store.insert(&format!("{k:016x}"), "chaos-v1", &synthetic_result(k))?;
    }
    Ok(())
}

/// Reference bytes plus op horizon, measured from one clean run.
#[derive(Debug, Clone)]
pub struct GridContext {
    /// Fault-eligible ops in one clean workload pass.
    pub horizon: u64,
    /// Relative path → bytes of the converged state.
    pub reference: BTreeMap<String, Vec<u8>>,
}

/// Runs the workload cleanly under `root/ref` and captures the
/// reference snapshot and op horizon.
///
/// # Errors
///
/// Real I/O errors (nothing is injected here).
pub fn grid_context(root: &Path) -> std::io::Result<GridContext> {
    let ref_dir = root.join("ref");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let (result, horizon) =
        iofault::with_plan(FailPlan::default(), || durability_workload(&ref_dir));
    result?;
    Ok(GridContext { horizon, reference: snapshot(&ref_dir)? })
}

/// Relative path → bytes for every file under `dir`, quarantine
/// excluded (impounded bytes are evidence, not state).
///
/// # Errors
///
/// Directory-walk or read errors.
pub fn snapshot(dir: &Path) -> std::io::Result<BTreeMap<String, Vec<u8>>> {
    let mut map = BTreeMap::new();
    snapshot_into(dir, dir, &mut map)?;
    Ok(map)
}

fn snapshot_into(
    root: &Path,
    dir: &Path,
    map: &mut BTreeMap<String, Vec<u8>>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            if path.file_name().is_some_and(|n| n == "quarantine") {
                continue;
            }
            snapshot_into(root, &path, map)?;
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            map.insert(rel, std::fs::read(&path)?);
        }
    }
    Ok(())
}

/// First divergence between a case's final state and the reference, if
/// any — the evidence line for a `Silent`/`Unrecovered` verdict.
fn diverges(
    got: &BTreeMap<String, Vec<u8>>,
    want: &BTreeMap<String, Vec<u8>>,
) -> Option<String> {
    for (path, bytes) in want {
        match got.get(path) {
            None => return Some(format!("{path} missing after recovery")),
            Some(b) if b != bytes => return Some(format!("{path} bytes differ")),
            Some(_) => {}
        }
    }
    got.keys().find(|p| !want.contains_key(*p)).map(|p| format!("unexpected file {p}"))
}

/// Repairs and re-runs a damaged case directory, then compares against
/// the reference: the shared back half of every case. Returns the
/// divergence, if any.
fn recover_and_compare(dir: &Path, ctx: &GridContext) -> std::io::Result<Option<String>> {
    // The daemon's startup discipline in miniature: audit-and-repair
    // first (sweeps crash-orphaned tempfiles), then let the loaders
    // replay whatever remains.
    let audit = crate::fsck::fsck(dir, true)?;
    if !audit.clean() {
        // A single injected fault must never manufacture damage the
        // loaders cannot classify as recoverable.
        return Ok(Some(format!(
            "fsck quarantined {} file(s) after a single fault",
            audit.count(crate::fsck::FileClass::Quarantined)
        )));
    }
    durability_workload(dir)?;
    Ok(diverges(&snapshot(dir)?, &ctx.reference))
}

/// Runs one non-crash fault case in-process: inject `class` at op
/// `index`, then repair, re-run, and compare.
///
/// # Errors
///
/// Real I/O errors from the recovery machinery (injected faults are the
/// *subject*, never an error).
pub fn run_fault_case(
    root: &Path,
    class: FaultClass,
    index: u64,
    ctx: &GridContext,
) -> std::io::Result<CaseReport> {
    assert!(class != FaultClass::Crash, "crash cases need a subprocess");
    let dir = root.join(format!("{}-{index}", class.name()));
    let _ = std::fs::remove_dir_all(&dir);
    let (outcome, ops) =
        iofault::with_plan(FailPlan::one(index, class), || durability_workload(&dir));
    let fired = ops > index;
    let surfaced = outcome.err().map(|e| e.to_string());
    let divergence = recover_and_compare(&dir, ctx)?;
    let verdict = match (fired, &surfaced, &divergence) {
        (false, _, None) => Outcome::Harmless,
        (true, Some(_), None) => Outcome::Detected,
        (true, None, None) => Outcome::Masked,
        (true, None, Some(_)) => Outcome::Silent,
        (_, _, Some(_)) => Outcome::Unrecovered,
    };
    let detail = divergence
        .or(surfaced)
        .unwrap_or_else(|| "no error, bytes converged".into());
    Ok(CaseReport { class, index, outcome: verdict, detail })
}

/// Classifies a crash case after the subprocess ran: `crashed` is
/// whether the worker died abnormally (the expected result of
/// `CE_IOFAULT=crash@K` with `K` inside the horizon).
///
/// # Errors
///
/// Real I/O errors from the recovery machinery.
pub fn classify_crash_case(
    dir: &Path,
    index: u64,
    crashed: bool,
    ctx: &GridContext,
) -> std::io::Result<CaseReport> {
    let divergence = recover_and_compare(dir, ctx)?;
    let verdict = match (crashed, &divergence) {
        // A crash is its own detection: the process death is loud.
        (true, None) => Outcome::Detected,
        (false, None) => Outcome::Harmless,
        (_, Some(_)) => Outcome::Unrecovered,
    };
    let detail = divergence.unwrap_or_else(|| {
        if crashed { "worker aborted; recovery converged".into() } else { "beyond horizon".into() }
    });
    Ok(CaseReport { class: FaultClass::Crash, index, outcome: verdict, detail })
}

/// The full in-process half of the grid: every non-crash class × every
/// op index inside the horizon. (`cechaos` adds the crash column via
/// its worker subprocesses.)
///
/// # Errors
///
/// Real I/O errors only.
pub fn fault_grid(root: &Path, ctx: &GridContext) -> std::io::Result<GridReport> {
    let mut report = GridReport { cases: Vec::new(), horizon: ctx.horizon };
    for class in FaultClass::ALL {
        if class == FaultClass::Crash {
            continue;
        }
        for index in 0..ctx.horizon {
            report.cases.push(run_fault_case(root, class, index, ctx)?);
        }
    }
    Ok(report)
}

/// The seeded protocol-fuzz corpus: `count` request lines derived from
/// `seed`, mixing malformed JSON, binary junk, wrong-shape documents,
/// unknown ops, and (index 0, always) a line longer than `max_line`
/// (pass the daemon's `MAX_REQUEST_LINE`) — every one of which the
/// daemon must answer with `error[proto]` while staying up.
/// Deterministic per seed, so a failing line is reproducible from the
/// campaign banner.
pub fn fuzz_corpus(seed: u64, count: usize, max_line: usize) -> Vec<String> {
    use rand::{Rng, SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF022);
    let mut corpus = Vec::with_capacity(count);
    for i in 0..count {
        let line = match if i == 0 { 0 } else { rng.gen_range(0u32..6) } {
            // Oversized: a syntactically fine request the length cap
            // must reject without reading it all into memory.
            0 => format!(
                "{{\"op\": \"submit\", \"pad\": \"{}\"}}",
                "x".repeat(max_line + 1)
            ),
            // Truncated JSON (a torn client write).
            1 => "{\"op\": \"subm".into(),
            // Binary junk that is not JSON at all.
            2 => (0..rng.gen_range(1usize..64))
                .map(|_| char::from(rng.gen_range(33u8..126)))
                .collect(),
            // Valid JSON, not an object.
            3 => format!("[{}, {}]", rng.gen_range(0u32..99), rng.gen_range(0u32..99)),
            // Unknown op.
            4 => format!("{{\"op\": \"op-{}\"}}", rng.gen_range(0u32..1000)),
            // Submit with a spec the resolver must reject — wrong shape,
            // not wrong values, so it is a proto error, not config.
            _ => "{\"op\": \"submit\", \"spec\": 42}".into(),
        };
        corpus.push(line);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ce-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The workload is deterministic and self-converging: two clean runs
    /// produce byte-identical snapshots, and the horizon is wide enough
    /// to give the campaign its ≥ 100 cases (5 classes × horizon).
    #[test]
    fn workload_is_deterministic_and_horizon_spans_the_campaign() {
        let dir = root("det");
        let a = grid_context(&dir.join("a")).unwrap();
        let b = grid_context(&dir.join("b")).unwrap();
        assert_eq!(a.horizon, b.horizon);
        assert_eq!(a.reference, b.reference);
        assert!(
            a.horizon * 5 >= 100,
            "horizon {} × 5 classes must give ≥ 100 cases",
            a.horizon
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A small slice of the real grid, one case per non-crash class, at
    /// an index that is mid-workload for all of them: every fault must
    /// resolve to Detected or Masked — never a violation.
    #[test]
    fn grid_slice_upholds_the_contract() {
        let dir = root("slice");
        let ctx = grid_context(&dir).unwrap();
        for class in
            [FaultClass::Enospc, FaultClass::Eio, FaultClass::TornWrite, FaultClass::FailedFsync]
        {
            for index in [0, 5, ctx.horizon - 1] {
                let case = run_fault_case(&dir, class, index, &ctx).unwrap();
                assert!(
                    !case.outcome.is_violation(),
                    "{} at {}: {} ({})",
                    class.name(),
                    index,
                    case.outcome.name(),
                    case.detail
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Beyond-horizon indices are Harmless, and the report renders the
    /// gate lines the smoke job greps for.
    #[test]
    fn beyond_horizon_is_harmless_and_reports_render() {
        let dir = root("beyond");
        let ctx = grid_context(&dir).unwrap();
        let case = run_fault_case(&dir, FaultClass::Eio, ctx.horizon + 10, &ctx).unwrap();
        assert_eq!(case.outcome, Outcome::Harmless);

        let report = GridReport { cases: vec![case], horizon: ctx.horizon };
        let text = report.to_string();
        assert!(text.contains("0 violation(s)"), "{text}");
        assert!(report.violations().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The fuzz corpus is deterministic per seed and always leads with
    /// the oversized line.
    #[test]
    fn fuzz_corpus_is_seeded_and_oversized_first() {
        let cap = 64 * 1024;
        let a = fuzz_corpus(7, 12, cap);
        let b = fuzz_corpus(7, 12, cap);
        let c = fuzz_corpus(8, 12, cap);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 12);
        assert!(a[0].len() > cap);
        assert!(a.iter().all(|line| !line.contains('\n')));
    }
}
