//! Content-addressed run manifests: provenance for every result CSV.
//!
//! Every sweep/explore binary writes a `*.manifest.json` atomically next
//! to its CSV, answering the two questions a result file cannot answer
//! for itself: *what exactly produced these bytes* and *would rerunning
//! reproduce them*. The manifest carries a **cache key** — an FNV-1a
//! hash over the three inputs the simulation is a pure function of:
//!
//! 1. **trace fingerprint** per benchmark — a hash of the serialized
//!    dynamic trace ([`ce_workloads::trace_io::format_trace`]'s exact
//!    text) at the sweep's instruction cap, so any change to a kernel,
//!    the emulator, or the cap changes the key;
//! 2. **config fingerprint** per machine — a hash of the full
//!    [`SimConfig`] debug form (every field participates, the same
//!    convention the checkpoint sweep id uses);
//! 3. **code version** — `CARGO_PKG_VERSION`, overridable with the
//!    `CE_CODE_VERSION` environment variable so CI can pin a git SHA.
//!
//! This is the exact key the planned `cesimd` result cache (ROADMAP
//! item 1) will look up: same key → the cached cells are valid; any
//! perturbation of trace, config, or code produces a different key and
//! forces a re-run. `tests/telemetry.rs` pins both directions.
//!
//! Manifests are validated in CI by the `manifest_check` binary against
//! the committed `results/manifest.schema.json` (the same
//! required-paths schema style as `results/metrics.schema.json`).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ce_sim::SimConfig;
use ce_workloads::{trace_cached, trace_io::format_trace, Benchmark};

use crate::checkpoint::write_atomic;
use crate::runner::{Job, RunOptions, SweepSummary};

/// Schema tag of every manifest document this module writes.
pub const MANIFEST_SCHEMA: &str = "ce-bench.manifest.v1";

/// Incremental FNV-1a (64-bit) — the repo's one hash, shared with the
/// checkpoint sweep id. `fmt::Write` is implemented so debug forms can be
/// hashed without materializing the string.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Folds bytes into the running hash.
    pub fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }

    /// The digest as the repo's canonical 16-hex-digit form.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.eat(s.as_bytes());
        Ok(())
    }
}

/// Hashes one string through FNV-1a, returning the 16-hex form.
fn fnv_hex(text: &str) -> String {
    let mut h = Fnv64::default();
    h.eat(text.as_bytes());
    h.hex()
}

/// The code-version component of the cache key: the `CE_CODE_VERSION`
/// environment variable when set (CI pins the git SHA), else the crate
/// version baked in at compile time.
pub fn code_version() -> String {
    std::env::var("CE_CODE_VERSION").unwrap_or_else(|_| env!("CARGO_PKG_VERSION").to_owned())
}

/// Fingerprint of one benchmark's dynamic trace at an instruction cap:
/// FNV-1a over the exact serialized trace text. Memoized process-wide per
/// `(benchmark, cap)` — the text of a full-length trace is tens of MB and
/// every manifest of a sweep asks for the same seven.
///
/// # Errors
///
/// The trace generator's error, verbatim, if the kernel fails to trace.
pub fn trace_fingerprint(bench: Benchmark, max_insts: u64) -> Result<String, String> {
    static MEMO: Mutex<Option<HashMap<(Benchmark, u64), String>>> = Mutex::new(None);
    let mut memo = MEMO.lock().expect("trace fingerprint memo poisoned");
    let memo = memo.get_or_insert_with(HashMap::new);
    if let Some(hit) = memo.get(&(bench, max_insts)) {
        return Ok(hit.clone());
    }
    let trace = trace_cached(bench, max_insts).map_err(|e| e.to_string())?;
    let fp = fnv_hex(&format_trace(&trace));
    memo.insert((bench, max_insts), fp.clone());
    Ok(fp)
}

/// Fingerprint of one machine configuration: FNV-1a over the full
/// [`SimConfig`] debug form (every field participates, like the
/// checkpoint sweep id).
pub fn config_fingerprint(cfg: &SimConfig) -> String {
    fnv_hex(&format!("{cfg:?}"))
}

/// The content-addressed cache key with every component explicit — the
/// pure function the property tests exercise. [`cache_key`] is the
/// environment-reading wrapper binaries use.
///
/// # Errors
///
/// Trace-generation errors from [`trace_fingerprint`].
pub fn cache_key_with(
    code_version: &str,
    jobs: &[Job],
    max_insts: u64,
    run: RunOptions,
) -> Result<String, String> {
    let mut h = Fnv64::default();
    h.eat(format!("code={code_version}\nmax_insts={max_insts}\nrun={run:?}\n").as_bytes());
    for (bench, cfg) in jobs {
        h.eat(
            format!(
                "job bench={} trace={} config={}\n",
                bench.name(),
                trace_fingerprint(*bench, max_insts)?,
                config_fingerprint(cfg),
            )
            .as_bytes(),
        );
    }
    Ok(h.hex())
}

/// The cache key for a sweep as invoked: [`cache_key_with`] under the
/// ambient [`code_version`].
///
/// # Errors
///
/// Trace-generation errors from [`trace_fingerprint`].
pub fn cache_key(jobs: &[Job], max_insts: u64, run: RunOptions) -> Result<String, String> {
    cache_key_with(&code_version(), jobs, max_insts, run)
}

/// The content-addressed key for a *single cell* — what the experiment
/// service's result store indexes by. Same components as the sweep-level
/// [`cache_key_with`] (code version, instruction cap, run options, trace
/// fingerprint, config fingerprint), hashed for one job, with a distinct
/// domain prefix so a one-cell sweep key and its cell key never collide.
///
/// # Errors
///
/// Trace-generation errors from [`trace_fingerprint`].
pub fn cell_key_with(
    code_version: &str,
    (bench, cfg): &Job,
    max_insts: u64,
    run: RunOptions,
) -> Result<String, String> {
    let mut h = Fnv64::default();
    h.eat(
        format!(
            "cell code={code_version}\nmax_insts={max_insts}\nrun={run:?}\n\
             bench={} trace={} config={}\n",
            bench.name(),
            trace_fingerprint(*bench, max_insts)?,
            config_fingerprint(cfg),
        )
        .as_bytes(),
    );
    Ok(h.hex())
}

/// The cell key as invoked: [`cell_key_with`] under the ambient
/// [`code_version`].
///
/// # Errors
///
/// Trace-generation errors from [`trace_fingerprint`].
pub fn cell_key(job: &Job, max_insts: u64, run: RunOptions) -> Result<String, String> {
    cell_key_with(&code_version(), job, max_insts, run)
}

/// One result file the manifest vouches for.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The path as the producing binary knew it (manifests sit next to
    /// their artifacts, so the file name alone also resolves).
    pub path: PathBuf,
    /// Size in bytes.
    pub bytes: u64,
    /// FNV-1a of the file content, 16-hex.
    pub fnv64: String,
}

impl Artifact {
    /// Describes a just-written result file.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file back.
    pub fn describe(path: &Path) -> std::io::Result<Artifact> {
        let content = std::fs::read(path)?;
        let mut h = Fnv64::default();
        h.eat(&content);
        Ok(Artifact { path: path.to_path_buf(), bytes: content.len() as u64, fnv64: h.hex() })
    }
}

/// The conventional manifest path for a result file:
/// `results/foo.csv` → `results/foo.manifest.json`.
pub fn manifest_path(out: &Path) -> PathBuf {
    let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("sweep");
    out.with_file_name(format!("{stem}.manifest.json"))
}

/// Renders the manifest document for a completed sweep.
///
/// # Errors
///
/// Trace-generation errors from the cache-key computation.
pub fn manifest_json(
    tool: &str,
    jobs: &[Job],
    max_insts: u64,
    run: RunOptions,
    summary: &SweepSummary,
    artifacts: &[Artifact],
) -> Result<String, String> {
    let code = code_version();
    let key = cache_key_with(&code, jobs, max_insts, run)?;
    let sweep = crate::checkpoint::sweep_id(jobs, max_insts, run);

    // Unique benchmarks in first-appearance order, with trace fingerprints.
    let mut benches: Vec<Benchmark> = Vec::new();
    for (bench, _) in jobs {
        if !benches.contains(bench) {
            benches.push(*bench);
        }
    }
    let bench_rows = benches
        .iter()
        .map(|&b| {
            Ok(format!(
                "    {{\"name\": \"{}\", \"trace_fingerprint\": \"{}\"}}",
                b.name(),
                trace_fingerprint(b, max_insts)?
            ))
        })
        .collect::<Result<Vec<_>, String>>()?
        .join(",\n");

    // Unique configs in first-appearance order, with cell counts.
    let mut configs: Vec<(String, usize)> = Vec::new();
    for (_, cfg) in jobs {
        let fp = config_fingerprint(cfg);
        match configs.iter_mut().find(|(f, _)| *f == fp) {
            Some((_, count)) => *count += 1,
            None => configs.push((fp, 1)),
        }
    }
    let config_rows = configs
        .iter()
        .map(|(fp, count)| format!("    {{\"fingerprint\": \"{fp}\", \"cells\": {count}}}"))
        .collect::<Vec<_>>()
        .join(",\n");

    let artifact_rows = artifacts
        .iter()
        .map(|a| {
            format!(
                "    {{\"path\": \"{}\", \"bytes\": {}, \"fnv64\": \"{}\"}}",
                a.path.display(),
                a.bytes,
                a.fnv64
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    Ok(format!(
        "{{\n\
         \x20 \"schema\": \"{MANIFEST_SCHEMA}\",\n\
         \x20 \"tool\": \"{tool}\",\n\
         \x20 \"code_version\": \"{code}\",\n\
         \x20 \"max_insts\": {max_insts},\n\
         \x20 \"run_options\": \"{run:?}\",\n\
         \x20 \"cache_key\": \"{key}\",\n\
         \x20 \"sweep_id\": \"{sweep:016x}\",\n\
         \x20 \"cells\": {},\n\
         \x20 \"threads\": {},\n\
         \x20 \"resumed\": {},\n\
         \x20 \"sweep_wall_s\": {:.6},\n\
         \x20 \"serial_cell_wall_s\": {:.6},\n\
         \x20 \"benchmarks\": [\n{bench_rows}\n  ],\n\
         \x20 \"configs\": [\n{config_rows}\n  ],\n\
         \x20 \"artifacts\": [\n{artifact_rows}\n  ]\n\
         }}\n",
        summary.cells.len(),
        summary.threads,
        summary.resumed,
        summary.sweep_wall.as_secs_f64(),
        summary.serial_cell_wall.as_secs_f64(),
    ))
}

/// Writes a manifest for a successful sweep next to its artifacts,
/// atomically. This is the one call sweep binaries make; it bundles
/// artifact description, rendering, and the atomic write.
///
/// # Errors
///
/// A message covering either trace-generation or I/O failure — callers
/// report it and exit 2; the result CSV itself is already safely written.
pub fn write_manifest(
    path: &Path,
    tool: &str,
    jobs: &[Job],
    max_insts: u64,
    run: RunOptions,
    summary: &SweepSummary,
    artifact_paths: &[&Path],
) -> Result<(), String> {
    let artifacts = artifact_paths
        .iter()
        .map(|p| Artifact::describe(p).map_err(|e| format!("reading {}: {e}", p.display())))
        .collect::<Result<Vec<_>, String>>()?;
    let doc = manifest_json(tool, jobs, max_insts, run, summary, &artifacts)?;
    write_atomic(path, &doc).map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_sim::machine;

    fn jobs() -> Vec<Job> {
        vec![
            (Benchmark::Compress, machine::baseline_8way()),
            (Benchmark::Li, machine::baseline_8way()),
            (Benchmark::Compress, machine::dependence_8way()),
        ]
    }

    #[test]
    fn fnv_matches_the_checkpoint_convention() {
        // Same constants as checkpoint::sweep_id: empty input is the
        // offset basis; the hex form is 16 lowercase digits.
        assert_eq!(Fnv64::default().digest(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::default();
        h.eat(b"a");
        assert_eq!(h.hex().len(), 16);
        use std::fmt::Write as _;
        let mut via_fmt = Fnv64::default();
        write!(via_fmt, "a").unwrap();
        assert_eq!(via_fmt.digest(), h.digest());
    }

    /// Cell keys are deterministic, sensitive to every component (code
    /// version, cap, run options, bench, config), and domain-separated
    /// from the sweep-level key of the same single-job sweep.
    #[test]
    fn cell_keys_track_every_component() {
        let job = (Benchmark::Compress, machine::baseline_8way());
        let run = RunOptions::default();
        let base = cell_key_with("v1", &job, 2_000, run).unwrap();
        assert_eq!(base, cell_key_with("v1", &job, 2_000, run).unwrap());
        assert_eq!(base.len(), 16);
        assert_ne!(base, cell_key_with("v2", &job, 2_000, run).unwrap());
        assert_ne!(base, cell_key_with("v1", &job, 3_000, run).unwrap());
        let attributed = RunOptions { attribution: true, ..RunOptions::default() };
        assert_ne!(base, cell_key_with("v1", &job, 2_000, attributed).unwrap());
        let other = (Benchmark::Li, machine::baseline_8way());
        assert_ne!(base, cell_key_with("v1", &other, 2_000, run).unwrap());
        let reconfigured = (Benchmark::Compress, machine::dependence_8way());
        assert_ne!(base, cell_key_with("v1", &reconfigured, 2_000, run).unwrap());
        let sweep = cache_key_with("v1", std::slice::from_ref(&job), 2_000, run).unwrap();
        assert_ne!(base, sweep, "cell and sweep keys must not collide");
    }

    #[test]
    fn trace_fingerprints_are_stable_and_cap_sensitive() {
        let a = trace_fingerprint(Benchmark::Compress, 2_000).unwrap();
        assert_eq!(a, trace_fingerprint(Benchmark::Compress, 2_000).unwrap());
        assert_eq!(a.len(), 16);
        assert_ne!(a, trace_fingerprint(Benchmark::Compress, 3_000).unwrap());
        assert_ne!(a, trace_fingerprint(Benchmark::Li, 2_000).unwrap());
    }

    #[test]
    fn config_fingerprints_track_every_field() {
        let base = machine::baseline_8way();
        let mut tweaked = base;
        tweaked.physical_regs += 1;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tweaked));
    }

    /// The cache key is a pure function of (code, trace, config, options):
    /// identical inputs agree; perturbing any one component disagrees.
    #[test]
    fn cache_key_stability_and_perturbation() {
        let jobs = jobs();
        let key = cache_key_with("v1", &jobs, 2_000, RunOptions::default()).unwrap();
        assert_eq!(key, cache_key_with("v1", &jobs, 2_000, RunOptions::default()).unwrap());
        assert_eq!(key.len(), 16);

        // Code perturbation.
        assert_ne!(key, cache_key_with("v2", &jobs, 2_000, RunOptions::default()).unwrap());
        // Trace perturbation (the cap changes every trace's content).
        assert_ne!(key, cache_key_with("v1", &jobs, 2_001, RunOptions::default()).unwrap());
        // Config perturbation.
        let mut tweaked = jobs.clone();
        tweaked[1].1.physical_regs += 8;
        assert_ne!(key, cache_key_with("v1", &tweaked, 2_000, RunOptions::default()).unwrap());
        // Option perturbation (sampled vs exact must never share a key).
        let sampled = RunOptions {
            sampled: Some(ce_sim::SamplingConfig::default()),
            ..RunOptions::default()
        };
        assert_ne!(key, cache_key_with("v1", &jobs, 2_000, sampled).unwrap());
    }

    #[test]
    fn manifest_paths_sit_next_to_results() {
        assert_eq!(
            manifest_path(Path::new("results/fig17_organizations.csv")),
            PathBuf::from("results/fig17_organizations.manifest.json")
        );
    }

    #[test]
    fn artifact_description_hashes_content() {
        let dir = std::env::temp_dir().join(format!("ce-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        let a = Artifact::describe(&path).unwrap();
        assert_eq!(a.bytes, 8);
        assert_eq!(a.fnv64, fnv_hex("a,b\n1,2\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
