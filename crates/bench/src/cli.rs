//! Shared command-line plumbing for the sweep binaries.
//!
//! Every figure/table binary accepts the same two flags:
//!
//! ```text
//! --out PATH    write the result CSV to PATH (default results/<name>.csv)
//! --resume      resume from PATH's checkpoint journal, re-simulating only
//!               unfinished cells
//! ```
//!
//! and finishes through [`finish_sweep`], which enforces one policy
//! everywhere: a fully-successful sweep writes its CSV atomically and
//! deletes the journal; a sweep with failures writes **no** CSV, keeps
//! the journal for a later `--resume`, reports every failure with its
//! [`RunError`](crate::runner::RunError) category, and exits nonzero.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::checkpoint::{write_atomic, CheckpointSpec};
use crate::runner::SweepSummary;

/// Parsed sweep-binary arguments.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Result CSV path.
    pub out: PathBuf,
    /// Resume from the checkpoint journal next to `out`.
    pub resume: bool,
}

impl SweepArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse(default_out: &str) -> SweepArgs {
        match SweepArgs::try_parse(std::env::args().skip(1), default_out) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("usage: [--out PATH] [--resume]   (default --out {default_out})");
                std::process::exit(2);
            }
        }
    }

    /// [`SweepArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(
        args: impl Iterator<Item = String>,
        default_out: &str,
    ) -> Result<SweepArgs, String> {
        let mut out = PathBuf::from(default_out);
        let mut resume = false;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => resume = true,
                "--out" => {
                    out = PathBuf::from(
                        args.next().ok_or("--out needs a path argument")?,
                    );
                }
                other => return Err(format!("unrecognized argument `{other}`")),
            }
        }
        Ok(SweepArgs { out, resume })
    }

    /// The checkpoint spec for this invocation (journal lives next to the
    /// CSV as `<stem>.ckpt.jsonl`).
    pub fn checkpoint(&self) -> CheckpointSpec {
        CheckpointSpec::for_output(&self.out, self.resume)
    }
}

/// Applies the uniform end-of-sweep policy (see the module docs) and
/// returns the process exit code: 0 clean, 1 cell failures, 2 I/O errors.
pub fn finish_sweep(name: &str, summary: &SweepSummary, csv: &str, out: &Path) -> ExitCode {
    if summary.resumed > 0 {
        eprintln!(
            "{name}: resumed {} of {} cells from {}",
            summary.resumed,
            summary.cells.len(),
            CheckpointSpec::for_output(out, true).path.display()
        );
    }
    if summary.failures.is_empty() {
        if let Err(e) = write_atomic(out, csv) {
            eprintln!("{name}: error: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!("{name}: wrote {}", out.display());
        ExitCode::SUCCESS
    } else {
        for failure in &summary.failures {
            eprintln!("{name}: error: {failure}");
        }
        eprintln!(
            "{name}: {} of {} cells failed; no CSV written, checkpoint kept for --resume",
            summary.failures.len(),
            summary.cells.len()
        );
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::try_parse(args.iter().map(|s| s.to_string()), "results/x.csv")
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.out, PathBuf::from("results/x.csv"));
        assert!(!a.resume);
        let a = parse(&["--resume", "--out", "/tmp/y.csv"]).unwrap();
        assert!(a.resume);
        assert_eq!(a.out, PathBuf::from("/tmp/y.csv"));
        assert!(a.checkpoint().path.ends_with("y.ckpt.jsonl"));
    }

    #[test]
    fn rejects_unknown_and_incomplete_args() {
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("frobnicate"));
        assert!(parse(&["--out"]).unwrap_err().contains("path"));
    }
}
