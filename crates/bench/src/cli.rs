//! Shared command-line plumbing for the sweep binaries.
//!
//! Every figure/table binary accepts the same two flags:
//!
//! ```text
//! --out PATH    write the result CSV to PATH (default results/<name>.csv)
//! --resume      resume from PATH's checkpoint journal, re-simulating only
//!               unfinished cells
//! ```
//!
//! and finishes through [`finish_sweep`], which enforces one policy
//! everywhere: a fully-successful sweep writes its CSV atomically and
//! deletes the journal; a sweep with failures writes **no** CSV, keeps
//! the journal for a later `--resume`, reports every failure with its
//! [`RunError`](crate::runner::RunError) category, and exits nonzero.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::checkpoint::{write_atomic, CheckpointSpec};
use crate::runner::SweepSummary;

/// Parsed sweep-binary arguments.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Result CSV path.
    pub out: PathBuf,
    /// Resume from the checkpoint journal next to `out`.
    pub resume: bool,
}

impl SweepArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse(default_out: &str) -> SweepArgs {
        match SweepArgs::try_parse(std::env::args().skip(1), default_out) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("usage: [--out PATH] [--resume]   (default --out {default_out})");
                std::process::exit(2);
            }
        }
    }

    /// [`SweepArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(
        args: impl Iterator<Item = String>,
        default_out: &str,
    ) -> Result<SweepArgs, String> {
        let mut out = PathBuf::from(default_out);
        let mut resume = false;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => resume = true,
                "--out" => {
                    out = PathBuf::from(
                        args.next().ok_or("--out needs a path argument")?,
                    );
                }
                other => return Err(format!("unrecognized argument `{other}`")),
            }
        }
        Ok(SweepArgs { out, resume })
    }

    /// The checkpoint spec for this invocation (journal lives next to the
    /// CSV as `<stem>.ckpt.jsonl`).
    pub fn checkpoint(&self) -> CheckpointSpec {
        CheckpointSpec::for_output(&self.out, self.resume)
    }
}

/// Parsed arguments of `ce-explore`: the sweep flags plus the explorer's
/// own knobs.
///
/// ```text
/// --out PATH      write pareto.csv to PATH (tab02_explore.csv lands next
///                 to it; default results/pareto.csv)
/// --resume        resume from PATH's checkpoint journal
/// --full          exact full-detail simulation instead of sampled
/// --grid NAME     tiny | full (default full)
/// ```
#[derive(Debug, Clone)]
pub struct ExploreArgs {
    /// `pareto.csv` path.
    pub out: PathBuf,
    /// Resume from the checkpoint journal next to `out`.
    pub resume: bool,
    /// Exact simulation (`--full`) instead of the sampled default.
    pub full: bool,
    /// Grid scale.
    pub grid: crate::explore::GridScale,
}

impl ExploreArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse() -> ExploreArgs {
        match ExploreArgs::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--out PATH] [--resume] [--full] [--grid tiny|full]   \
                     (default --out {})",
                    crate::explore::DEFAULT_OUT
                );
                std::process::exit(2);
            }
        }
    }

    /// [`ExploreArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<ExploreArgs, String> {
        let mut parsed = ExploreArgs {
            out: PathBuf::from(crate::explore::DEFAULT_OUT),
            resume: false,
            full: false,
            grid: crate::explore::GridScale::Full,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => parsed.resume = true,
                "--full" => parsed.full = true,
                "--out" => {
                    parsed.out =
                        PathBuf::from(args.next().ok_or("--out needs a path argument")?);
                }
                "--grid" => {
                    parsed.grid = args
                        .next()
                        .ok_or("--grid needs a scale argument (tiny|full)")?
                        .parse()?;
                }
                other => return Err(format!("unrecognized argument `{other}`")),
            }
        }
        Ok(parsed)
    }

    /// The checkpoint spec for this invocation (journal lives next to the
    /// CSV as `<stem>.ckpt.jsonl`).
    pub fn checkpoint(&self) -> CheckpointSpec {
        CheckpointSpec::for_output(&self.out, self.resume)
    }
}

/// Parsed arguments of the report-style binaries (the delay figure/table
/// binaries), which take only `--out` — they have no checkpoint journal
/// because the delay models are pure functions with no cells to resume.
#[derive(Debug, Clone)]
pub struct OutArgs {
    /// Result CSV path.
    pub out: PathBuf,
}

impl OutArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse(default_out: &str) -> OutArgs {
        match OutArgs::try_parse(std::env::args().skip(1), default_out) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("usage: [--out PATH]   (default --out {default_out})");
                std::process::exit(2);
            }
        }
    }

    /// [`OutArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(
        args: impl Iterator<Item = String>,
        default_out: &str,
    ) -> Result<OutArgs, String> {
        let mut out = PathBuf::from(default_out);
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--out" => {
                    out = PathBuf::from(
                        args.next().ok_or("--out needs a path argument")?,
                    );
                }
                other => return Err(format!("unrecognized argument `{other}`")),
            }
        }
        Ok(OutArgs { out })
    }
}

/// Finishes a report-style binary: on `Ok` writes the CSV atomically
/// (tempfile + rename); on `Err` writes nothing and reports the model
/// failure. Exit codes mirror [`finish_sweep`]: 0 clean, 1 the models
/// refused to evaluate, 2 I/O errors.
pub fn finish_report(
    name: &str,
    csv: Result<String, impl std::fmt::Display>,
    out: &Path,
) -> ExitCode {
    match csv {
        Ok(csv) => {
            if let Err(e) = write_atomic(out, &csv) {
                eprintln!("{name}: error: writing {}: {e}", out.display());
                return ExitCode::from(2);
            }
            eprintln!("{name}: wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{name}: error: {e}; no CSV written");
            ExitCode::from(1)
        }
    }
}

/// Applies the uniform end-of-sweep policy (see the module docs) and
/// returns the process exit code: 0 clean, 1 cell failures, 2 I/O errors.
pub fn finish_sweep(name: &str, summary: &SweepSummary, csv: &str, out: &Path) -> ExitCode {
    if summary.resumed > 0 {
        eprintln!(
            "{name}: resumed {} of {} cells from {}",
            summary.resumed,
            summary.cells.len(),
            CheckpointSpec::for_output(out, true).path.display()
        );
    }
    if summary.failures.is_empty() {
        if let Err(e) = write_atomic(out, csv) {
            eprintln!("{name}: error: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!("{name}: wrote {}", out.display());
        ExitCode::SUCCESS
    } else {
        for failure in &summary.failures {
            eprintln!("{name}: error: {failure}");
        }
        eprintln!(
            "{name}: {} of {} cells failed; no CSV written, checkpoint kept for --resume",
            summary.failures.len(),
            summary.cells.len()
        );
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::try_parse(args.iter().map(|s| s.to_string()), "results/x.csv")
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.out, PathBuf::from("results/x.csv"));
        assert!(!a.resume);
        let a = parse(&["--resume", "--out", "/tmp/y.csv"]).unwrap();
        assert!(a.resume);
        assert_eq!(a.out, PathBuf::from("/tmp/y.csv"));
        assert!(a.checkpoint().path.ends_with("y.ckpt.jsonl"));
    }

    #[test]
    fn rejects_unknown_and_incomplete_args() {
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("frobnicate"));
        assert!(parse(&["--out"]).unwrap_err().contains("path"));
    }

    #[test]
    fn explore_args_defaults_flags_and_rejections() {
        let parse = |args: &[&str]| ExploreArgs::try_parse(args.iter().map(|s| s.to_string()));
        let a = parse(&[]).unwrap();
        assert_eq!(a.out, PathBuf::from("results/pareto.csv"));
        assert!(!a.resume && !a.full);
        assert_eq!(a.grid, crate::explore::GridScale::Full);

        let a = parse(&["--grid", "tiny", "--full", "--resume", "--out", "/tmp/p.csv"]).unwrap();
        assert!(a.resume && a.full);
        assert_eq!(a.grid, crate::explore::GridScale::Tiny);
        assert_eq!(a.out, PathBuf::from("/tmp/p.csv"));
        assert!(a.checkpoint().path.ends_with("p.ckpt.jsonl"));

        assert!(parse(&["--grid", "huge"]).unwrap_err().contains("huge"));
        assert!(parse(&["--grid"]).unwrap_err().contains("scale"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("frobnicate"));
    }

    fn parse_out(args: &[&str]) -> Result<OutArgs, String> {
        OutArgs::try_parse(args.iter().map(|s| s.to_string()), "results/x.csv")
    }

    #[test]
    fn out_args_defaults_and_flags() {
        assert_eq!(parse_out(&[]).unwrap().out, PathBuf::from("results/x.csv"));
        assert_eq!(
            parse_out(&["--out", "/tmp/y.csv"]).unwrap().out,
            PathBuf::from("/tmp/y.csv")
        );
        assert!(parse_out(&["--resume"]).unwrap_err().contains("resume"));
        assert!(parse_out(&["--out"]).unwrap_err().contains("path"));
    }

    #[test]
    fn finish_report_writes_on_ok_and_not_on_err() {
        let dir = std::env::temp_dir().join(format!("ce-finish-report-{}", std::process::id()));
        let out = dir.join("ok.csv");
        let code = finish_report("t", Ok::<_, String>("a,b\n1,2\n".into()), &out);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "a,b\n1,2\n");

        let out = dir.join("err.csv");
        let code = finish_report("t", Err::<String, _>("model refused"), &out);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::from(1)));
        assert!(!out.exists(), "no CSV on model failure");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
