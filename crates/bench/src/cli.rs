//! Shared command-line plumbing for the sweep binaries.
//!
//! Every figure/table binary accepts the same flags:
//!
//! ```text
//! --out PATH        write the result CSV to PATH (default results/<name>.csv)
//! --resume          resume from PATH's checkpoint journal, re-simulating only
//!                   unfinished cells
//! --telemetry PATH  write the JSONL engine-telemetry journal to PATH
//! --trace-out PATH  write a Chrome trace_event timeline (Perfetto) to PATH
//! --manifest PATH   write the run manifest to PATH (default: next to the
//!                   CSV as <stem>.manifest.json — always written)
//! --progress        force the live progress line on (default: on when
//!                   stderr is a TTY and not resuming)
//! --quiet           suppress the progress line and info messages
//! ```
//!
//! and finishes through [`finish_sweep`], which enforces one policy
//! everywhere: a fully-successful sweep writes its CSV atomically, writes
//! a content-addressed [`manifest`](crate::manifest) next to it, and
//! deletes the journal; a sweep with failures writes **no** CSV and no
//! manifest, keeps the journal for a later `--resume`, reports every
//! failure with its [`RunError`](crate::runner::RunError) category, and
//! exits nonzero.

use std::io::IsTerminal as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::checkpoint::{write_atomic, CheckpointSpec};
use crate::manifest;
use crate::runner::{cell_weights, Job, RunOptions, SweepSummary};
use crate::telemetry::{Telemetry, TelemetryConfig};

/// The usage fragment for the shared observability flags.
const OBS_USAGE: &str =
    "[--telemetry PATH] [--trace-out PATH] [--manifest PATH] [--progress] [--quiet]";

/// The shared observability flags every sweep/explore binary accepts.
#[derive(Debug, Clone, Default)]
pub struct ObsFlags {
    /// `--telemetry PATH`: write the JSONL engine-telemetry journal.
    pub telemetry: Option<PathBuf>,
    /// `--trace-out PATH`: write a Chrome `trace_event` timeline.
    pub trace_out: Option<PathBuf>,
    /// `--manifest PATH`: override the manifest path (default: next to
    /// the CSV).
    pub manifest: Option<PathBuf>,
    /// `--progress`: force the live progress line on.
    pub progress: bool,
    /// `--quiet`: no progress line, no info messages (failures still
    /// print — errors are not chatter).
    pub quiet: bool,
}

impl ObsFlags {
    /// Tries to consume `arg` (and its value, if any) as one of the
    /// shared observability flags. Returns `false` when the flag is not
    /// ours — the caller then reports it unrecognized.
    ///
    /// # Errors
    ///
    /// A message naming the incomplete argument.
    fn try_match<I: Iterator<Item = String>>(
        &mut self,
        arg: &str,
        args: &mut I,
    ) -> Result<bool, String> {
        match arg {
            "--telemetry" => {
                self.telemetry =
                    Some(PathBuf::from(args.next().ok_or("--telemetry needs a path argument")?));
            }
            "--trace-out" => {
                self.trace_out =
                    Some(PathBuf::from(args.next().ok_or("--trace-out needs a path argument")?));
            }
            "--manifest" => {
                self.manifest =
                    Some(PathBuf::from(args.next().ok_or("--manifest needs a path argument")?));
            }
            "--progress" => self.progress = true,
            "--quiet" => self.quiet = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Validates flag combinations after parsing.
    fn validate(&self) -> Result<(), String> {
        if self.progress && self.quiet {
            return Err("--progress conflicts with --quiet".into());
        }
        Ok(())
    }

    /// Whether the live progress line should render: forced on by
    /// `--progress`, forced off by `--quiet`, otherwise on exactly when
    /// stderr is a TTY and the run is not a `--resume` replay (resumed
    /// runs are usually scripted recovery; their logs should stay clean).
    pub fn progress_enabled(&self, resume: bool) -> bool {
        if self.quiet {
            return false;
        }
        self.progress || (std::io::stderr().is_terminal() && !resume)
    }

    /// Builds the [`Telemetry`] handle these flags ask for, with ETA
    /// weights for the given sweep. Returns the zero-cost disabled handle
    /// when nothing is requested.
    ///
    /// # Errors
    ///
    /// I/O errors creating the telemetry journal.
    pub fn telemetry(
        &self,
        name: &str,
        jobs: &[Job],
        max_insts: u64,
        resume: bool,
    ) -> std::io::Result<Telemetry> {
        Telemetry::create(
            &TelemetryConfig {
                name: name.to_owned(),
                journal: self.telemetry.clone(),
                chrome_out: self.trace_out.clone(),
                progress: self.progress_enabled(resume),
            },
            cell_weights(jobs, max_insts),
            max_insts,
        )
    }

    /// Where the run manifest goes: `--manifest` when given, else next to
    /// the result file.
    pub fn manifest_path(&self, out: &Path) -> PathBuf {
        self.manifest.clone().unwrap_or_else(|| manifest::manifest_path(out))
    }
}

/// Parsed sweep-binary arguments.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Result CSV path.
    pub out: PathBuf,
    /// Resume from the checkpoint journal next to `out`.
    pub resume: bool,
    /// Shared observability flags.
    pub obs: ObsFlags,
}

impl SweepArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse(default_out: &str) -> SweepArgs {
        match SweepArgs::try_parse(std::env::args().skip(1), default_out) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--out PATH] [--resume] {OBS_USAGE}   \
                     (default --out {default_out})"
                );
                std::process::exit(2);
            }
        }
    }

    /// [`SweepArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(
        args: impl Iterator<Item = String>,
        default_out: &str,
    ) -> Result<SweepArgs, String> {
        let mut out = PathBuf::from(default_out);
        let mut resume = false;
        let mut obs = ObsFlags::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => resume = true,
                "--out" => {
                    out = PathBuf::from(
                        args.next().ok_or("--out needs a path argument")?,
                    );
                }
                other => {
                    if !obs.try_match(other, &mut args)? {
                        return Err(format!("unrecognized argument `{other}`"));
                    }
                }
            }
        }
        obs.validate()?;
        Ok(SweepArgs { out, resume, obs })
    }

    /// The checkpoint spec for this invocation (journal lives next to the
    /// CSV as `<stem>.ckpt.jsonl`).
    pub fn checkpoint(&self) -> CheckpointSpec {
        CheckpointSpec::for_output(&self.out, self.resume)
    }
}

/// Parsed arguments of `ce-explore`: the sweep flags plus the explorer's
/// own knobs.
///
/// ```text
/// --out PATH      write pareto.csv to PATH (tab02_explore.csv lands next
///                 to it; default results/pareto.csv)
/// --resume        resume from PATH's checkpoint journal
/// --full          exact full-detail simulation instead of sampled
/// --grid NAME     tiny | full (default full)
/// ```
#[derive(Debug, Clone)]
pub struct ExploreArgs {
    /// `pareto.csv` path.
    pub out: PathBuf,
    /// Resume from the checkpoint journal next to `out`.
    pub resume: bool,
    /// Exact simulation (`--full`) instead of the sampled default.
    pub full: bool,
    /// Grid scale.
    pub grid: crate::explore::GridScale,
    /// Shared observability flags.
    pub obs: ObsFlags,
}

impl ExploreArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse() -> ExploreArgs {
        match ExploreArgs::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--out PATH] [--resume] [--full] [--grid tiny|full] \
                     {OBS_USAGE}   (default --out {})",
                    crate::explore::DEFAULT_OUT
                );
                std::process::exit(2);
            }
        }
    }

    /// [`ExploreArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<ExploreArgs, String> {
        let mut parsed = ExploreArgs {
            out: PathBuf::from(crate::explore::DEFAULT_OUT),
            resume: false,
            full: false,
            grid: crate::explore::GridScale::Full,
            obs: ObsFlags::default(),
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => parsed.resume = true,
                "--full" => parsed.full = true,
                "--out" => {
                    parsed.out =
                        PathBuf::from(args.next().ok_or("--out needs a path argument")?);
                }
                "--grid" => {
                    parsed.grid = args
                        .next()
                        .ok_or("--grid needs a scale argument (tiny|full)")?
                        .parse()?;
                }
                other => {
                    if !parsed.obs.try_match(other, &mut args)? {
                        return Err(format!("unrecognized argument `{other}`"));
                    }
                }
            }
        }
        parsed.obs.validate()?;
        Ok(parsed)
    }

    /// The checkpoint spec for this invocation (journal lives next to the
    /// CSV as `<stem>.ckpt.jsonl`).
    pub fn checkpoint(&self) -> CheckpointSpec {
        CheckpointSpec::for_output(&self.out, self.resume)
    }
}

/// Parsed arguments of the report-style binaries (the delay figure/table
/// binaries), which take only `--out` — they have no checkpoint journal
/// because the delay models are pure functions with no cells to resume.
#[derive(Debug, Clone)]
pub struct OutArgs {
    /// Result CSV path.
    pub out: PathBuf,
}

impl OutArgs {
    /// Parses `std::env::args`, exiting with code 2 and a usage message on
    /// anything unrecognized.
    pub fn parse(default_out: &str) -> OutArgs {
        match OutArgs::try_parse(std::env::args().skip(1), default_out) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("usage: [--out PATH]   (default --out {default_out})");
                std::process::exit(2);
            }
        }
    }

    /// [`OutArgs::parse`] over an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// A message naming the unrecognized or incomplete argument.
    pub fn try_parse(
        args: impl Iterator<Item = String>,
        default_out: &str,
    ) -> Result<OutArgs, String> {
        let mut out = PathBuf::from(default_out);
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--out" => {
                    out = PathBuf::from(
                        args.next().ok_or("--out needs a path argument")?,
                    );
                }
                other => return Err(format!("unrecognized argument `{other}`")),
            }
        }
        Ok(OutArgs { out })
    }
}

/// Finishes a report-style binary: on `Ok` writes the CSV atomically
/// (tempfile + rename); on `Err` writes nothing and reports the model
/// failure. Exit codes mirror [`finish_sweep`]: 0 clean, 1 the models
/// refused to evaluate, 2 I/O errors.
pub fn finish_report(
    name: &str,
    csv: Result<String, impl std::fmt::Display>,
    out: &Path,
) -> ExitCode {
    match csv {
        Ok(csv) => {
            if let Err(e) = write_atomic(out, &csv) {
                eprintln!("{name}: error[io]: writing {}: {e}", out.display());
                return ExitCode::from(2);
            }
            eprintln!("{name}: wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{name}: error: {e}; no CSV written");
            ExitCode::from(1)
        }
    }
}

/// Applies the uniform end-of-sweep policy (see the module docs) and
/// returns the process exit code: 0 clean, 1 cell failures, 2 I/O errors.
///
/// On success the CSV is written atomically and a content-addressed run
/// manifest lands next to it (or at `--manifest`), vouching for the CSV's
/// bytes and carrying the cache key of `(code version, traces, configs,
/// options)`. A sweep with failures writes neither.
pub fn finish_sweep(
    name: &str,
    args: &SweepArgs,
    jobs: &[Job],
    max_insts: u64,
    run: RunOptions,
    summary: &SweepSummary,
    csv: &str,
) -> ExitCode {
    let out = args.out.as_path();
    if summary.resumed > 0 && !args.obs.quiet {
        eprintln!(
            "{name}: resumed {} of {} cells from {}",
            summary.resumed,
            summary.cells.len(),
            CheckpointSpec::for_output(out, true).path.display()
        );
    }
    if summary.failures.is_empty() {
        if let Err(e) = write_atomic(out, csv) {
            eprintln!("{name}: error[io]: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
        let manifest_out = args.obs.manifest_path(out);
        if let Err(e) = manifest::write_manifest(
            &manifest_out,
            name,
            jobs,
            max_insts,
            run,
            summary,
            &[out],
        ) {
            eprintln!("{name}: error[io]: manifest: {e}");
            return ExitCode::from(2);
        }
        if !args.obs.quiet {
            eprintln!("{name}: wrote {}", out.display());
            eprintln!("{name}: wrote {}", manifest_out.display());
        }
        ExitCode::SUCCESS
    } else {
        for failure in &summary.failures {
            eprintln!("{name}: error: {failure}");
        }
        eprintln!(
            "{name}: {} of {} cells failed; no CSV written, checkpoint kept for --resume",
            summary.failures.len(),
            summary.cells.len()
        );
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::try_parse(args.iter().map(|s| s.to_string()), "results/x.csv")
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.out, PathBuf::from("results/x.csv"));
        assert!(!a.resume);
        let a = parse(&["--resume", "--out", "/tmp/y.csv"]).unwrap();
        assert!(a.resume);
        assert_eq!(a.out, PathBuf::from("/tmp/y.csv"));
        assert!(a.checkpoint().path.ends_with("y.ckpt.jsonl"));
    }

    #[test]
    fn rejects_unknown_and_incomplete_args() {
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("frobnicate"));
        assert!(parse(&["--out"]).unwrap_err().contains("path"));
    }

    #[test]
    fn explore_args_defaults_flags_and_rejections() {
        let parse = |args: &[&str]| ExploreArgs::try_parse(args.iter().map(|s| s.to_string()));
        let a = parse(&[]).unwrap();
        assert_eq!(a.out, PathBuf::from("results/pareto.csv"));
        assert!(!a.resume && !a.full);
        assert_eq!(a.grid, crate::explore::GridScale::Full);

        let a = parse(&["--grid", "tiny", "--full", "--resume", "--out", "/tmp/p.csv"]).unwrap();
        assert!(a.resume && a.full);
        assert_eq!(a.grid, crate::explore::GridScale::Tiny);
        assert_eq!(a.out, PathBuf::from("/tmp/p.csv"));
        assert!(a.checkpoint().path.ends_with("p.ckpt.jsonl"));

        assert!(parse(&["--grid", "huge"]).unwrap_err().contains("huge"));
        assert!(parse(&["--grid"]).unwrap_err().contains("scale"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("frobnicate"));
    }

    fn parse_out(args: &[&str]) -> Result<OutArgs, String> {
        OutArgs::try_parse(args.iter().map(|s| s.to_string()), "results/x.csv")
    }

    #[test]
    fn out_args_defaults_and_flags() {
        assert_eq!(parse_out(&[]).unwrap().out, PathBuf::from("results/x.csv"));
        assert_eq!(
            parse_out(&["--out", "/tmp/y.csv"]).unwrap().out,
            PathBuf::from("/tmp/y.csv")
        );
        assert!(parse_out(&["--resume"]).unwrap_err().contains("resume"));
        assert!(parse_out(&["--out"]).unwrap_err().contains("path"));
    }

    #[test]
    fn obs_flags_parse_on_both_arg_types() {
        let a = parse(&[
            "--telemetry", "/tmp/t.jsonl", "--trace-out", "/tmp/t.trace.json",
            "--manifest", "/tmp/t.manifest.json", "--quiet",
        ])
        .unwrap();
        assert_eq!(a.obs.telemetry, Some(PathBuf::from("/tmp/t.jsonl")));
        assert_eq!(a.obs.trace_out, Some(PathBuf::from("/tmp/t.trace.json")));
        assert_eq!(a.obs.manifest, Some(PathBuf::from("/tmp/t.manifest.json")));
        assert!(a.obs.quiet && !a.obs.progress);

        let e = ExploreArgs::try_parse(
            ["--progress", "--telemetry", "/tmp/e.jsonl"].iter().map(|s| s.to_string()),
        )
        .unwrap();
        assert!(e.obs.progress);
        assert_eq!(e.obs.telemetry, Some(PathBuf::from("/tmp/e.jsonl")));

        assert!(parse(&["--telemetry"]).unwrap_err().contains("path"));
        assert!(parse(&["--progress", "--quiet"]).unwrap_err().contains("conflicts"));
    }

    #[test]
    fn progress_rules() {
        // Test processes have no TTY on stderr, so auto mode is off and
        // only the explicit flags matter.
        let auto = ObsFlags::default();
        assert!(!auto.progress_enabled(false), "no TTY in tests");
        let forced = ObsFlags { progress: true, ..ObsFlags::default() };
        assert!(forced.progress_enabled(false));
        assert!(forced.progress_enabled(true), "explicit --progress wins over --resume");
        let quiet = ObsFlags { quiet: true, ..ObsFlags::default() };
        assert!(!quiet.progress_enabled(false));
    }

    #[test]
    fn manifest_path_defaults_next_to_csv_and_obeys_override() {
        let obs = ObsFlags::default();
        assert_eq!(
            obs.manifest_path(Path::new("results/fig13_ipc.csv")),
            PathBuf::from("results/fig13_ipc.manifest.json")
        );
        let obs = ObsFlags { manifest: Some(PathBuf::from("/tmp/m.json")), ..obs };
        assert_eq!(obs.manifest_path(Path::new("results/fig13_ipc.csv")), PathBuf::from("/tmp/m.json"));
    }

    /// A successful sweep finishes into a CSV *and* a schema-tagged
    /// manifest whose artifact entry hashes the CSV bytes.
    #[test]
    fn finish_sweep_writes_csv_and_manifest() {
        use ce_workloads::Benchmark;
        let dir = std::env::temp_dir().join(format!("ce-finish-sweep-{}", std::process::id()));
        let out = dir.join("mini.csv");
        let jobs: Vec<Job> =
            vec![(Benchmark::Compress, ce_sim::machine::baseline_8way())];
        let summary = crate::runner::run_sweep(&jobs, 2_000, RunOptions::default());
        let args = SweepArgs {
            out: out.clone(),
            resume: false,
            obs: ObsFlags { quiet: true, ..ObsFlags::default() },
        };
        let code =
            finish_sweep("mini", &args, &jobs, 2_000, RunOptions::default(), &summary, "a,b\n");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "a,b\n");
        let manifest_text = std::fs::read_to_string(dir.join("mini.manifest.json")).unwrap();
        let doc = crate::json::Json::parse(&manifest_text).unwrap();
        use crate::json::Json;
        assert_eq!(
            doc.at("schema").and_then(Json::as_str),
            Some(crate::manifest::MANIFEST_SCHEMA)
        );
        assert_eq!(doc.at("cells").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.at("artifacts.0.bytes").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.at("cache_key").and_then(Json::as_str).map(str::len), Some(16));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_report_writes_on_ok_and_not_on_err() {
        let dir = std::env::temp_dir().join(format!("ce-finish-report-{}", std::process::id()));
        let out = dir.join("ok.csv");
        let code = finish_report("t", Ok::<_, String>("a,b\n1,2\n".into()), &out);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "a,b\n1,2\n");

        let out = dir.join("err.csv");
        let code = finish_report("t", Err::<String, _>("model refused"), &out);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::from(1)));
        assert!(!out.exists(), "no CSV on model failure");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
