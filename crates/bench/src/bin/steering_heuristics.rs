//! Steering-heuristic design space (extending Section 5.1's "a number of
//! heuristics are possible"): the paper's dependence heuristic vs a
//! dependence-blind round-robin, an occupancy-balanced dependence variant,
//! and random steering, all on the clustered FIFO machine.
//!
//! The comparison separates the two forces at work: *load balance* (round
//! robin has it, random nearly so) and *dependence awareness* (chains stay
//! together, bypasses stay local). The paper's heuristic is the only one
//! with both.

use ce_sim::{machine, Simulator, SteeringPolicy};

fn main() {
    let policies: [(&str, SteeringPolicy); 4] = [
        ("dependence", SteeringPolicy::Dependence),
        ("load-bal", SteeringPolicy::LoadBalanced),
        ("round-robin", SteeringPolicy::RoundRobin),
        ("random", SteeringPolicy::Random { seed: 0xce11 }),
    ];
    println!("Steering heuristics on the 2x4-way clustered FIFO machine");
    print!("{:<10}", "benchmark");
    for (name, _) in &policies {
        print!(" {:>12} {:>7}", name, "IC%");
    }
    println!();
    ce_bench::rule(10 + policies.len() * 21);
    for (bench, trace) in ce_bench::load_all_traces() {
        print!("{:<10}", bench.name());
        for (_, policy) in &policies {
            let mut cfg = machine::clustered_fifos_8way();
            cfg.steering = *policy;
            let stats = Simulator::new(cfg).run(&trace);
            print!(
                " {:>12.3} {:>6.1}%",
                stats.ipc(),
                stats.intercluster_bypass_frequency() * 100.0
            );
        }
        println!();
    }
    println!();
    println!("Dependence awareness, not balance, is what recovers IPC: round-robin is");
    println!("perfectly balanced yet pays nearly random-level inter-cluster traffic.");
}
