//! `sweephealth` — aggregates engine-telemetry journals into a health
//! report: throughput, retry/quarantine census, worker utilization, the
//! straggler top-N, and wall-clock against the perfectly-packed ideal.
//!
//! ```text
//! sweephealth [--top N] JOURNAL...
//! ```
//!
//! Each journal (written by a sweep's `--telemetry PATH`) is parsed with
//! the same torn-line tolerance as the checkpoint loader, so journals
//! from killed runs report cleanly. A journal is *healthy* when its
//! sweep ended with every cell completed and none failed.
//!
//! The last line is machine-readable, one per invocation:
//!
//! ```text
//! sweephealth: ok journals=2 cells=28 failed=0
//! sweephealth: error[unhealthy] journals=2 unhealthy=1 failed=3
//! ```
//!
//! Journals written through `cesimd` carry result-cache and trace-cache
//! events; when any are present the ok line gains
//! ` cache_hits=H cache_misses=M trace_evictions=E` (CI's incremental
//! re-sweep gate greps these).
//!
//! Exit codes follow the repo contract: 0 every journal healthy, 1 any
//! unhealthy, 2 I/O, parse, or usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ce_bench::telemetry::HealthReport;

fn main() -> ExitCode {
    let mut top = 5usize;
    let mut journals: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage("--top needs a count argument");
                };
                top = n;
            }
            other if other.starts_with("--") => {
                return usage(&format!("unrecognized `{other}`"));
            }
            other => journals.push(PathBuf::from(other)),
        }
    }
    if journals.is_empty() {
        return usage("expected at least one JOURNAL path");
    }

    let mut cells = 0usize;
    let mut failed = 0usize;
    let mut unhealthy = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut trace_evictions = 0u64;
    for (i, path) in journals.iter().enumerate() {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("sweephealth: error[io] {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let report = match HealthReport::from_journal(&text) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("sweephealth: error[journal] {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if i > 0 {
            println!();
        }
        println!("== {}", path.display());
        print!("{}", report.render(top));
        cells += report.completed;
        failed += report.failed;
        cache_hits += report.cache_hits;
        cache_misses += report.cache_misses;
        trace_evictions += report.trace_evictions;
        if !report.healthy() {
            unhealthy += 1;
        }
    }

    if unhealthy == 0 {
        // Cache fields appear only when the journals carry cache events
        // (i.e. the sweep ran through cesimd), so plain sweeps keep the
        // historical line format.
        let mut cache = String::new();
        if cache_hits + cache_misses > 0 || trace_evictions > 0 {
            cache = format!(
                " cache_hits={cache_hits} cache_misses={cache_misses} \
                 trace_evictions={trace_evictions}"
            );
        }
        println!(
            "sweephealth: ok journals={} cells={cells} failed=0{cache}",
            journals.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "sweephealth: error[unhealthy] journals={} unhealthy={unhealthy} failed={failed}",
            journals.len()
        );
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sweephealth: error[usage] {msg}");
    eprintln!("usage: sweephealth [--top N] JOURNAL...");
    ExitCode::from(2)
}
