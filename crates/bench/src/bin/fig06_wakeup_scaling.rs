//! Figure 6: wakeup delay component scaling with feature size for an
//! 8-way, 64-entry window.
//!
//! ```text
//! cargo run -p ce-bench --bin fig06_wakeup_scaling [--out PATH]
//! ```
//!
//! Prints the table and writes `fig06_wakeup_scaling.csv` atomically;
//! exits 0 on success, 1 if the delay models refuse to evaluate, 2 on
//! usage or I/O errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::Technology;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = OutArgs::parse("results/fig06_wakeup_scaling.csv");
    println!("Figure 6: wakeup delay breakdown vs feature size (8-way, 64 entries)");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "tech", "tag drive", "tag match", "match OR", "TOTAL", "wire-bound %"
    );
    ce_bench::rule(64);
    for tech in Technology::all() {
        let d = WakeupDelay::compute(&tech, &WakeupParams::new(8, 64));
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>11.1}%",
            tech.feature().to_string(),
            d.tag_drive_ps,
            d.tag_match_ps,
            d.match_or_ps,
            d.total_ps(),
            d.wire_bound_fraction() * 100.0
        );
    }
    println!();
    println!("Paper: tag drive + tag match fraction grows 52% -> 65% from 0.8 um to 0.18 um.");
    finish_report("fig06_wakeup_scaling", delay_csv::fig06_wakeup_scaling(), &args.out)
}
