//! Figure 6: wakeup delay component scaling with feature size for an
//! 8-way, 64-entry window.

use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::Technology;

fn main() {
    println!("Figure 6: wakeup delay breakdown vs feature size (8-way, 64 entries)");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "tech", "tag drive", "tag match", "match OR", "TOTAL", "wire-bound %"
    );
    ce_bench::rule(64);
    for tech in Technology::all() {
        let d = WakeupDelay::compute(&tech, &WakeupParams::new(8, 64));
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>11.1}%",
            tech.feature().to_string(),
            d.tag_drive_ps,
            d.tag_match_ps,
            d.match_or_ps,
            d.total_ps(),
            d.wire_bound_fraction() * 100.0
        );
    }
    println!();
    println!("Paper: tag drive + tag match fraction grows 52% -> 65% from 0.8 um to 0.18 um.");
}
