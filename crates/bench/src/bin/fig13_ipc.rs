//! Figure 13: IPC of the dependence-based microarchitecture (8 FIFOs × 8)
//! versus the baseline 8-way machine with a 64-entry window.
//!
//! ```text
//! cargo run --release -p ce-bench --bin fig13_ipc -- [--out PATH] [--resume]
//! ```
//!
//! Paper result: within 5 % for five of seven benchmarks; worst case 8 %
//! (li).
//!
//! The `fifohead` column attributes the degradation: the share of the
//! FIFO machine's issue slots lost to ready instructions shadowed behind
//! unready FIFO heads — the price of head-only wakeup, and exactly the
//! slots the flexible window recovers.
//!
//! Runs fault-tolerantly: each cell is journaled as it completes, so a
//! killed run restarted with `--resume` re-simulates only unfinished
//! cells and writes a byte-identical CSV.

use std::process::ExitCode;

use ce_bench::api::{self, SweepKind};
use ce_bench::cli::{finish_sweep, SweepArgs};
use ce_bench::runner::{self, SweepOptions};
use ce_sim::StallCause;
use ce_workloads::Benchmark;

fn main() -> ExitCode {
    let args = SweepArgs::parse("results/fig13_ipc.csv");
    // The computation (grid + options) and the CSV renderer come from the
    // shared api plan, so this binary and the cesimd service provably
    // produce the same bytes.
    let machines = api::fig13_machines();
    let plan = api::plan(SweepKind::Fig13);
    let jobs = plan.jobs;
    let max_insts = ce_bench::max_insts();
    let telemetry = match args.obs.telemetry("fig13_ipc", &jobs, max_insts, args.resume) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fig13_ipc: error[io]: telemetry journal: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = SweepOptions {
        run: plan.run,
        checkpoint: Some(args.checkpoint()),
        telemetry,
        ..SweepOptions::default()
    };
    let summary = match runner::run_sweep_ft(&jobs, max_insts, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("fig13_ipc: error[io]: checkpoint journal: {e}");
            return ExitCode::from(2);
        }
    };

    let mut csv = String::new();
    if summary.all_ok() {
        csv = api::fig13_csv(&summary);
        println!("Figure 13: IPC, baseline window vs dependence-based FIFOs (8-way)");
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>10}",
            "benchmark", "window", "dependence", "degradation", "fifohead"
        );
        ce_bench::rule(59);
        let mut results = summary.ok_cells().map(|r| &r.stats);
        let fifo_width = machines[1].1.issue_width as u64;
        let mut degradations = Vec::new();
        for bench in Benchmark::all() {
            let win = results.next().expect("window cell");
            let dep = results.next().expect("fifos cell");
            let degradation = (1.0 - dep.ipc() / win.ipc()) * 100.0;
            degradations.push(degradation);
            let fifo_head = dep.stall_breakdown.get(StallCause::FifoHeadNotReady) as f64
                / (fifo_width * dep.cycles) as f64
                * 100.0;
            println!(
                "{:<10} {:>10.3} {:>12.3} {:>11.1}% {:>9.1}%",
                bench.name(),
                win.ipc(),
                dep.ipc(),
                degradation,
                fifo_head
            );
        }
        let mean = degradations.iter().sum::<f64>() / degradations.len() as f64;
        let max = degradations.iter().cloned().fold(f64::MIN, f64::max);
        println!();
        println!("mean degradation {mean:.1}%, max {max:.1}% (paper: most <5%, max 8%)");
        println!();
    }
    finish_sweep("fig13_ipc", &args, &jobs, max_insts, opts.run, &summary, &csv)
}
