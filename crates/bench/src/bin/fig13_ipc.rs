//! Figure 13: IPC of the dependence-based microarchitecture (8 FIFOs × 8)
//! versus the baseline 8-way machine with a 64-entry window.
//!
//! Paper result: within 5 % for five of seven benchmarks; worst case 8 %
//! (li).

use ce_bench::runner;
use ce_sim::machine;
use ce_workloads::Benchmark;

fn main() {
    println!("Figure 13: IPC, baseline window vs dependence-based FIFOs (8-way)");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "benchmark", "window", "dependence", "degradation"
    );
    ce_bench::rule(48);
    let machines = [("window", machine::baseline_8way()), ("fifos", machine::dependence_8way())];
    let jobs = runner::grid(&machines);
    let mut results = runner::run_all(&jobs).into_iter();
    let mut degradations = Vec::new();
    for bench in Benchmark::all() {
        let win = results.next().expect("window cell");
        let dep = results.next().expect("fifos cell");
        let degradation = (1.0 - dep.ipc() / win.ipc()) * 100.0;
        degradations.push(degradation);
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>11.1}%",
            bench.name(),
            win.ipc(),
            dep.ipc(),
            degradation
        );
    }
    let mean = degradations.iter().sum::<f64>() / degradations.len() as f64;
    let max = degradations.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!("mean degradation {mean:.1}%, max {max:.1}% (paper: most <5%, max 8%)");
}
