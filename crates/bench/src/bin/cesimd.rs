//! `cesimd` — the persistent experiment daemon.
//!
//! ```text
//! cesimd [--socket PATH] [--state DIR] [--max-pending N]
//!        [--degrade-pending N] [--quiet] [--fsck]
//!
//!   --socket PATH       Unix socket to listen on
//!                       (default: <state>/cesimd.sock)
//!   --state DIR         state directory: WAL, result store, journals,
//!                       artifacts (default: cesimd-state)
//!   --max-pending N     reject submissions beyond N pending jobs (8)
//!   --degrade-pending N degrade opt-in jobs to sampled mode at N (4)
//!   --quiet             suppress informational stderr lines
//!   --fsck              audit and repair the state dir, print the
//!                       report, and exit without serving
//! ```
//!
//! Protocol, store layout, and the crash-recovery contract are
//! documented in `ce_bench::service` and DESIGN.md. Talk to it with
//! `cesimctl`. Stop it with SIGTERM (drains, then exits 0); `kill -9`
//! is recoverable — the next start resumes every interrupted job. Every
//! start runs the same audit as `--fsck` first (`ce_bench::fsck`):
//! orphaned tempfiles are swept and corrupt files are moved to
//! `<state>/quarantine/` before any loader touches them.
//!
//! Exit codes: 0 clean shutdown (or clean `--fsck`), 1 `--fsck` found
//! corruption (quarantined, bytes preserved), 2 startup/usage errors
//! (reported as a structured `error[io]`/usage line).
//!
//! `CE_IOFAULT` (e.g. `eio@3,torn@10,crash@25`) arms the deterministic
//! I/O fault-injection seam for chaos testing; see `ce_bench::iofault`.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    use ce_bench::service::{run, ServiceConfig};
    use std::path::PathBuf;

    let mut state_dir = PathBuf::from("cesimd-state");
    let mut socket: Option<PathBuf> = None;
    let mut max_pending = 8usize;
    let mut degrade_pending = 4usize;
    let mut quiet = false;
    let mut fsck_only = false;

    let mut args = std::env::args().skip(1);
    let usage = || {
        eprintln!(
            "usage: cesimd [--socket PATH] [--state DIR] [--max-pending N] \
             [--degrade-pending N] [--quiet] [--fsck]"
        );
        std::process::ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} requires a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
                "--state" => state_dir = PathBuf::from(value("--state")?),
                "--max-pending" => {
                    max_pending = value("--max-pending")?
                        .parse()
                        .map_err(|e| format!("bad --max-pending: {e}"))?;
                }
                "--degrade-pending" => {
                    degrade_pending = value("--degrade-pending")?
                        .parse()
                        .map_err(|e| format!("bad --degrade-pending: {e}"))?;
                }
                "--quiet" => quiet = true,
                "--fsck" => fsck_only = true,
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            return usage();
        }
    }

    // Arm the deterministic I/O fault seam (chaos campaigns set
    // CE_IOFAULT); a bad spec is a usage error, not a silent no-op.
    if let Err(e) = ce_bench::iofault::arm_global_from_env() {
        eprintln!("error: CE_IOFAULT: {e}");
        return usage();
    }

    if fsck_only {
        return match ce_bench::fsck::fsck(&state_dir, true) {
            Ok(report) => {
                println!("{report}");
                if report.clean() {
                    std::process::ExitCode::SUCCESS
                } else {
                    std::process::ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("cesimd: error[io]: fsck: {e}");
                std::process::ExitCode::from(2)
            }
        };
    }

    let config = ServiceConfig {
        socket: socket.unwrap_or_else(|| state_dir.join("cesimd.sock")),
        state_dir,
        max_pending,
        degrade_pending,
        quiet,
    };
    match run(config) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cesimd: error[io]: {e}");
            std::process::ExitCode::from(2)
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("cesimd: error[io]: Unix domain sockets are unavailable on this platform");
    std::process::ExitCode::from(2)
}
