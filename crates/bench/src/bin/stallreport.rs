//! Stall-attribution report: where every unused issue slot went, for the
//! five Figure 17 organizations across all seven kernels.
//!
//! ```text
//! cargo run --release -p ce-bench --bin stallreport -- [--out PATH] [--resume]
//! ```
//!
//! Each cell runs with the attribution accountant enabled; per-cause
//! shares of the issue-slot budget (`issue_width × cycles`) are printed
//! per benchmark and written to `results/stall_report.csv` (the default
//! output path). The identity `sum(causes) + issued == issue_slots` is
//! asserted on every cell — this binary doubles as an end-to-end check
//! of the accountant. `CE_THREADS` and `CE_MAX_INSTS` apply as
//! everywhere in `ce-bench`.
//!
//! Runs fault-tolerantly: each cell is journaled as it completes, so a
//! killed run restarted with `--resume` re-simulates only unfinished
//! cells and writes a byte-identical CSV.

use std::fmt::Write as _;
use std::process::ExitCode;

use ce_bench::cli::{finish_sweep, SweepArgs};
use ce_bench::runner::{self, RunOptions, SweepOptions};
use ce_sim::{machine, StallCause};
use ce_workloads::Benchmark;

fn main() -> ExitCode {
    let args = SweepArgs::parse("results/stall_report.csv");
    let machines = machine::figure17_machines();
    let jobs = runner::grid(&machines);
    let max_insts = ce_bench::max_insts();
    let telemetry = match args.obs.telemetry("stallreport", &jobs, max_insts, args.resume) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("stallreport: error: telemetry journal: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = SweepOptions {
        run: RunOptions { attribution: true, ..RunOptions::default() },
        checkpoint: Some(args.checkpoint()),
        telemetry,
        ..SweepOptions::default()
    };
    let summary = match runner::run_sweep_ft(&jobs, max_insts, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("stallreport: error: checkpoint journal: {e}");
            return ExitCode::from(2);
        }
    };

    let mut csv = String::from("benchmark,machine,cycles,issued,issue_slots,used_pct");
    for cause in StallCause::ALL {
        let _ = write!(csv, ",{}", cause.key());
    }
    csv.push('\n');

    if summary.all_ok() {
        println!("Issue-slot stall attribution (% of issue slots = width x cycles)");
        let mut cells = summary.ok_cells();
        for bench in Benchmark::all() {
            println!();
            println!("{}:", bench.name());
            print!("{:<12} {:>6}", "machine", "used");
            for cause in StallCause::ALL {
                print!(" {:>9}", cause.short());
            }
            println!();
            ce_bench::rule(12 + 7 + StallCause::COUNT * 10);
            for (name, cfg) in &machines {
                let cell = cells.next().expect("one result per cell");
                let stats = &cell.stats;
                let slots = cfg.issue_width as u64 * stats.cycles;
                assert!(
                    stats.stall_breakdown.reconciles(cfg.issue_width, stats.cycles, stats.issued),
                    "{bench}/{name}: attribution does not reconcile"
                );
                let pct = |n: u64| n as f64 / slots as f64 * 100.0;
                print!("{:<12} {:>5.1}%", short(name), pct(stats.issued));
                for cause in StallCause::ALL {
                    print!(" {:>8.1}%", pct(stats.stall_breakdown.get(cause)));
                }
                println!();

                let _ = write!(
                    csv,
                    "{},{},{},{},{},{:.2}",
                    bench.name(),
                    name,
                    stats.cycles,
                    stats.issued,
                    slots,
                    pct(stats.issued)
                );
                for cause in StallCause::ALL {
                    let _ = write!(csv, ",{}", stats.stall_breakdown.get(cause));
                }
                csv.push('\n');
            }
        }

        println!();
        println!(
            "Reading: the FIFO organizations trade `operand` waits for `fifohead` waits —");
        println!("ready instructions shadowed behind unready FIFO heads — and the clustered");
        println!("machines add `xcluster` slots, issue stalled only by the extra bypass cycle.");

        println!();
        println!(
            "sweep: {} cells in {:.2}s wall ({:.2}s summed serial, cells {:.0}-{:.0} ms), \
             {:.2} Mcycles/s aggregate",
            summary.cells.len(),
            summary.sweep_wall.as_secs_f64(),
            summary.serial_cell_wall.as_secs_f64(),
            summary.min_cell_wall.as_secs_f64() * 1e3,
            summary.max_cell_wall.as_secs_f64() * 1e3,
            summary.sim_mcycles_per_s()
        );
        println!();
    }
    finish_sweep("stallreport", &args, &jobs, max_insts, opts.run, &summary, &csv)
}

fn short(name: &str) -> &str {
    match name {
        "1-cluster.1window" => "ideal",
        "2-cluster.FIFOs.dispatch_steer" => "fifo-disp",
        "2-cluster.windows.dispatch_steer" => "win-disp",
        "2-cluster.1window.exec_steer" => "exec-steer",
        "2-cluster.windows.random_steer" => "random",
        other => other,
    }
}
