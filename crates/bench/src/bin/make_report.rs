//! Writes every experiment's data as CSV under `results/`, ready for
//! plotting — one file per paper artifact plus a `summary.csv` with the
//! headline numbers.
//!
//! ```text
//! cargo run --release -p ce-bench --bin make_report [output-dir]
//! ```

use ce_bench::checkpoint::write_atomic;
use ce_bench::{delay_csv, runner};
use ce_core::analysis::{mean_improvement, MachineSpec, Speedup};
use ce_delay::pipeline::ClockComparison;
use ce_delay::{FeatureSize, Technology};
use ce_sim::machine;
use ce_workloads::Benchmark;
use std::fmt::Write as _;
use std::path::Path;

fn write_csv(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    write_atomic(&path, content)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    let dir_arg = std::env::args().nth(1).unwrap_or_else(|| "results".to_owned());
    let dir = Path::new(&dir_arg);
    std::fs::create_dir_all(dir).expect("create output directory");

    // ---- delay-model artifacts ------------------------------------------
    // The same canonical builders the standalone figure/table binaries use,
    // so both regeneration paths stay byte-identical.
    for (name, csv) in [
        ("fig03_rename.csv", delay_csv::fig03_rename()),
        ("fig05_wakeup.csv", delay_csv::fig05_wakeup()),
        ("fig06_wakeup_scaling.csv", delay_csv::fig06_wakeup_scaling()),
        ("fig08_select.csv", delay_csv::fig08_select()),
        ("tab01_bypass.csv", delay_csv::tab01_bypass()),
        ("tab02_overall.csv", delay_csv::tab02_overall()),
        ("tab04_restable.csv", delay_csv::tab04_restable()),
    ] {
        let csv = csv.unwrap_or_else(|e| panic!("building {name}: {e}"));
        write_csv(dir, name, &csv);
    }
    let t018 = Technology::new(FeatureSize::U018);

    // ---- simulator artifacts --------------------------------------------
    println!("running simulations (this loads and runs all seven kernels)…");
    let fig17_machines = machine::figure17_machines();
    let mut jobs: Vec<runner::Job> = Vec::new();
    for bench in Benchmark::all() {
        jobs.push((bench, machine::baseline_8way()));
        jobs.push((bench, machine::dependence_8way()));
        jobs.push((bench, machine::clustered_fifos_8way()));
        for (_, cfg) in &fig17_machines {
            jobs.push((bench, *cfg));
        }
    }
    let mut results = runner::run_all(&jobs).into_iter();

    let mut fig13 = String::from("benchmark,window_ipc,dependence_ipc\n");
    let mut fig15 = String::from("benchmark,window_ipc,clustered_ipc,ic_bypass_pct,speedup\n");
    let mut fig17 = String::from("benchmark,machine,ipc,ic_bypass_pct\n");
    let mut speedups = Vec::new();
    for bench in Benchmark::all() {
        let win = results.next().expect("window cell");
        let dep = results.next().expect("fifos cell");
        let _ = writeln!(fig13, "{},{:.3},{:.3}", bench.name(), win.ipc(), dep.ipc());

        let clustered = results.next().expect("clustered cell");
        let s = Speedup::combine(
            &t018,
            MachineSpec::paper_dependence_machine(),
            win.ipc(),
            clustered.ipc(),
        );
        let _ = writeln!(
            fig15,
            "{},{:.3},{:.3},{:.1},{:.3}",
            bench.name(),
            win.ipc(),
            clustered.ipc(),
            clustered.intercluster_bypass_frequency() * 100.0,
            s.speedup
        );
        speedups.push(s);

        for (name, _) in &fig17_machines {
            let stats = results.next().expect("fig17 cell");
            let _ = writeln!(
                fig17,
                "{},{},{:.3},{:.1}",
                bench.name(),
                name,
                stats.ipc(),
                stats.intercluster_bypass_frequency() * 100.0
            );
        }
    }
    write_csv(dir, "fig13_ipc.csv", &fig13);
    write_csv(dir, "fig15_clustered.csv", &fig15);
    write_csv(dir, "fig17_organizations.csv", &fig17);

    // ---- summary ----------------------------------------------------------
    let cmp = ClockComparison::compute(&t018, 8, 64, 2);
    let mut summary = String::from("metric,value,paper\n");
    let _ = writeln!(summary, "clock_ratio_018um,{:.3},1.25", cmp.conservative_speedup());
    let _ = writeln!(
        summary,
        "optimistic_clock_improvement,{:.3},0.39",
        cmp.optimistic_improvement()
    );
    let _ = writeln!(
        summary,
        "mean_speedup_improvement,{:.3},0.16",
        mean_improvement(&speedups)
    );
    write_csv(dir, "summary.csv", &summary);
}
