//! Writes every experiment's data as CSV under `results/`, ready for
//! plotting — one file per paper artifact plus a `summary.csv` with the
//! headline numbers.
//!
//! ```text
//! cargo run --release -p ce-bench --bin make_report [output-dir]
//! ```

use ce_core::analysis::{mean_improvement, MachineSpec, Speedup};
use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::pipeline::ClockComparison;
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{FeatureSize, PipelineDelays, Technology};
use ce_bench::runner;
use ce_sim::machine;
use ce_workloads::Benchmark;
use std::fmt::Write as _;
use std::path::Path;

fn write_csv(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    std::fs::write(&path, content)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    let dir_arg = std::env::args().nth(1).unwrap_or_else(|| "results".to_owned());
    let dir = Path::new(&dir_arg);
    std::fs::create_dir_all(dir).expect("create output directory");

    // ---- delay-model artifacts ------------------------------------------
    let mut csv = String::from("tech_um,issue_width,decode_ps,wordline_ps,bitline_ps,senseamp_ps,total_ps\n");
    for tech in Technology::all() {
        for iw in [2usize, 4, 8] {
            let d = RenameDelay::compute(&tech, &RenameParams::new(iw));
            let _ = writeln!(
                csv,
                "{},{iw},{:.1},{:.1},{:.1},{:.1},{:.1}",
                tech.feature().micrometers(),
                d.decode_ps,
                d.wordline_ps,
                d.bitline_ps,
                d.senseamp_ps,
                d.total_ps()
            );
        }
    }
    write_csv(dir, "fig03_rename.csv", &csv);

    let mut csv = String::from("window,ipc2way_ps,ipc4way_ps,ipc8way_ps\n");
    let t018 = Technology::new(FeatureSize::U018);
    for window in (8..=64).step_by(8) {
        let d = |iw| WakeupDelay::compute(&t018, &WakeupParams::new(iw, window)).total_ps();
        let _ = writeln!(csv, "{window},{:.1},{:.1},{:.1}", d(2), d(4), d(8));
    }
    write_csv(dir, "fig05_wakeup.csv", &csv);

    let mut csv = String::from("tech_um,tag_drive_ps,tag_match_ps,match_or_ps,total_ps\n");
    for tech in Technology::all() {
        let d = WakeupDelay::compute(&tech, &WakeupParams::new(8, 64));
        let _ = writeln!(
            csv,
            "{},{:.1},{:.1},{:.1},{:.1}",
            tech.feature().micrometers(),
            d.tag_drive_ps,
            d.tag_match_ps,
            d.match_or_ps,
            d.total_ps()
        );
    }
    write_csv(dir, "fig06_wakeup_scaling.csv", &csv);

    let mut csv = String::from("tech_um,window,request_ps,root_ps,grant_ps,total_ps\n");
    for tech in Technology::all() {
        for window in [16usize, 32, 64, 128] {
            let d = SelectDelay::compute(&tech, &SelectParams::new(window));
            let _ = writeln!(
                csv,
                "{},{window},{:.1},{:.1},{:.1},{:.1}",
                tech.feature().micrometers(),
                d.request_prop_ps,
                d.root_ps,
                d.grant_prop_ps,
                d.total_ps()
            );
        }
    }
    write_csv(dir, "fig08_select.csv", &csv);

    let mut csv = String::from("issue_width,wire_length_lambda,delay_ps,path_count\n");
    for iw in [2usize, 4, 8, 16] {
        let p = BypassParams::new(iw);
        let d = BypassDelay::compute(&t018, &p);
        let _ = writeln!(
            csv,
            "{iw},{:.0},{:.1},{}",
            d.wire_length_lambda,
            d.total_ps(),
            p.path_count()
        );
    }
    write_csv(dir, "tab01_bypass.csv", &csv);

    let mut csv =
        String::from("tech_um,issue_width,window,rename_ps,wakeup_select_ps,bypass_ps\n");
    for tech in Technology::all() {
        for (iw, win) in [(4usize, 32usize), (8, 64)] {
            let d = PipelineDelays::compute(&tech, iw, win);
            let _ = writeln!(
                csv,
                "{},{iw},{win},{:.1},{:.1},{:.1}",
                tech.feature().micrometers(),
                d.rename_ps,
                d.window_ps(),
                d.bypass_ps
            );
        }
    }
    write_csv(dir, "tab02_overall.csv", &csv);

    let mut csv = String::from("issue_width,physical_regs,entries,delay_ps\n");
    for iw in [2usize, 4, 8] {
        let p = ResTableParams::new(iw);
        let d = ResTableDelay::compute(&t018, &p).total_ps();
        let _ = writeln!(csv, "{iw},{},{},{d:.1}", p.physical_regs, p.entries());
    }
    write_csv(dir, "tab04_restable.csv", &csv);

    // ---- simulator artifacts --------------------------------------------
    println!("running simulations (this loads and runs all seven kernels)…");
    let fig17_machines = machine::figure17_machines();
    let mut jobs: Vec<runner::Job> = Vec::new();
    for bench in Benchmark::all() {
        jobs.push((bench, machine::baseline_8way()));
        jobs.push((bench, machine::dependence_8way()));
        jobs.push((bench, machine::clustered_fifos_8way()));
        for (_, cfg) in &fig17_machines {
            jobs.push((bench, *cfg));
        }
    }
    let mut results = runner::run_all(&jobs).into_iter();

    let mut fig13 = String::from("benchmark,window_ipc,dependence_ipc\n");
    let mut fig15 = String::from("benchmark,window_ipc,clustered_ipc,ic_bypass_pct,speedup\n");
    let mut fig17 = String::from("benchmark,machine,ipc,ic_bypass_pct\n");
    let mut speedups = Vec::new();
    for bench in Benchmark::all() {
        let win = results.next().expect("window cell");
        let dep = results.next().expect("fifos cell");
        let _ = writeln!(fig13, "{},{:.3},{:.3}", bench.name(), win.ipc(), dep.ipc());

        let clustered = results.next().expect("clustered cell");
        let s = Speedup::combine(
            &t018,
            MachineSpec::paper_dependence_machine(),
            win.ipc(),
            clustered.ipc(),
        );
        let _ = writeln!(
            fig15,
            "{},{:.3},{:.3},{:.1},{:.3}",
            bench.name(),
            win.ipc(),
            clustered.ipc(),
            clustered.intercluster_bypass_frequency() * 100.0,
            s.speedup
        );
        speedups.push(s);

        for (name, _) in &fig17_machines {
            let stats = results.next().expect("fig17 cell");
            let _ = writeln!(
                fig17,
                "{},{},{:.3},{:.1}",
                bench.name(),
                name,
                stats.ipc(),
                stats.intercluster_bypass_frequency() * 100.0
            );
        }
    }
    write_csv(dir, "fig13_ipc.csv", &fig13);
    write_csv(dir, "fig15_clustered.csv", &fig15);
    write_csv(dir, "fig17_organizations.csv", &fig17);

    // ---- summary ----------------------------------------------------------
    let cmp = ClockComparison::compute(&t018, 8, 64, 2);
    let mut summary = String::from("metric,value,paper\n");
    let _ = writeln!(summary, "clock_ratio_018um,{:.3},1.25", cmp.conservative_speedup());
    let _ = writeln!(
        summary,
        "optimistic_clock_improvement,{:.3},0.39",
        cmp.optimistic_improvement()
    );
    let _ = writeln!(
        summary,
        "mean_speedup_improvement,{:.3},0.16",
        mean_improvement(&speedups)
    );
    write_csv(dir, "summary.csv", &summary);
}
