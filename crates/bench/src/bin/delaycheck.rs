//! delaycheck — the delay-model verification gate.
//!
//! Runs three campaigns against `ce-delay` and writes one combined report:
//!
//! 1. **Anchors** — every value the paper prints (Tables 1/2/4, Figures
//!    3/5/6, Sections 5.3/5.5) evaluated against the current calibration,
//!    each with its recorded tolerance ([`ce_delay::anchors`]).
//! 2. **Shapes** — the growth-shape assertions (rename/bypass quadratic in
//!    issue width, wakeup linear+quadratic in window size, selection
//!    step-logarithmic) verified by exact finite differences.
//! 3. **Domain fuzz** — a seeded corpus of adversarial parameters thrown
//!    at every `try_compute` path under `catch_unwind`, proving the
//!    checked APIs return `Result` instead of panicking, and that the
//!    corpus straddles the accept/reject boundary.
//!
//! ```text
//! cargo run --release -p ce-bench --bin delaycheck [--out PATH]
//! ```
//!
//! Writes `results/delay_anchor_report.csv` atomically (CI diffs it
//! against the committed copy). Exit codes: 0 all campaigns pass, 1 gate
//! failure (drift, broken shape, or a panic out of a checked path), 2
//! usage or I/O errors.

use ce_bench::checkpoint::write_atomic;
use ce_bench::cli::OutArgs;
use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::cache::{CacheDelay, CacheParams};
use ce_delay::pipeline::ClockComparison;
use ce_delay::regfile::{RegfileDelay, RegfileParams};
use ce_delay::rename::{RenameDelay, RenameParams, RenameScheme};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::{anchors, DelayError, PipelineDelays, Technology};
use rand::{Rng, SeedableRng, StdRng};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Adversarial parameter palette: boundary values, plausible values, and
/// far-out-of-domain garbage.
fn wild(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..6usize) {
        0 => 0,
        1 => 1,
        2 => rng.gen_range(2..9usize),
        3 => rng.gen_range(9..129usize),
        4 => rng.gen_range(129..5000usize),
        _ => rng.gen_range(5000..2_000_000usize),
    }
}

/// Outcome counts of the domain-fuzz campaign.
#[derive(Debug, Default)]
struct FuzzTally {
    cases: usize,
    accepted: usize,
    rejected: usize,
    panics: usize,
}

fn tally(tally: &mut FuzzTally, result: std::thread::Result<Result<(), DelayError>>) {
    tally.cases += 1;
    match result {
        Ok(Ok(())) => tally.accepted += 1,
        Ok(Err(_)) => tally.rejected += 1,
        Err(_) => tally.panics += 1,
    }
}

fn fuzz_domains(cases_per_structure: usize) -> FuzzTally {
    let mut rng = StdRng::seed_from_u64(0xde1a);
    let mut t = FuzzTally::default();
    let techs = Technology::all();
    for _ in 0..cases_per_structure {
        let tech = techs[rng.gen_range(0..techs.len())];

        let p = RenameParams {
            issue_width: wild(&mut rng),
            physical_regs: wild(&mut rng),
            scheme: if rng.gen_range(0..2usize) == 0 {
                RenameScheme::Ram
            } else {
                RenameScheme::Cam
            },
        };
        tally(&mut t, std::panic::catch_unwind(|| {
            RenameDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let p = WakeupParams::new(wild(&mut rng), wild(&mut rng));
        tally(&mut t, std::panic::catch_unwind(|| {
            WakeupDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let p = SelectParams {
            window_size: wild(&mut rng),
            arbiter_fanin: wild(&mut rng),
            grants: wild(&mut rng),
        };
        tally(&mut t, std::panic::catch_unwind(|| {
            SelectDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let p = BypassParams {
            issue_width: wild(&mut rng),
            pipestages_after_exec: wild(&mut rng),
        };
        tally(&mut t, std::panic::catch_unwind(|| {
            BypassDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let p = ResTableParams { issue_width: wild(&mut rng), physical_regs: wild(&mut rng) };
        tally(&mut t, std::panic::catch_unwind(|| {
            ResTableDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let p = RegfileParams {
            registers: wild(&mut rng),
            ports: wild(&mut rng),
            bits: wild(&mut rng),
        };
        tally(&mut t, std::panic::catch_unwind(|| {
            RegfileDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let p = CacheParams {
            bytes: wild(&mut rng),
            ways: wild(&mut rng),
            line_bytes: wild(&mut rng),
            ports: wild(&mut rng),
        };
        tally(&mut t, std::panic::catch_unwind(|| {
            CacheDelay::try_compute(&tech, &p).map(|_| ())
        }));

        let (iw, w, clusters) = (wild(&mut rng), wild(&mut rng), wild(&mut rng));
        tally(&mut t, std::panic::catch_unwind(move || {
            PipelineDelays::try_compute(&tech, iw, w)
                .and_then(|d| d.try_stages_at(w as f64).map(|_| d))
                .and_then(|_| ClockComparison::try_compute(&tech, iw, w, clusters))
                .map(|_| ())
        }));
    }
    t
}

fn main() -> ExitCode {
    let args = OutArgs::parse("results/delay_anchor_report.csv");
    let mut csv =
        String::from("kind,id,artifact,unit,expected,got,residual_pct,tol_pct,status\n");
    let mut failures = 0usize;

    println!("delaycheck: paper-anchor campaign");
    let checks = match anchors::evaluate_all() {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("delaycheck: error: anchor evaluation failed: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "{:<32} {:>12} {:>12} {:>9} {:>7}  status",
        "anchor", "expected", "got", "resid", "tol"
    );
    ce_bench::rule(84);
    for c in &checks {
        let status = if c.pass { "pass" } else { "FAIL" };
        println!(
            "{:<32} {:>12.3} {:>12.3} {:>8.1}% {:>6.0}%  {status}",
            c.anchor.id,
            c.anchor.expected,
            c.got,
            c.residual_frac * 100.0,
            c.anchor.tol_frac * 100.0,
        );
        let _ = writeln!(
            csv,
            "anchor,{},{},{},{:.4},{:.4},{:.2},{:.0},{status}",
            c.anchor.id,
            c.anchor.artifact.replace(',', ";"),
            c.anchor.unit,
            c.anchor.expected,
            c.got,
            c.residual_frac * 100.0,
            c.anchor.tol_frac * 100.0,
        );
        failures += usize::from(!c.pass);
    }

    println!();
    println!("delaycheck: growth-shape campaign");
    let shapes = match anchors::verify_shapes() {
        Ok(shapes) => shapes,
        Err(e) => {
            eprintln!("delaycheck: error: shape verification failed: {e}");
            return ExitCode::from(1);
        }
    };
    for s in &shapes {
        let status = if s.pass { "pass" } else { "FAIL" };
        println!("{:<44} {status}   ({})", s.id, s.detail);
        let _ = writeln!(csv, "shape,{},{},,,,,,{status}", s.id, s.structure);
        failures += usize::from(!s.pass);
    }

    println!();
    println!("delaycheck: domain-fuzz campaign (checked paths must not panic)");
    let t = fuzz_domains(250);
    // The corpus must exercise both sides of the validation boundary.
    let balanced = t.accepted > t.cases / 20 && t.rejected > t.cases / 20;
    let fuzz_pass = t.panics == 0 && balanced;
    println!(
        "  {} cases: {} accepted, {} rejected, {} panics -> {}",
        t.cases,
        t.accepted,
        t.rejected,
        t.panics,
        if fuzz_pass { "pass" } else { "FAIL" }
    );
    let _ = writeln!(
        csv,
        "fuzz,domain_campaign,,cases,{},{},,,{}",
        t.cases,
        t.cases - t.panics,
        if fuzz_pass { "pass" } else { "FAIL" }
    );
    failures += usize::from(!fuzz_pass);

    if let Err(e) = write_atomic(&args.out, &csv) {
        eprintln!("delaycheck: error[io]: writing {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    eprintln!("delaycheck: wrote {}", args.out.display());

    if failures > 0 {
        eprintln!("delaycheck: {failures} campaign check(s) FAILED");
        ExitCode::from(1)
    } else {
        println!("delaycheck: all campaigns pass");
        ExitCode::SUCCESS
    }
}
