//! Compares two `BENCH_sim.json` snapshots — the CI gate against
//! simulator throughput regressions.
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_compare -- \
//!     CANDIDATE.json REFERENCE.json [--min-ratio R]
//! ```
//!
//! Reads `sim_mcycles_per_s` (aggregate simulated-cycles-per-second over
//! summed cell wall time) from both files and fails (exit 1) when
//! `candidate / reference < R`. The default ratio 0.5 is deliberately
//! loose: CI machines are noisy and share cores, so the gate is meant to
//! catch "probes made the simulator 3× slower", not a 5% wobble.
//!
//! Exit codes: 0 pass, 1 throughput below the floor, 2 usage error or a
//! missing/malformed snapshot file — so CI can tell "the gate tripped"
//! from "the gate never ran".

use ce_bench::json::Json;
use std::process::ExitCode;

fn throughput(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    doc.at("sim_mcycles_per_s")
        .and_then(Json::as_f64)
        .filter(|v| *v > 0.0)
        .ok_or_else(|| format!("{path}: missing or non-positive `sim_mcycles_per_s`"))
}

fn main() -> ExitCode {
    let mut candidate = None;
    let mut reference = None;
    let mut min_ratio = 0.5_f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-ratio" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-ratio needs a number");
                    return ExitCode::from(2);
                };
                min_ratio = value;
            }
            path if candidate.is_none() => candidate = Some(path.to_owned()),
            path if reference.is_none() => reference = Some(path.to_owned()),
            other => {
                eprintln!("error: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(candidate), Some(reference)) = (candidate, reference) else {
        eprintln!("usage: bench_compare CANDIDATE.json REFERENCE.json [--min-ratio R]");
        return ExitCode::from(2);
    };

    let (cand, refr) = match (throughput(&candidate), throughput(&reference)) {
        (Ok(c), Ok(r)) => (c, r),
        (c, r) => {
            for e in [c.err(), r.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let ratio = cand / refr;
    println!(
        "candidate {cand:.3} Mcycles/s vs reference {refr:.3} Mcycles/s: \
         ratio {ratio:.3} (floor {min_ratio:.3})"
    );
    if ratio < min_ratio {
        eprintln!(
            "error: simulator throughput regressed below the floor \
             ({candidate} vs {reference})"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
