//! Figure 15: IPC of the 2×4-way clustered dependence-based machine
//! (2-cycle inter-cluster bypass) versus the 8-way window baseline, plus
//! the Section 5.5 clock-adjusted speedup.
//!
//! ```text
//! cargo run --release -p ce-bench --bin fig15_clustered -- [--out PATH] [--resume]
//! ```
//!
//! Runs fault-tolerantly: each cell is journaled as it completes, so a
//! killed run restarted with `--resume` re-simulates only unfinished
//! cells and writes a byte-identical CSV.

use std::process::ExitCode;

use ce_bench::api::{self, SweepKind};
use ce_bench::cli::{finish_sweep, SweepArgs};
use ce_bench::runner::{self, SweepOptions};
use ce_core::analysis::{mean_improvement, MachineSpec, Speedup};
use ce_delay::{FeatureSize, Technology};
use ce_workloads::Benchmark;

fn main() -> ExitCode {
    let args = SweepArgs::parse("results/fig15_clustered.csv");
    let tech = Technology::new(FeatureSize::U018);
    // Grid, options, and the CSV renderer come from the shared api plan
    // (see `ce_bench::api`): this binary and cesimd emit the same bytes.
    let plan = api::plan(SweepKind::Fig15);
    let jobs = plan.jobs;
    let max_insts = ce_bench::max_insts();
    let telemetry = match args.obs.telemetry("fig15_clustered", &jobs, max_insts, args.resume) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fig15_clustered: error[io]: telemetry journal: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = SweepOptions {
        run: plan.run,
        checkpoint: Some(args.checkpoint()),
        telemetry,
        ..SweepOptions::default()
    };
    let summary = match runner::run_sweep_ft(&jobs, max_insts, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("fig15_clustered: error[io]: checkpoint journal: {e}");
            return ExitCode::from(2);
        }
    };

    let mut csv = String::new();
    if summary.all_ok() {
        csv = api::fig15_csv(&summary);
        println!("Figure 15: IPC, 64-entry window 8-way vs 2-cluster dependence-based 8-way");
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>10} {:>9}",
            "benchmark", "window", "2x4 fifos", "degradation", "IC-bypass", "speedup"
        );
        ce_bench::rule(68);
        let mut results = summary.ok_cells().map(|r| &r.stats);
        let mut speedups = Vec::new();
        for bench in Benchmark::all() {
            let win = results.next().expect("window cell");
            let dep = results.next().expect("clustered cell");
            let s = Speedup::combine(
                &tech,
                MachineSpec::paper_dependence_machine(),
                win.ipc(),
                dep.ipc(),
            );
            println!(
                "{:<10} {:>10.3} {:>12.3} {:>11.1}% {:>9.1}% {:>8.2}x",
                bench.name(),
                win.ipc(),
                dep.ipc(),
                s.ipc_degradation() * 100.0,
                dep.intercluster_bypass_frequency() * 100.0,
                s.speedup
            );
            speedups.push(s);
        }
        println!();
        println!(
            "clock ratio clk_dep/clk_win = {:.3} (paper: 1.25 at 0.18 um)",
            speedups[0].clock_ratio
        );
        println!(
            "mean clock-adjusted improvement: {:+.1}% (paper: 10-22%, average 16%)",
            mean_improvement(&speedups) * 100.0
        );
        println!();
    }
    finish_sweep("fig15_clustered", &args, &jobs, max_insts, opts.run, &summary, &csv)
}
