//! Sections 5.3/5.5 bottom line: combining the clock-period models with
//! the measured IPCs into the paper's headline speedup numbers.

use ce_core::analysis::{mean_improvement, MachineSpec, Speedup};
use ce_delay::pipeline::ClockComparison;
use ce_delay::Technology;
use ce_sim::{machine, Simulator};

fn main() {
    println!("Clock-period comparison (Section 5.3/5.5)");
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "tech", "clk win (ps)", "clk dep (ps)", "restab+sel", "ratio", "optimistic"
    );
    ce_bench::rule(78);
    for tech in Technology::all() {
        let cmp = ClockComparison::compute(&tech, 8, 64, 2);
        println!(
            "{:<6} {:>14.1} {:>14.1} {:>14.1} {:>11.3}x {:>11.1}%",
            tech.feature().to_string(),
            cmp.window_clock_ps,
            cmp.dependence_clock_ps,
            cmp.dependence_window_ps,
            cmp.conservative_speedup(),
            cmp.optimistic_improvement() * 100.0
        );
    }
    println!("(paper at 0.18 um: ratio 1.25, optimistic rename-limited improvement 39%)");
    println!();

    let tech = Technology::all()[2];
    println!("Per-benchmark clock-adjusted speedup, 2x4-way dependence-based vs 8-way window:");
    println!("{:<10} {:>9} {:>9} {:>9} {:>12}", "benchmark", "IPC win", "IPC dep", "speedup", "improvement");
    ce_bench::rule(54);
    let mut speedups = Vec::new();
    for (bench, trace) in ce_bench::load_all_traces() {
        let win = Simulator::new(machine::baseline_8way()).run(&trace);
        let dep = Simulator::new(machine::clustered_fifos_8way()).run(&trace);
        let s = Speedup::combine(
            &tech,
            MachineSpec::paper_dependence_machine(),
            win.ipc(),
            dep.ipc(),
        );
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>8.2}x {:>11.1}%",
            bench.name(),
            s.ipc_window,
            s.ipc_dependence,
            s.speedup,
            s.improvement() * 100.0
        );
        speedups.push(s);
    }
    println!();
    println!(
        "average improvement {:+.1}% (paper: 10-22%, average 16%)",
        mean_improvement(&speedups) * 100.0
    );
}
