//! `cechaos` — the seeded chaos campaign for the experiment service.
//!
//! ```text
//! cechaos [--seed N] [--clients N] [--rounds N] [--state DIR]
//!         [--grid-only] [--keep]
//!
//!   --seed N     campaign seed (default 0xCE5EED); same seed → same
//!                fault plans, same fuzz corpus, same kill schedule
//!   --clients N  concurrent protocol clients per storm round (3)
//!   --rounds N   storm rounds (2)
//!   --state DIR  campaign scratch directory (default: a temp dir,
//!                removed on success)
//!   --grid-only  run only the deterministic fault grid, skip the
//!                daemon storm (no cesimd binary needed)
//!   --keep       keep the state directory even on success
//! ```
//!
//! Two phases, both gated on the **zero-corruption contract**
//! (`ce_bench::chaos`):
//!
//! 1. **Fault grid** — every injectable fault class at every I/O
//!    operation index of the durability workload: ENOSPC, EIO, torn
//!    writes, failed fsyncs in-process, and crash points via worker
//!    subprocesses (`CE_IOFAULT=crash@K` aborts the worker at exactly
//!    op K). Every case must resolve Detected or Masked, with recovery
//!    converging to byte-identical files. ≥ 100 cases by construction.
//!
//! 2. **Daemon storm** — `--rounds` rounds of: spawn `cesimd` (some
//!    rounds with an injected I/O fault plan, some with a crash point),
//!    hammer it with `--clients` concurrent clients running overlapping
//!    sweeps, seeded protocol fuzz, and mid-stream disconnects, then
//!    kill it (`SIGKILL`/`SIGTERM`/its own injected crash). Afterwards:
//!    `cesimd --fsck` must exit 0, a clean daemon must drain every
//!    WAL-recovered job, resubmitting every spec twice must return
//!    byte-identical artifacts with the second pass fully cache-served,
//!    and the per-job telemetry journals must prove **no cell was ever
//!    simulated twice** across daemon generations.
//!
//! Exit codes: 0 contract upheld, 1 violations (each printed as a
//! structured `error[chaos]` line), 2 usage or campaign-infrastructure
//! errors.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix::main()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("cechaos: error[io]: the chaos campaign needs Unix domain sockets");
    std::process::ExitCode::from(2)
}

#[cfg(unix)]
mod unix {
    use std::collections::{BTreeMap, BTreeSet};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, ExitCode, Stdio};
    use std::time::{Duration, Instant};

    use ce_bench::api::JobEvent;
    use ce_bench::chaos::{
        classify_crash_case, durability_workload, fault_grid, fuzz_corpus, grid_context,
        GridReport,
    };
    use ce_bench::iofault::{self, FaultClass};
    use ce_bench::json::Json;
    use ce_bench::service::MAX_REQUEST_LINE;
    use rand::{Rng, SeedableRng, StdRng};

    struct Options {
        seed: u64,
        clients: usize,
        rounds: usize,
        state: Option<PathBuf>,
        grid_only: bool,
        keep: bool,
    }

    pub fn main() -> ExitCode {
        let mut opts = Options {
            seed: 0xCE5EED,
            clients: 3,
            rounds: 2,
            state: None,
            grid_only: false,
            keep: false,
        };
        let mut args = std::env::args().skip(1);
        let usage = || {
            eprintln!(
                "usage: cechaos [--seed N] [--clients N] [--rounds N] [--state DIR] \
                 [--grid-only] [--keep]"
            );
            ExitCode::from(2)
        };
        while let Some(arg) = args.next() {
            let mut value = |what: &str| {
                args.next().ok_or_else(|| format!("{what} requires a value"))
            };
            let result: Result<(), String> = (|| {
                match arg.as_str() {
                    // Hidden: the crash-grid subprocess. Arms CE_IOFAULT
                    // and runs the durability workload; a crash@K plan
                    // aborts it at exactly op K.
                    "--worker" => {
                        let dir = PathBuf::from(value("--worker")?);
                        return Err(worker(&dir));
                    }
                    "--seed" => {
                        opts.seed = parse_num(&value("--seed")?, "--seed")?;
                    }
                    "--clients" => {
                        opts.clients =
                            parse_num(&value("--clients")?, "--clients")?.max(1) as usize;
                    }
                    "--rounds" => {
                        opts.rounds = parse_num(&value("--rounds")?, "--rounds")? as usize;
                    }
                    "--state" => opts.state = Some(PathBuf::from(value("--state")?)),
                    "--grid-only" => opts.grid_only = true,
                    "--keep" => opts.keep = true,
                    "--help" | "-h" => return Err(String::new()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
                Ok(())
            })();
            if let Err(msg) = result {
                if msg == "worker-ok" {
                    return ExitCode::SUCCESS;
                }
                if !msg.is_empty() {
                    eprintln!("error: {msg}");
                }
                return usage();
            }
        }
        match campaign(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("cechaos: error[io]: {e}");
                ExitCode::from(2)
            }
        }
    }

    fn parse_num(text: &str, what: &str) -> Result<u64, String> {
        let text = text.trim();
        let parsed = match text.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => text.parse(),
        };
        parsed.map_err(|e| format!("bad {what}: {e}"))
    }

    /// The `--worker` subprocess body; returns a sentinel error string
    /// so the argument loop can short-circuit cleanly.
    fn worker(dir: &Path) -> String {
        if let Err(e) = iofault::arm_global_from_env() {
            return format!("worker: {e}");
        }
        match durability_workload(dir) {
            Ok(()) => "worker-ok".into(),
            // A surfaced injected error is a *successful* worker run —
            // the campaign classifies the on-disk state, not our exit.
            Err(_) => "worker-ok".into(),
        }
    }

    fn campaign(opts: &Options) -> Result<bool, String> {
        let state = opts.state.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("cechaos-{}", std::process::id()))
        });
        std::fs::create_dir_all(&state).map_err(|e| format!("state dir: {e}"))?;
        println!(
            "cechaos: seed {:#x}, state {}, {} client(s) × {} round(s)",
            opts.seed,
            state.display(),
            opts.clients,
            opts.rounds
        );

        let mut ok = grid_phase(&state.join("grid")).map_err(|e| format!("grid: {e}"))?;
        if !opts.grid_only {
            ok &= storm_phase(opts, &state.join("service"))?;
        }
        if ok && !opts.keep && opts.state.is_none() {
            let _ = std::fs::remove_dir_all(&state);
        }
        println!(
            "cechaos: campaign {}",
            if ok { "PASSED" } else { "FAILED (see error[chaos] lines)" }
        );
        Ok(ok)
    }

    /// Phase 1: the exhaustive fault grid — in-process classes via
    /// thread-local plans, crash points via worker subprocesses.
    fn grid_phase(root: &Path) -> std::io::Result<bool> {
        let ctx = grid_context(root)?;
        let mut report: GridReport = fault_grid(root, &ctx)?;
        let me = std::env::current_exe()?;
        for index in 0..ctx.horizon {
            let dir = root.join(format!("crash-{index}"));
            let _ = std::fs::remove_dir_all(&dir);
            let status = Command::new(&me)
                .arg("--worker")
                .arg(&dir)
                .env("CE_IOFAULT", format!("crash@{index}"))
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .status()?;
            // abort() dies by signal; a normal exit means the plan never
            // fired (index at/beyond the horizon).
            let crashed = status.code().is_none();
            report.cases.push(classify_crash_case(&dir, index, crashed, &ctx)?);
        }
        println!("{report}");
        let enough = report.cases.len() >= 100;
        if !enough {
            println!(
                "error[chaos]: only {} grid cases; the campaign contract needs ≥ 100",
                report.cases.len()
            );
        }
        Ok(report.violations().is_empty() && enough)
    }

    // ---- Phase 2: the daemon storm ----------------------------------

    /// The overlapping job mix. Small sweeps (instruction cap set by the
    /// campaign) so every round sees submissions, kills, and completions.
    fn spec_pool() -> Vec<(&'static str, String)> {
        vec![
            ("fig13", "{\"op\": \"submit\", \"spec\": {\"sweep\": \"fig13\"}}".into()),
            (
                "cells-a",
                "{\"op\": \"submit\", \"spec\": {\"cells\": [\
                 {\"bench\": \"compress\", \"machine\": \"window\"}, \
                 {\"bench\": \"li\", \"machine\": \"fifos\"}], \
                 \"attribution\": true}}"
                    .into(),
            ),
            (
                "cells-b",
                "{\"op\": \"submit\", \"spec\": {\"cells\": [\
                 {\"bench\": \"go\", \"machine\": \"clustered-fifos\"}], \
                 \"tag\": \"storm\"}}"
                    .into(),
            ),
        ]
    }

    fn cesimd() -> Result<PathBuf, String> {
        let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let dir = me.parent().ok_or("cechaos has no parent directory")?;
        let path = dir.join("cesimd");
        if path.exists() {
            Ok(path)
        } else {
            Err(format!("cesimd not found next to cechaos ({})", path.display()))
        }
    }

    fn insts() -> String {
        std::env::var("CE_MAX_INSTS").unwrap_or_else(|_| "20000".into())
    }

    fn spawn_daemon(
        bin: &Path,
        state: &Path,
        socket: &Path,
        iofault: Option<&str>,
    ) -> std::io::Result<Child> {
        let mut cmd = Command::new(bin);
        cmd.env("CE_MAX_INSTS", insts())
            .env("CE_THREADS", "2")
            .env_remove("CE_IOFAULT")
            .arg("--state")
            .arg(state)
            .arg("--socket")
            .arg(socket)
            .arg("--quiet")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(plan) = iofault {
            cmd.env("CE_IOFAULT", plan);
        }
        cmd.spawn()
    }

    /// One-shot request on a fresh connection; returns the first
    /// response line, if any.
    fn request_line(socket: &Path, line: &str) -> Option<String> {
        let mut stream = UnixStream::connect(socket).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
        stream.write_all(line.as_bytes()).ok()?;
        stream.write_all(b"\n").ok()?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).ok()?;
        (!response.is_empty()).then(|| response.trim().to_owned())
    }

    fn wait_ready(socket: &Path, child: &mut Child) -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if request_line(socket, "{\"op\": \"ping\"}")
                .is_some_and(|r| r.contains("pong"))
            {
                return Ok(());
            }
            if let Some(status) = child.try_wait().map_err(|e| e.to_string())? {
                return Err(format!("cesimd exited during startup: {status}"));
            }
            if Instant::now() > deadline {
                return Err("cesimd never became ready".into());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// What one storm client saw. Everything here is tolerated noise
    /// except `proto_breaks`: a fuzz line that was NOT rejected with a
    /// structured error event while the daemon was still alive.
    /// (Malformed lines draw `error[proto]`; a well-formed submit with
    /// a nonsense spec draws `error[config-invalid]` — both count as
    /// the daemon holding the line.)
    #[derive(Debug, Default)]
    struct ClientTally {
        dones: usize,
        proto_errors: usize,
        proto_breaks: usize,
        disconnects: usize,
    }

    /// One storm client: seeded behavior — protocol fuzz, then a
    /// submission it either streams to completion or abandons
    /// mid-stream. All I/O failures are expected storm weather (the
    /// daemon is being killed under us).
    fn storm_client(socket: &Path, seed: u64) -> ClientTally {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tally = ClientTally::default();
        let pool = spec_pool();

        let Ok(stream) = UnixStream::connect(socket) else {
            tally.disconnects += 1;
            return tally;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return tally,
        };
        let mut reader = BufReader::new(stream);

        // Seeded fuzz prelude on the same connection the real submit
        // will use: proves error[proto] does not poison the stream.
        for line in fuzz_corpus(seed, rng.gen_range(1usize..4), MAX_REQUEST_LINE) {
            if writer.write_all(line.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
            {
                tally.disconnects += 1;
                return tally;
            }
            let mut response = String::new();
            match reader.read_line(&mut response) {
                Ok(0) | Err(_) => {
                    tally.disconnects += 1;
                    return tally;
                }
                Ok(_) => {
                    let rejected = Json::parse(response.trim()).is_ok_and(|doc| {
                        doc.at("ev").and_then(Json::as_str) == Some("error")
                    });
                    if rejected {
                        tally.proto_errors += 1;
                    } else {
                        tally.proto_breaks += 1;
                    }
                }
            }
        }

        let (_, submit) = &pool[rng.gen_range(0usize..pool.len())];
        let abandon = rng.gen_range(0u32..3) == 0;
        if writer.write_all(submit.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            tally.disconnects += 1;
            return tally;
        }
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    tally.disconnects += 1;
                    return tally;
                }
                Ok(_) => {}
            }
            let Ok(doc) = Json::parse(line.trim()) else { continue };
            match doc.at("ev").and_then(Json::as_str) {
                Some("accepted") if abandon => {
                    // Mid-stream disconnect: drop the connection while
                    // the job runs. The WAL owns the job now.
                    tally.disconnects += 1;
                    return tally;
                }
                Some("done") => {
                    tally.dones += 1;
                    return tally;
                }
                Some("error") => return tally,
                _ => {}
            }
        }
    }

    /// A completed job's `(name, content)` artifacts plus its
    /// (cache_hits, cache_misses) split.
    type DoneOutcome = (Vec<(String, String)>, usize, usize);

    /// Submits `line` and streams to `done`, returning the artifacts
    /// and cache split. `None` if the daemon died or errored.
    fn submit_to_done(socket: &Path, line: &str) -> Option<DoneOutcome> {
        let stream = UnixStream::connect(socket).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(600))).ok()?;
        let mut writer = stream.try_clone().ok()?;
        let mut reader = BufReader::new(stream);
        writer.write_all(line.as_bytes()).ok()?;
        writer.write_all(b"\n").ok()?;
        let mut buf = String::new();
        loop {
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {}
            }
            let doc = Json::parse(buf.trim()).ok()?;
            match JobEvent::from_json(&doc).ok()? {
                JobEvent::Done { outcome, .. } => {
                    return Some((outcome.artifacts, outcome.cache_hits, outcome.cache_misses))
                }
                JobEvent::Error { kind, message } => {
                    println!("error[chaos]: convergence submit failed: {kind}: {message}");
                    return None;
                }
                _ => {}
            }
        }
    }

    /// Kills the daemon per the round's seeded schedule and reaps it.
    fn kill_daemon(child: &mut Child, socket: &Path, method: u32) {
        match method {
            // SIGKILL: the hard crash the WAL and journals exist for.
            0 => {
                let _ = child.kill();
            }
            // SIGTERM: drain-and-exit; jobs finish, queue empties.
            1 => {
                let _ = Command::new("kill")
                    .arg("-TERM")
                    .arg(child.id().to_string())
                    .status();
            }
            // The daemon's own injected crash plan will (probably) kill
            // it; give it time, then make sure.
            _ => {
                let deadline = Instant::now() + Duration::from_secs(60);
                while Instant::now() < deadline {
                    match child.try_wait() {
                        Ok(Some(_)) | Err(_) => break,
                        Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                    }
                }
                let _ = child.kill();
            }
        }
        let _ = request_line(socket, "{\"op\": \"ping\"}"); // nudge the accept loop
        let _ = child.wait();
    }

    /// The cells each execution of each job settled by simulation,
    /// proven by checkpoint-write telemetry events.
    fn exec_profiles(state: &Path) -> BTreeMap<u64, Vec<BTreeSet<u64>>> {
        let mut jobs: BTreeMap<u64, Vec<BTreeSet<u64>>> = BTreeMap::new();
        let Ok(entries) = std::fs::read_dir(state.join("telemetry")) else {
            return jobs;
        };
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // job-<id>.exec-<k>.jsonl
            let Some(id) = name
                .strip_prefix("job-")
                .and_then(|r| r.split('.').next())
                .and_then(|id| id.parse::<u64>().ok())
            else {
                continue;
            };
            let mut cells = BTreeSet::new();
            if let Ok(text) = std::fs::read_to_string(&path) {
                for line in text.lines().skip(1) {
                    let Ok(doc) = Json::parse(line) else { continue };
                    if doc.at("ev").and_then(Json::as_str) == Some("checkpoint-write") {
                        if let Some(cell) = doc.at("cell").and_then(Json::as_u64) {
                            cells.insert(cell);
                        }
                    }
                }
            }
            jobs.entry(id).or_default().push(cells);
        }
        jobs
    }

    fn fsck_gate(bin: &Path, state: &Path, when: &str) -> bool {
        let out = Command::new(bin)
            .arg("--fsck")
            .arg("--state")
            .arg(state)
            .output();
        match out {
            Ok(out) if out.status.success() => {
                println!(
                    "cechaos: fsck {when}: clean ({})",
                    String::from_utf8_lossy(&out.stdout).lines().last().unwrap_or("")
                );
                true
            }
            Ok(out) => {
                println!(
                    "error[chaos]: fsck {when} found corruption:\n{}",
                    String::from_utf8_lossy(&out.stdout)
                );
                false
            }
            Err(e) => {
                println!("error[chaos]: fsck {when} did not run: {e}");
                false
            }
        }
    }

    fn storm_phase(opts: &Options, state: &Path) -> Result<bool, String> {
        let bin = cesimd()?;
        let socket = state.join("d.sock");
        let mut ok = true;

        for round in 0..opts.rounds {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ ((round as u64 + 1) << 32));
            // Some rounds storm a faulted daemon: a mid-stream I/O error
            // or a crash point injected into its write paths.
            let fault_plan = match rng.gen_range(0u32..3) {
                0 => None,
                1 => {
                    let class = [
                        FaultClass::Enospc,
                        FaultClass::Eio,
                        FaultClass::TornWrite,
                        FaultClass::FailedFsync,
                    ][rng.gen_range(0usize..4)];
                    Some(format!("{}@{}", class.name(), rng.gen_range(5u64..150)))
                }
                _ => Some(format!("crash@{}", rng.gen_range(20u64..200))),
            };
            let crash_armed = fault_plan.as_deref().is_some_and(|p| p.starts_with("crash"));
            println!(
                "cechaos: round {}: daemon fault plan: {}",
                round + 1,
                fault_plan.as_deref().unwrap_or("none")
            );
            let mut daemon = spawn_daemon(&bin, state, &socket, fault_plan.as_deref())
                .map_err(|e| format!("spawning cesimd: {e}"))?;
            if let Err(e) = wait_ready(&socket, &mut daemon) {
                // A crash plan can fire during startup I/O — that IS the
                // chaos; recovery is judged at the end.
                if crash_armed {
                    println!("cechaos: round {}: daemon crashed at startup ({e})", round + 1);
                    continue;
                }
                return Err(e);
            }

            let mut clients = Vec::new();
            for c in 0..opts.clients {
                let socket = socket.clone();
                let seed = opts.seed ^ ((round as u64) << 16) ^ (c as u64 + 1);
                clients.push(std::thread::spawn(move || storm_client(&socket, seed)));
            }
            std::thread::sleep(Duration::from_millis(rng.gen_range(200u64..900)));
            let method = if crash_armed { 2 } else { rng.gen_range(0u32..2) };
            kill_daemon(&mut daemon, &socket, method);

            let mut proto_breaks = 0;
            for client in clients {
                let tally = client.join().map_err(|_| "client thread panicked")?;
                proto_breaks += tally.proto_breaks;
            }
            if proto_breaks > 0 {
                // Fuzz responses can be cut off by the kill (EOF counts
                // as a disconnect, not a break), so any break here means
                // a live daemon answered fuzz with a non-proto event.
                println!(
                    "error[chaos]: round {}: {proto_breaks} fuzz line(s) not answered \
                     with error[proto]",
                    round + 1
                );
                ok = false;
            }
        }

        // Gate 1: the wreckage audits clean (torn tails and orphaned
        // tempfiles are fine; quarantine-worthy corruption is not).
        ok &= fsck_gate(&bin, state, "after storm");

        // Gate 2: a clean daemon drains every WAL-recovered job, then
        // every spec resubmitted twice returns byte-identical artifacts
        // with the second pass fully cache-served.
        let mut daemon = spawn_daemon(&bin, state, &socket, None)
            .map_err(|e| format!("spawning recovery cesimd: {e}"))?;
        wait_ready(&socket, &mut daemon)?;
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            let status = request_line(&socket, "{\"op\": \"status\"}")
                .ok_or("status request failed during drain")?;
            let doc = Json::parse(&status).map_err(|e| format!("status: {e}"))?;
            let queued = doc.at("queued").and_then(Json::as_u64).unwrap_or(0);
            let running = doc.at("running").and_then(Json::as_u64).unwrap_or(0);
            if queued == 0 && running == 0 {
                break;
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "recovered jobs never drained (queued {queued}, running {running})"
                ));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        println!("cechaos: recovery daemon drained every WAL-recovered job");

        for (name, line) in &spec_pool() {
            let first = submit_to_done(&socket, line);
            let second = submit_to_done(&socket, line);
            match (first, second) {
                (Some((art1, _, _)), Some((art2, hits2, misses2))) => {
                    if art1 != art2 {
                        println!(
                            "error[chaos]: {name}: resubmission artifacts differ \
                             (run 1 vs run 2)"
                        );
                        ok = false;
                    }
                    if misses2 != 0 {
                        println!(
                            "error[chaos]: {name}: second resubmission simulated \
                             {misses2} cell(s) ({hits2} cached) — store should serve all"
                        );
                        ok = false;
                    }
                }
                _ => {
                    println!("error[chaos]: {name}: convergence resubmission failed");
                    ok = false;
                }
            }
        }

        // Gate 3: zero duplicate simulation — across every daemon
        // generation, no job ever simulated the same cell twice.
        let mut duplicate_cells = 0usize;
        for (job, execs) in exec_profiles(state) {
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            for cells in &execs {
                for &cell in cells {
                    if !seen.insert(cell) {
                        duplicate_cells += 1;
                        println!(
                            "error[chaos]: job {job}: cell {cell} simulated in more \
                             than one execution"
                        );
                    }
                }
            }
        }
        ok &= duplicate_cells == 0;
        println!("cechaos: duplicate-simulation check: {duplicate_cells} duplicate cell(s)");

        let _ = request_line(&socket, "{\"op\": \"shutdown\"}");
        let status = daemon.wait().map_err(|e| format!("reaping cesimd: {e}"))?;
        if !status.success() {
            println!("error[chaos]: recovery daemon did not exit cleanly: {status}");
            ok = false;
        }

        // Gate 4: the final state still audits clean.
        ok &= fsck_gate(&bin, state, "after convergence");
        Ok(ok)
    }
}
