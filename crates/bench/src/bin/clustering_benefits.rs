//! Section 5.4's three advantages of the clustered dependence-based
//! organization, each quantified by the delay models:
//!
//! 1. simplified wakeup + selection (reservation table + head select),
//! 2. mostly-local bypasses (a 4-way cluster's result wires),
//! 3. fewer register-file ports per copy.

use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::cache::{CacheDelay, CacheParams};
use ce_delay::regfile::{RegfileDelay, RegfileParams};
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::Technology;

fn main() {
    println!("Section 5.4: what 2x4-way clustering buys an 8-way machine (delays in ps)");
    println!(
        "{:<6} | {:>12} {:>12} | {:>10} {:>10} | {:>10} {:>10}",
        "tech", "CAM window", "restab+sel", "bypass 8w", "bypass 4w", "regfile", "rf copy"
    );
    ce_bench::rule(84);
    for tech in Technology::all() {
        let cam_window = WakeupDelay::compute(&tech, &WakeupParams::new(8, 64)).total_ps()
            + SelectDelay::compute(&tech, &SelectParams::new(64)).total_ps();
        let dep_window = ResTableDelay::compute(&tech, &ResTableParams::new(8)).total_ps()
            + SelectDelay::compute(&tech, &SelectParams::new(8)).total_ps();
        let bypass8 = BypassDelay::compute(&tech, &BypassParams::new(8)).total_ps();
        let bypass4 = BypassDelay::compute(&tech, &BypassParams::new(4)).total_ps();
        let rf_central =
            RegfileDelay::compute(&tech, &RegfileParams::centralized(8)).total_ps();
        let rf_copy =
            RegfileDelay::compute(&tech, &RegfileParams::clustered_copy(8, 2)).total_ps();
        println!(
            "{:<6} | {:>12.1} {:>12.1} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            tech.feature().to_string(),
            cam_window,
            dep_window,
            bypass8,
            bypass4,
            rf_central,
            rf_copy
        );
    }
    println!();
    let tech = Technology::all()[2];
    let cam = WakeupDelay::compute(&tech, &WakeupParams::new(8, 64)).total_ps()
        + SelectDelay::compute(&tech, &SelectParams::new(64)).total_ps();
    let dep = ResTableDelay::compute(&tech, &ResTableParams::new(8)).total_ps()
        + SelectDelay::compute(&tech, &SelectParams::new(8)).total_ps();
    let b8 = BypassDelay::compute(&tech, &BypassParams::new(8)).total_ps();
    let b4 = BypassDelay::compute(&tech, &BypassParams::new(4)).total_ps();
    let rfc = RegfileDelay::compute(&tech, &RegfileParams::centralized(8)).total_ps();
    let rfk = RegfileDelay::compute(&tech, &RegfileParams::clustered_copy(8, 2)).total_ps();
    println!("At 0.18 um: window logic {:.1}x faster, local bypass {:.1}x faster,", cam / dep, b8 / b4);
    println!("register-file copy {:.2}x faster — all three of Section 5.4's claims.", rfc / rfk);

    println!();
    println!("For context, the Table 3 D-cache access (Wada / Wilton-Jouppi style model):");
    for tech in Technology::all() {
        let d = CacheDelay::compute(&tech, &CacheParams::table3_dcache());
        println!(
            "  {:<6} data {:>7.1} ps, tag {:>7.1} ps, select {:>6.1} ps, total {:>7.1} ps",
            tech.feature().to_string(),
            d.data_path_ps,
            d.tag_path_ps,
            d.select_ps,
            d.total_ps()
        );
    }
    println!("(caches pipeline; the paper's point is that window logic and bypasses do not)");
}
