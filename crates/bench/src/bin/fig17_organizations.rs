//! Figure 17: IPC (top) and inter-cluster bypass frequency (bottom) for
//! the five clustered organizations of Section 5.6.

use ce_bench::runner;
use ce_sim::machine;
use ce_workloads::Benchmark;

fn main() {
    let machines = machine::figure17_machines();
    println!("Figure 17 (top): IPC of clustered organizations");
    print!("{:<10}", "benchmark");
    for (name, _) in &machines {
        print!(" {:>13}", short(name));
    }
    println!();
    ce_bench::rule(10 + machines.len() * 14);

    let jobs = runner::grid(&machines);
    let mut results = runner::run_all(&jobs).into_iter();
    let mut freqs: Vec<Vec<f64>> = Vec::new();
    for bench in Benchmark::all() {
        print!("{:<10}", bench.name());
        let mut row = Vec::new();
        for _ in &machines {
            let stats = results.next().expect("one result per cell");
            print!(" {:>13.3}", stats.ipc());
            row.push(stats.intercluster_bypass_frequency() * 100.0);
        }
        println!();
        freqs.push(row);
    }

    println!();
    println!("Figure 17 (bottom): inter-cluster bypass frequency (%)");
    print!("{:<10}", "benchmark");
    for (name, _) in &machines {
        print!(" {:>13}", short(name));
    }
    println!();
    ce_bench::rule(10 + machines.len() * 14);
    for (bench, row) in Benchmark::all().into_iter().zip(&freqs) {
        print!("{:<10}", bench.name());
        for f in row {
            print!(" {:>12.1}%", f);
        }
        println!();
    }
    println!();
    println!("Paper shape: random steering degrades 17-26% vs ideal and shows the highest");
    println!("inter-cluster traffic (up to ~35%); exec-driven steering is within ~6% of ideal;");
    println!("both dispatch-steered organizations sit in between.");
}

fn short(name: &str) -> &str {
    match name {
        "1-cluster.1window" => "ideal",
        "2-cluster.FIFOs.dispatch_steer" => "fifo-disp",
        "2-cluster.windows.dispatch_steer" => "win-disp",
        "2-cluster.1window.exec_steer" => "exec-steer",
        "2-cluster.windows.random_steer" => "random",
        other => other,
    }
}
