//! Figure 17: IPC (top) and inter-cluster bypass frequency (bottom) for
//! the five clustered organizations of Section 5.6.
//!
//! ```text
//! cargo run --release -p ce-bench --bin fig17_organizations -- [--out PATH] [--resume]
//! ```
//!
//! Runs fault-tolerantly: each cell is journaled as it completes, so a
//! killed run restarted with `--resume` re-simulates only unfinished
//! cells and writes a byte-identical CSV.

use std::process::ExitCode;

use ce_bench::api::{self, SweepKind};
use ce_bench::cli::{finish_sweep, SweepArgs};
use ce_bench::runner::{self, SweepOptions};
use ce_sim::{machine, StallCause};
use ce_workloads::Benchmark;

fn main() -> ExitCode {
    let args = SweepArgs::parse("results/fig17_organizations.csv");
    let machines = machine::figure17_machines();
    // Grid, options, and the CSV renderer come from the shared api plan
    // (see `ce_bench::api`): this binary and cesimd emit the same bytes.
    let plan = api::plan(SweepKind::Fig17);
    let jobs = plan.jobs;
    let max_insts = ce_bench::max_insts();
    let telemetry = match args.obs.telemetry("fig17_organizations", &jobs, max_insts, args.resume) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fig17_organizations: error[io]: telemetry journal: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = SweepOptions {
        run: plan.run,
        checkpoint: Some(args.checkpoint()),
        telemetry,
        ..SweepOptions::default()
    };
    let summary = match runner::run_sweep_ft(&jobs, max_insts, &opts) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("fig17_organizations: error[io]: checkpoint journal: {e}");
            return ExitCode::from(2);
        }
    };

    let mut csv = String::new();
    if summary.all_ok() {
        csv = api::fig17_csv(&summary);
        println!("Figure 17 (top): IPC of clustered organizations");
        print!("{:<10}", "benchmark");
        for (name, _) in &machines {
            print!(" {:>13}", short(name));
        }
        println!();
        ce_bench::rule(10 + machines.len() * 14);

        let mut results = summary.ok_cells().map(|r| &r.stats);
        let mut freqs: Vec<Vec<f64>> = Vec::new();
        let mut xcluster: Vec<Vec<f64>> = Vec::new();
        for bench in Benchmark::all() {
            print!("{:<10}", bench.name());
            let mut row = Vec::new();
            let mut xrow = Vec::new();
            for (_, cfg) in &machines {
                let stats = results.next().expect("one result per cell");
                print!(" {:>13.3}", stats.ipc());
                row.push(stats.intercluster_bypass_frequency() * 100.0);
                let slots = cfg.issue_width as u64 * stats.cycles;
                xrow.push(
                    stats.stall_breakdown.get(StallCause::InterclusterWait) as f64
                        / slots as f64
                        * 100.0,
                );
            }
            println!();
            freqs.push(row);
            xcluster.push(xrow);
        }

        println!();
        println!("Figure 17 (bottom): inter-cluster bypass frequency (%)");
        print!("{:<10}", "benchmark");
        for (name, _) in &machines {
            print!(" {:>13}", short(name));
        }
        println!();
        ce_bench::rule(10 + machines.len() * 14);
        for (bench, row) in Benchmark::all().into_iter().zip(&freqs) {
            print!("{:<10}", bench.name());
            for f in row {
                print!(" {:>12.1}%", f);
            }
            println!();
        }
        println!();
        println!("Stall attribution: issue slots lost waiting on inter-cluster bypass (%)");
        print!("{:<10}", "benchmark");
        for (name, _) in &machines {
            print!(" {:>13}", short(name));
        }
        println!();
        ce_bench::rule(10 + machines.len() * 14);
        for (bench, row) in Benchmark::all().into_iter().zip(&xcluster) {
            print!("{:<10}", bench.name());
            for x in row {
                print!(" {:>12.1}%", x);
            }
            println!();
        }

        println!();
        println!("Paper shape: random steering degrades 17-26% vs ideal and shows the highest");
        println!("inter-cluster traffic (up to ~35%); exec-driven steering is within ~6% of ideal;");
        println!("both dispatch-steered organizations sit in between.");
        println!();
    }
    finish_sweep("fig17_organizations", &args, &jobs, max_insts, opts.run, &summary, &csv)
}

fn short(name: &str) -> &str {
    match name {
        "1-cluster.1window" => "ideal",
        "2-cluster.FIFOs.dispatch_steer" => "fifo-disp",
        "2-cluster.windows.dispatch_steer" => "win-disp",
        "2-cluster.1window.exec_steer" => "exec-steer",
        "2-cluster.windows.random_steer" => "random",
        other => other,
    }
}
