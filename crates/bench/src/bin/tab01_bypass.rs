//! Table 1: bypass result-wire lengths and delays for 4-way and 8-way
//! machines.
//!
//! ```text
//! cargo run -p ce-bench --bin tab01_bypass [--out PATH]
//! ```
//!
//! Prints the table and writes `tab01_bypass.csv` atomically; exits 0 on
//! success, 1 if the delay models refuse to evaluate, 2 on usage or I/O
//! errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::bypass::{BypassDelay, BypassParams};
use ce_delay::{FeatureSize, Technology};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = OutArgs::parse("results/tab01_bypass.csv");
    let tech = Technology::new(FeatureSize::U018);
    println!("Table 1: bypass delays (identical across technologies by the scaling model)");
    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>12} {:>8}",
        "IW", "wire len (lam)", "paper (lam)", "delay (ps)", "paper (ps)", "paths"
    );
    ce_bench::rule(72);
    let paper = [(4usize, 20_500.0, 184.9), (8, 49_000.0, 1056.4)];
    for (iw, plen, pdelay) in paper {
        let params = BypassParams::new(iw);
        let d = BypassDelay::compute(&tech, &params);
        println!(
            "{:>6} {:>14.0} {:>12.0} {:>14.1} {:>12.1} {:>8}",
            iw,
            d.wire_length_lambda,
            plen,
            d.total_ps(),
            pdelay,
            params.path_count()
        );
    }
    let d4 = BypassDelay::compute(&tech, &BypassParams::new(4)).total_ps();
    let d8 = BypassDelay::compute(&tech, &BypassParams::new(8)).total_ps();
    println!();
    println!("8-way / 4-way delay ratio: {:.2}x (paper: ~5.7x)", d8 / d4);
    finish_report("tab01_bypass", delay_csv::tab01_bypass(), &args.out)
}
