//! `manifest_check` — validates a run manifest against the committed
//! schema, CI's gate that the provenance chain never silently rots.
//!
//! ```text
//! manifest_check MANIFEST SCHEMA [--verify-artifacts]
//! ```
//!
//! Shape comes from the shared required-paths checker
//! ([`ce_bench::metrics_check::check_required`], the same machinery that
//! guards `ce-sim.metrics.v1`). On top of it, every hash field must be a
//! 16-hex-digit FNV-1a digest, and `--verify-artifacts` re-hashes each
//! listed artifact (resolved by file name next to the manifest, matching
//! how manifests are laid out) and compares size and digest — a CSV
//! edited after the fact fails here.
//!
//! Exit codes follow the repo contract: 0 valid, 1 validation problems
//! (each printed as `manifest_check: error: ...`), 2 I/O or usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ce_bench::json::Json;
use ce_bench::manifest::{Artifact, MANIFEST_SCHEMA};
use ce_bench::metrics_check::check_required;

/// The schema-file tag this checker expects.
const SCHEMA_FILE_SCHEMA: &str = "ce-bench.manifest.schema.v1";

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut verify_artifacts = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verify-artifacts" => verify_artifacts = true,
            other if other.starts_with("--") => return usage(&format!("unrecognized `{other}`")),
            other => paths.push(PathBuf::from(other)),
        }
    }
    let [manifest_path, schema_path] = paths.as_slice() else {
        return usage("expected exactly MANIFEST and SCHEMA paths");
    };

    let doc = match load(manifest_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("manifest_check: error: {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
    };
    let schema = match load(schema_path) {
        Ok(schema) => schema,
        Err(e) => {
            eprintln!("manifest_check: error: {}: {e}", schema_path.display());
            return ExitCode::from(2);
        }
    };

    let mut problems = check_required(&doc, &schema, SCHEMA_FILE_SCHEMA, MANIFEST_SCHEMA);
    problems.extend(check_digests(&doc));
    if verify_artifacts {
        problems.extend(check_artifacts(&doc, manifest_path));
    }

    if problems.is_empty() {
        println!(
            "manifest_check: ok: {} valid ({} artifacts{})",
            manifest_path.display(),
            doc.at("artifacts").and_then(Json::as_arr).map_or(0, |a| a.len()),
            if verify_artifacts { ", content verified" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("manifest_check: error: {p}");
        }
        eprintln!(
            "manifest_check: {} invalid: {} problem(s)",
            manifest_path.display(),
            problems.len()
        );
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("manifest_check: error: {msg}");
    eprintln!("usage: manifest_check MANIFEST SCHEMA [--verify-artifacts]");
    ExitCode::from(2)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text).map_err(|e| format!("parse: {e}"))
}

/// Is `s` a 16-digit lowercase hex FNV-1a digest?
fn is_digest(s: &str) -> bool {
    s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Every hash-carrying field must hold a canonical 16-hex digest.
fn check_digests(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let mut expect = |path: &str, value: Option<&str>| {
        if let Some(s) = value {
            if !is_digest(s) {
                problems.push(format!("`{path}` is not a 16-hex FNV digest: \"{s}\""));
            }
        }
    };
    expect("cache_key", doc.at("cache_key").and_then(Json::as_str));
    expect("sweep_id", doc.at("sweep_id").and_then(Json::as_str));
    for (i, b) in doc.at("benchmarks").and_then(Json::as_arr).into_iter().flatten().enumerate() {
        expect(
            &format!("benchmarks.{i}.trace_fingerprint"),
            b.at("trace_fingerprint").and_then(Json::as_str),
        );
    }
    for (i, c) in doc.at("configs").and_then(Json::as_arr).into_iter().flatten().enumerate() {
        expect(&format!("configs.{i}.fingerprint"), c.at("fingerprint").and_then(Json::as_str));
    }
    for (i, a) in doc.at("artifacts").and_then(Json::as_arr).into_iter().flatten().enumerate() {
        expect(&format!("artifacts.{i}.fnv64"), a.at("fnv64").and_then(Json::as_str));
    }
    problems
}

/// Re-hashes every listed artifact and compares against the manifest.
/// Artifacts resolve by file name next to the manifest — the layout
/// every producer writes.
fn check_artifacts(doc: &Json, manifest_path: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    let dir = manifest_path.parent().unwrap_or(Path::new("."));
    let Some(artifacts) = doc.at("artifacts").and_then(Json::as_arr) else {
        return problems; // shape problems already reported
    };
    if artifacts.is_empty() {
        problems.push("artifacts list is empty".to_owned());
    }
    for (i, entry) in artifacts.iter().enumerate() {
        let (Some(path), Some(bytes), Some(fnv)) = (
            entry.at("path").and_then(Json::as_str),
            entry.at("bytes").and_then(Json::as_u64),
            entry.at("fnv64").and_then(Json::as_str),
        ) else {
            continue; // shape problems already reported
        };
        let file = Path::new(path)
            .file_name()
            .map_or_else(|| PathBuf::from(path), |name| dir.join(name));
        match Artifact::describe(&file) {
            Err(e) => {
                problems.push(format!("artifacts.{i}: reading {}: {e}", file.display()));
            }
            Ok(actual) => {
                if actual.bytes != bytes {
                    problems.push(format!(
                        "artifacts.{i}: {} is {} bytes, manifest says {bytes}",
                        file.display(),
                        actual.bytes
                    ));
                }
                if actual.fnv64 != fnv {
                    problems.push(format!(
                        "artifacts.{i}: {} hashes to {}, manifest says {fnv}",
                        file.display(),
                        actual.fnv64
                    ));
                }
            }
        }
    }
    problems
}
