//! Validates a `ce-sim.metrics.v1` document against the checked-in
//! schema — the CI smoke gate for `cesim --metrics`.
//!
//! ```text
//! cargo run --release -p ce-bench --bin metrics_check -- out.json [schema.json]
//! ```
//!
//! The schema path defaults to `results/metrics.schema.json`. Exits 0
//! and prints a one-line summary when the document passes; exits 1 and
//! lists every problem when it does not; exits 2 when either file is
//! missing or malformed (so CI can tell a failed gate from a gate that
//! never ran).

use ce_bench::json::Json;
use ce_bench::metrics_check::validate;
use std::process::ExitCode;

fn load(path: &str, what: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {what} {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parsing {what} {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(doc_path) = args.next() else {
        eprintln!("usage: metrics_check METRICS.json [SCHEMA.json]");
        return ExitCode::from(2);
    };
    let schema_path = args.next().unwrap_or_else(|| "results/metrics.schema.json".to_owned());

    let (doc, schema) = match (load(&doc_path, "metrics"), load(&schema_path, "schema")) {
        (Ok(d), Ok(s)) => (d, s),
        (d, s) => {
            for e in [d.err(), s.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let problems = validate(&doc, &schema);
    if problems.is_empty() {
        let machine = doc.at("machine").and_then(Json::as_str).unwrap_or("?");
        let workload = doc.at("workload").and_then(Json::as_str).unwrap_or("?");
        let attributed = matches!(doc.at("stall_attribution"), Some(Json::Obj(_)));
        println!(
            "{doc_path}: ok ({machine} / {workload}, stall attribution {})",
            if attributed { "present and reconciled" } else { "absent" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{doc_path}: {} problem(s):", problems.len());
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}
