//! Extension experiments beyond the paper's published data — quantifying
//! arguments the paper makes qualitatively:
//!
//! 1. **Pipelining wakeup+select** (Section 4.5, Figure 10): the paper
//!    argues the pair is atomic because splitting it stops dependent
//!    instructions issuing back-to-back, but leaves the cost unmeasured.
//!    We measure it.
//! 2. **Selection policy** (Section 4.3): Butler & Patt found overall
//!    performance largely independent of the policy; we replay that
//!    finding (and show a deliberately bad policy *does* hurt).
//! 3. **Incomplete bypassing** (Section 4.5, after Ahuja et al.): what a
//!    machine loses without a bypass network — the cost that makes slow
//!    bypasses worth engineering around rather than dropping.

use ce_bench::runner;
use ce_sim::{machine, BypassModel, LatencyModel, SelectionPolicy, SimConfig};
use ce_workloads::Benchmark;

/// The per-benchmark machine variants of each extension, in print order.
fn extension_configs() -> Vec<Vec<SimConfig>> {
    let base = machine::baseline_8way();
    let with = |f: &dyn Fn(&mut SimConfig)| {
        let mut cfg = base;
        f(&mut cfg);
        cfg
    };
    vec![
        // 1: atomic vs pipelined wakeup+select.
        vec![base, with(&|c| c.pipelined_wakeup_select = true)],
        // 2: selection policies.
        vec![
            with(&|c| c.selection = SelectionPolicy::OldestFirst),
            with(&|c| c.selection = SelectionPolicy::Position),
            with(&|c| c.selection = SelectionPolicy::YoungestFirst),
        ],
        // 3: full bypass vs none.
        vec![base, with(&|c| c.bypass_model = BypassModel::None)],
        // 4: weighted latencies, window vs FIFOs.
        vec![with(&|c| c.latency = LatencyModel::Weighted), {
            let mut cfg = machine::dependence_8way();
            cfg.latency = LatencyModel::Weighted;
            cfg
        }],
        // 5: stall-on-mispredict vs wrong-path pollution.
        vec![base, with(&|c| c.model_wrong_path = true)],
        // 6: whole vs split store issue, window and FIFOs.
        vec![base, with(&|c| c.split_store_issue = true), machine::dependence_8way(), {
            let mut cfg = machine::dependence_8way();
            cfg.split_store_issue = true;
            cfg
        }],
        // 7: aggressive vs break-on-taken fetch.
        vec![base, with(&|c| c.fetch_breaks_on_taken = true)],
    ]
}

fn main() {
    let extensions = extension_configs();
    let mut jobs: Vec<runner::Job> = Vec::new();
    for configs in &extensions {
        for bench in Benchmark::all() {
            for cfg in configs {
                jobs.push((bench, *cfg));
            }
        }
    }
    let mut results = runner::run_all(&jobs).into_iter();
    let mut cell = move || results.next().expect("one result per cell");

    println!("Extension 1: pipelined wakeup+select (window machine)");
    println!("{:<10} {:>10} {:>10} {:>8}", "benchmark", "atomic", "pipelined", "loss");
    ce_bench::rule(42);
    let mut losses = Vec::new();
    for bench in Benchmark::all() {
        let atomic = cell();
        let pipelined = cell();
        let loss = (1.0 - pipelined.ipc() / atomic.ipc()) * 100.0;
        losses.push(loss);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>7.1}%",
            bench.name(),
            atomic.ipc(),
            pipelined.ipc(),
            loss
        );
    }
    println!(
        "mean loss {:.1}% — why wakeup+select must fit in one cycle, quantified",
        losses.iter().sum::<f64>() / losses.len() as f64
    );

    println!();
    println!("Extension 2: selection policy (window machine)");
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "benchmark", "oldest", "position", "youngest"
    );
    ce_bench::rule(52);
    for bench in Benchmark::all() {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>14.3}",
            bench.name(),
            cell().ipc(),
            cell().ipc(),
            cell().ipc()
        );
    }
    println!("(oldest vs position: largely indistinguishable, as Butler & Patt found)");

    println!();
    println!("Extension 3: no bypass network (operands via register file only)");
    println!("{:<10} {:>10} {:>12} {:>8}", "benchmark", "bypassed", "no bypass", "loss");
    ce_bench::rule(44);
    for bench in Benchmark::all() {
        let full = cell();
        let none = cell();
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>7.1}%",
            bench.name(),
            full.ipc(),
            none.ipc(),
            (1.0 - none.ipc() / full.ipc()) * 100.0
        );
    }

    println!();
    println!("Extension 4: realistic FU latencies (mul 3, div 12) — does the");
    println!("dependence-based conclusion survive non-uniform execution?");
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "benchmark", "window", "fifos", "degradation"
    );
    ce_bench::rule(46);
    for bench in Benchmark::all() {
        let win = cell();
        let dep = cell();
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>11.1}%",
            bench.name(),
            win.ipc(),
            dep.ipc(),
            (1.0 - dep.ipc() / win.ipc()) * 100.0
        );
    }

    println!();
    println!("Extension 5: wrong-path pollution (vs the stall-on-mispredict model)");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "benchmark", "stall IPC", "wp IPC", "loss", "wp fetched", "wp issued"
    );
    ce_bench::rule(66);
    for bench in Benchmark::all() {
        let stall = cell();
        let wp = cell();
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>7.1}% {:>12} {:>10}",
            bench.name(),
            stall.ipc(),
            wp.ipc(),
            (1.0 - wp.ipc() / stall.ipc()) * 100.0,
            wp.wrong_path_fetched,
            wp.wrong_path_issued
        );
    }
    println!("(trace-driven stall models — the paper's included — underestimate the");
    println!(" misprediction cost by the window/FU pollution shown here)");

    println!();
    println!("Extension 6: split store issue (address first, data later)");
    println!("SimpleScalar — and so the paper — issues stores whole; splitting them");
    println!("frees loads earlier, and the flexible window exploits that extra ILP");
    println!("better than FIFO heads can:");
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11}",
        "benchmark", "win whole", "win split", "fifo whole", "fifo split"
    );
    ce_bench::rule(58);
    for bench in Benchmark::all() {
        println!(
            "{:<10} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
            bench.name(),
            cell().ipc(),
            cell().ipc(),
            cell().ipc(),
            cell().ipc()
        );
    }

    println!();
    println!("Extension 7: front-end realism (Table 3 assumes 'any 8 instructions')");
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "benchmark", "aggressive", "break-on-taken", "loss"
    );
    ce_bench::rule(52);
    for bench in Benchmark::all() {
        let aggressive = cell();
        let realistic = cell();
        println!(
            "{:<10} {:>12.3} {:>14.3} {:>11.1}%",
            bench.name(),
            aggressive.ipc(),
            realistic.ipc(),
            (1.0 - realistic.ipc() / aggressive.ipc()) * 100.0
        );
    }
    println!("(the paper stresses issue/execute with a perfect front end; a fetch unit");
    println!(" that breaks on taken branches would shift some bottleneck forward)");
}
