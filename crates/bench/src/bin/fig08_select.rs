//! Figure 8: selection delay versus window size, with the request/root/
//! grant breakdown, for all three feature sizes.
//!
//! ```text
//! cargo run -p ce-bench --bin fig08_select [--out PATH]
//! ```
//!
//! Prints the table and writes `fig08_select.csv` atomically; exits 0 on
//! success, 1 if the delay models refuse to evaluate, 2 on usage or I/O
//! errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::select::{SelectDelay, SelectParams};
use ce_delay::Technology;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = OutArgs::parse("results/fig08_select.csv");
    println!("Figure 8: selection delay (ps) vs window size");
    println!(
        "{:<6} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "tech", "window", "request", "root", "grant", "TOTAL"
    );
    ce_bench::rule(58);
    for tech in Technology::all() {
        for window in [16, 32, 64, 128] {
            let d = SelectDelay::compute(&tech, &SelectParams::new(window));
            println!(
                "{:<6} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                tech.feature().to_string(),
                window,
                d.request_prop_ps,
                d.root_ps,
                d.grant_prop_ps,
                d.total_ps()
            );
        }
    }
    println!();
    let t = Technology::all()[2];
    let d16 = SelectDelay::compute(&t, &SelectParams::new(16)).total_ps();
    let d32 = SelectDelay::compute(&t, &SelectParams::new(32)).total_ps();
    println!(
        "16 -> 32 entries: {:+.1}% (paper: < +100% because the root delay is window-independent)",
        (d32 / d16 - 1.0) * 100.0
    );
    finish_report("fig08_select", delay_csv::fig08_select(), &args.out)
}
