//! Table 4: reservation-table delay for the dependence-based design at
//! 0.18 µm, versus the CAM-window wakeup it replaces.
//!
//! ```text
//! cargo run -p ce-bench --bin tab04_restable [--out PATH]
//! ```
//!
//! Prints the table and writes `tab04_restable.csv` atomically; exits 0 on
//! success, 1 if the delay models refuse to evaluate, 2 on usage or I/O
//! errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::restable::{ResTableDelay, ResTableParams};
use ce_delay::wakeup::{WakeupDelay, WakeupParams};
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::{FeatureSize, Technology};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = OutArgs::parse("results/tab04_restable.csv");
    let tech = Technology::new(FeatureSize::U018);
    println!("Table 4: reservation table delay, 0.18 um");
    println!(
        "{:>4} {:>10} {:>9} {:>10} {:>12} {:>10} {:>7}",
        "IW", "phys regs", "entries", "bits/row", "delay (ps)", "paper", "dev"
    );
    ce_bench::rule(68);
    let paper = [(4usize, 192.1), (8, 251.7)];
    for (iw, p) in paper {
        let params = ResTableParams::new(iw);
        let d = ResTableDelay::compute(&tech, &params).total_ps();
        println!(
            "{:>4} {:>10} {:>9} {:>10} {:>12.1} {:>10.1} {:>7}",
            iw,
            params.physical_regs,
            params.entries(),
            8,
            d,
            p,
            ce_bench::deviation(d, p)
        );
    }
    println!();
    let rt8 = ResTableDelay::compute(&tech, &ResTableParams::new(8)).total_ps();
    let cam = WakeupDelay::compute(&tech, &WakeupParams::new(4, 32)).total_ps();
    let ren = RenameDelay::compute(&tech, &RenameParams::new(8)).total_ps();
    println!("vs 4-way/32-entry CAM wakeup: {rt8:.1} < {cam:.1} ps  (paper: much smaller)");
    println!("vs 8-way rename:              {rt8:.1} < {ren:.1} ps  (rename becomes critical)");
    finish_report("tab04_restable", delay_csv::tab04_restable(), &args.out)
}
