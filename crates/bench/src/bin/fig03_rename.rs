//! Figure 3: register rename delay versus issue width, with the
//! decoder/wordline/bitline/senseamp breakdown, for all three feature
//! sizes.
//!
//! ```text
//! cargo run -p ce-bench --bin fig03_rename [--out PATH]
//! ```
//!
//! Prints the table and writes `fig03_rename.csv` atomically; exits 0 on
//! success, 1 if the delay models refuse to evaluate, 2 on usage or I/O
//! errors.

use ce_bench::cli::{finish_report, OutArgs};
use ce_bench::delay_csv;
use ce_delay::rename::{RenameDelay, RenameParams};
use ce_delay::Technology;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = OutArgs::parse("results/fig03_rename.csv");
    println!("Figure 3: rename delay (ps) vs issue width");
    println!(
        "{:<6} {:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "tech", "IW", "decode", "wordline", "bitline", "senseamp", "TOTAL"
    );
    ce_bench::rule(68);
    for tech in Technology::all() {
        for iw in [2, 4, 8] {
            let d = RenameDelay::compute(&tech, &RenameParams::new(iw));
            println!(
                "{:<6} {:>5} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                tech.feature().to_string(),
                iw,
                d.decode_ps,
                d.wordline_ps,
                d.bitline_ps,
                d.senseamp_ps,
                d.total_ps()
            );
        }
    }
    println!();
    println!("Paper shape checks:");
    let t18 = Technology::all()[2];
    let d2 = RenameDelay::compute(&t18, &RenameParams::new(2));
    let d8 = RenameDelay::compute(&t18, &RenameParams::new(8));
    println!(
        "  bitline grows {:+.1} ps from 2- to 8-way vs wordline {:+.1} ps (bitlines longer)",
        d8.bitline_ps - d2.bitline_ps,
        d8.wordline_ps - d2.wordline_ps
    );
    finish_report("fig03_rename", delay_csv::fig03_rename(), &args.out)
}
