//! `ce-explore` — closed-loop design-space exploration (Section 6).
//!
//! Enumerates issue width × scheduler geometry × cluster count × steering
//! across the three technology nodes, scores every point with
//! BIPS = IPC × 1000 / clock_ps (clock from the delay models, IPC from
//! the simulator — sampled by default, exact with `--full`), and writes:
//!
//! * `results/pareto.csv` — every design point with delay/IPC/BIPS
//!   provenance, a structured skip status for refused corners, and a
//!   per-technology Pareto frontier flag;
//! * `results/tab02_explore.csv` — a Table 2-style roll-up extending the
//!   paper's §5.6 organizations with the best-BIPS point the grid found;
//! * `results/pareto.manifest.json` — the content-addressed run manifest
//!   vouching for both CSVs (see `ce_bench::manifest`).
//!
//! The IPC sweep checkpoints next to the output CSV; kill it at any point
//! and rerun with `--resume` for byte-identical results. On any cell
//! failure neither CSV is written and the journal is kept, matching every
//! other sweep binary. The shared observability flags (`--telemetry`,
//! `--trace-out`, `--manifest`, `--progress`, `--quiet`) behave exactly
//! as in the sweep binaries.
//!
//! ```text
//! usage: [--out PATH] [--resume] [--full] [--grid tiny|full]
//!        [--telemetry PATH] [--trace-out PATH] [--manifest PATH]
//!        [--progress] [--quiet]
//! ```

use std::process::ExitCode;

use ce_bench::checkpoint::write_atomic;
use ce_bench::cli::ExploreArgs;
use ce_bench::explore::{
    explore, explore_jobs, pareto_csv, row_census, tab02_explore_csv, tab02_path,
    ExploreOptions,
};
use ce_bench::manifest;

fn main() -> ExitCode {
    let args = ExploreArgs::parse();
    let max_insts = ce_bench::max_insts();
    let jobs = explore_jobs(args.grid);
    let telemetry = match args.obs.telemetry("ce-explore", &jobs, max_insts, args.resume) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ce-explore: error: telemetry journal: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match explore(&ExploreOptions {
        scale: args.grid,
        exact: args.full,
        max_insts,
        checkpoint: Some(args.checkpoint()),
        telemetry,
    }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ce-explore: error: checkpoint journal: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(summary) = &report.summary {
        if summary.resumed > 0 && !args.obs.quiet {
            eprintln!(
                "ce-explore: resumed {} of {} cells from {}",
                summary.resumed,
                summary.cells.len(),
                args.checkpoint().path.display()
            );
        }
        if !summary.failures.is_empty() {
            for failure in &summary.failures {
                eprintln!("ce-explore: error: {failure}");
            }
            eprintln!(
                "ce-explore: {} of {} cells failed; no CSV written, checkpoint kept for --resume",
                summary.failures.len(),
                summary.cells.len()
            );
            return ExitCode::from(1);
        }
    }

    let tab02_out = tab02_path(&args.out);
    for (path, csv) in [(&args.out, pareto_csv(&report)), (&tab02_out, tab02_explore_csv(&report))]
    {
        if let Err(e) = write_atomic(path, &csv) {
            eprintln!("ce-explore: error[io]: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !args.obs.quiet {
            eprintln!("ce-explore: wrote {}", path.display());
        }
    }
    if let Some(summary) = &report.summary {
        let manifest_out = args.obs.manifest_path(&args.out);
        if let Err(e) = manifest::write_manifest(
            &manifest_out,
            "ce-explore",
            &report.jobs,
            max_insts,
            report.run,
            summary,
            &[&args.out, &tab02_out],
        ) {
            eprintln!("ce-explore: error[io]: manifest: {e}");
            return ExitCode::from(2);
        }
        if !args.obs.quiet {
            eprintln!("ce-explore: wrote {}", manifest_out.display());
        }
    }
    if !args.obs.quiet {
        let (ok, skip_delay, skip_sim) = row_census(&report);
        eprintln!(
            "ce-explore: {} design points × 3 technologies: {ok} scored, \
             {skip_delay} skip-delay, {skip_sim} skip-sim ({} mode)",
            report.points.len(),
            if report.sampled { "sampled" } else { "exact" }
        );
    }
    ExitCode::SUCCESS
}
